//! T2: cost of the non-redundant scheme as processor count grows, against
//! the sequential baseline, on a duplicate-heavy grid.

use gst_bench::micro::{BenchmarkId, Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_core::prelude::example3_hash_partition;
use gst_eval::seminaive_eval;
use gst_frontend::LinearSirup;
use gst_workloads::{grid, linear_ancestor};

fn bench_nonredundancy(c: &mut Criterion) {
    let fx = linear_ancestor();
    let edges = grid(9, 9);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();

    let mut group = c.benchmark_group("nonredundancy-grid9x9");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| seminaive_eval(&fx.program, &db).unwrap())
    });
    for n in [2usize, 4, 8] {
        let scheme = example3_hash_partition(&sirup, n, &db).unwrap();
        group.bench_with_input(BenchmarkId::new("parallel", n), &scheme, |b, s| {
            b.iter(|| s.run().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nonredundancy);
criterion_main!(benches);
