//! A relation: a duplicate-free set of same-arity tuples.

use gst_common::{Error, FxHashSet, Interner, Result, Tuple};

/// A set of tuples of a fixed arity.
///
/// Inserts are idempotent (set semantics) and report whether the tuple was
/// new — the signal semi-naive evaluation and duplicate-elimination on
/// receive (paper §3, step 4) are built on. A monotonically increasing
/// `generation` stamp lets index caches detect staleness cheaply.
#[derive(Debug, Clone)]
pub struct Relation {
    arity: usize,
    tuples: FxHashSet<Tuple>,
    generation: u64,
}

impl Relation {
    /// Create an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            tuples: FxHashSet::default(),
            generation: 0,
        }
    }

    /// Create an empty relation with room for `capacity` tuples.
    pub fn with_capacity(arity: usize, capacity: usize) -> Self {
        Relation {
            arity,
            tuples: FxHashSet::with_capacity_and_hasher(capacity, Default::default()),
            generation: 0,
        }
    }

    /// The arity every tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Monotone stamp bumped on every successful insert.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Insert a tuple; returns `true` if it was not already present.
    ///
    /// # Errors
    /// Arity mismatches are storage errors, not panics: they indicate a
    /// malformed program or corrupted channel message.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.arity {
            return Err(Error::Storage(format!(
                "arity mismatch: relation has arity {}, tuple has {}",
                self.arity,
                tuple.arity()
            )));
        }
        let fresh = self.tuples.insert(tuple);
        if fresh {
            self.generation += 1;
        }
        Ok(fresh)
    }

    /// Insert without arity checking; used on hot paths where the caller
    /// constructed the tuple against this relation's schema.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.arity(), self.arity);
        let fresh = self.tuples.insert(tuple);
        if fresh {
            self.generation += 1;
        }
        fresh
    }

    /// Membership test.
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.tuples.contains(tuple)
    }

    /// Iterate over the tuples (arbitrary order).
    pub fn iter(&self) -> std::collections::hash_set::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// All tuples, sorted — deterministic order for tests and reports.
    pub fn sorted(&self) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = self.tuples.iter().cloned().collect();
        v.sort();
        v
    }

    /// Set-equality against another relation.
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }

    /// Absorb all tuples of `other`; returns how many were new.
    pub fn absorb(&mut self, other: &Relation) -> Result<usize> {
        if other.arity != self.arity {
            return Err(Error::Storage(format!(
                "arity mismatch in union: {} vs {}",
                self.arity, other.arity
            )));
        }
        let mut added = 0;
        for t in other.iter() {
            if self.insert_unchecked(t.clone()) {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Render the relation as sorted, one-tuple-per-line text.
    pub fn display(&self, interner: &Interner) -> String {
        self.sorted()
            .iter()
            .map(|t| t.display(interner))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; arity is taken from the first
    /// tuple (or 0 when empty) and later mismatches panic — use
    /// [`Relation::insert`] when the input is untrusted.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let arity = it.peek().map(|t| t.arity()).unwrap_or(0);
        let mut rel = Relation::new(arity);
        for t in it {
            assert_eq!(t.arity(), arity, "mixed arity in FromIterator<Tuple>");
            rel.insert_unchecked(t);
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    #[test]
    fn insert_reports_freshness() {
        let mut r = Relation::new(2);
        assert!(r.insert(ituple![1, 2]).unwrap());
        assert!(!r.insert(ituple![1, 2]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut r = Relation::new(2);
        assert!(r.insert(ituple![1]).is_err());
        assert!(r.insert(ituple![1, 2, 3]).is_err());
        assert!(r.is_empty());
    }

    #[test]
    fn generation_bumps_only_on_fresh_insert() {
        let mut r = Relation::new(1);
        assert_eq!(r.generation(), 0);
        r.insert(ituple![1]).unwrap();
        assert_eq!(r.generation(), 1);
        r.insert(ituple![1]).unwrap();
        assert_eq!(r.generation(), 1);
        r.insert(ituple![2]).unwrap();
        assert_eq!(r.generation(), 2);
    }

    #[test]
    fn sorted_is_deterministic() {
        let mut r = Relation::new(2);
        for (a, b) in [(3, 1), (1, 2), (2, 9), (1, 1)] {
            r.insert(ituple![a, b]).unwrap();
        }
        assert_eq!(
            r.sorted(),
            vec![ituple![1, 1], ituple![1, 2], ituple![2, 9], ituple![3, 1]]
        );
    }

    #[test]
    fn set_eq_ignores_insertion_order() {
        let a: Relation = [ituple![1, 2], ituple![3, 4]].into_iter().collect();
        let b: Relation = [ituple![3, 4], ituple![1, 2]].into_iter().collect();
        assert!(a.set_eq(&b));
        let c: Relation = [ituple![1, 2]].into_iter().collect();
        assert!(!a.set_eq(&c));
    }

    #[test]
    fn absorb_unions_and_counts() {
        let mut a: Relation = [ituple![1, 2], ituple![3, 4]].into_iter().collect();
        let b: Relation = [ituple![3, 4], ituple![5, 6]].into_iter().collect();
        assert_eq!(a.absorb(&b).unwrap(), 1);
        assert_eq!(a.len(), 3);
        let wrong = Relation::new(1);
        assert!(wrong.arity() == 1 && a.absorb(&wrong).is_err());
    }

    #[test]
    fn display_renders_sorted_lines() {
        let interner = Interner::new();
        let r: Relation = [ituple![2, 1], ituple![1, 1]].into_iter().collect();
        assert_eq!(r.display(&interner), "(1, 1)\n(2, 1)");
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut r = Relation::with_capacity(2, 100);
        assert_eq!(r.arity(), 2);
        r.insert(ituple![1, 2]).unwrap();
        assert_eq!(r.len(), 1);
    }
}
