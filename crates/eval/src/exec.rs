//! Plan execution.
//!
//! The executor walks a [`RulePlan`]'s steps depth-first, maintaining one
//! binding slot per rule variable. Scans read a prepared [`Access`]: a
//! row range of a relation's arena, or an index probe whose postings are
//! restricted to a row range. Because a [`Relation`] is insertion-ordered
//! and append-only, the semi-naive views are all contiguous ranges of the
//! same arena — `Full` is `rows[..]`, `Old` (`T_{i-1}`) is rows below the
//! delta watermark, and the delta is the suffix above it — so no minus
//! set is materialized or probed, and one index per (relation, columns)
//! serves all three views.
//!
//! The caller prepares one `Access` per scan step (the two-phase split
//! keeps index syncing, which needs `&mut`, out of the immutable
//! execution pass) and receives every successful ground substitution via
//! the `emit` callback; the return value is the firing count that the
//! paper's non-redundancy theorems (2 and 6) are stated over. Probe keys
//! are never allocated per probe: key values are hashed directly into
//! the index's bucket space via a scratch buffer reused for the whole
//! plan.

use gst_common::{Tuple, Value};
use gst_storage::{postings_in_range, HashIndex, Relation};

use crate::plan::{HeadTerm, KeySource, PlanStep, RulePlan, ScanStep};

/// How a scan step reads its relation this round.
#[derive(Debug, Clone, Copy)]
pub enum Access<'a> {
    /// Iterate arena rows `[start, end)`.
    Scan {
        /// The relation whose arena is scanned.
        rel: &'a Relation,
        /// First row (inclusive).
        start: u32,
        /// One past the last row.
        end: u32,
    },
    /// Probe a hash index on exactly the step's probe columns, keeping
    /// postings whose row id falls in `[start, end)`.
    Probe {
        /// The index over `rel`'s arena.
        index: &'a HashIndex,
        /// The indexed relation (verifies keys, resolves row ids).
        rel: &'a Relation,
        /// First row (inclusive).
        start: u32,
        /// One past the last row.
        end: u32,
    },
    /// The relation holds no tuples (or does not exist yet).
    Empty,
}

impl<'a> Access<'a> {
    /// Scan every row of `rel`.
    pub fn scan_all(rel: &'a Relation) -> Self {
        Access::Scan {
            rel,
            start: 0,
            end: rel.len() as u32,
        }
    }

    /// Scan rows `[start, end)` of `rel`.
    pub fn scan_range(rel: &'a Relation, start: u32, end: u32) -> Self {
        Access::Scan { rel, start, end }
    }

    /// Probe `index` over all of `rel`.
    pub fn probe_all(index: &'a HashIndex, rel: &'a Relation) -> Self {
        Access::Probe {
            index,
            rel,
            start: 0,
            end: rel.len() as u32,
        }
    }

    /// Probe `index`, keeping rows in `[start, end)` of `rel`.
    pub fn probe_range(index: &'a HashIndex, rel: &'a Relation, start: u32, end: u32) -> Self {
        Access::Probe {
            index,
            rel,
            start,
            end,
        }
    }
}

/// Run `plan` with one prepared access per step (`None` for filter steps),
/// invoking `emit` for each successful ground substitution's head tuple.
/// Returns the number of firings.
pub fn run_plan(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    emit: &mut impl FnMut(Tuple),
) -> u64 {
    debug_assert_eq!(accesses.len(), plan.steps.len());
    let mut bindings = vec![Value::Int(0); plan.slot_count];
    let mut head_buf: Vec<Value> = vec![Value::Int(0); plan.head_terms.len()];
    let mut key_buf: Vec<Value> = Vec::new();
    let mut firings = 0u64;
    descend(
        plan,
        accesses,
        0,
        &mut bindings,
        &mut head_buf,
        &mut key_buf,
        &mut firings,
        emit,
    );
    firings
}

/// Resolve one probe-key source against current bindings.
#[inline]
fn resolve(src: &KeySource, bindings: &[Value]) -> Value {
    match src {
        KeySource::Slot(s) => bindings[*s],
        KeySource::Const(c) => *c,
    }
}

#[allow(clippy::too_many_arguments)] // internal hot path, flattened on purpose
fn descend(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    step_index: usize,
    bindings: &mut [Value],
    head_buf: &mut Vec<Value>,
    key_buf: &mut Vec<Value>,
    firings: &mut u64,
    emit: &mut impl FnMut(Tuple),
) {
    if step_index == plan.steps.len() {
        *firings += 1;
        for (out, term) in head_buf.iter_mut().zip(&plan.head_terms) {
            *out = match term {
                HeadTerm::Slot(s) => bindings[*s],
                HeadTerm::Const(c) => *c,
            };
        }
        emit(Tuple::new(head_buf));
        return;
    }

    match &plan.steps[step_index] {
        PlanStep::Filter { constraint, slots } => {
            // Discriminating sequences are short: gather the bound values
            // on the stack — this runs once per candidate, and sending
            // rules filter every delta tuple for every destination.
            let mut stack = [Value::Int(0); 8];
            let heap: Vec<Value>;
            let values: &[Value] = if slots.len() <= stack.len() {
                for (out, &s) in stack.iter_mut().zip(slots.iter()) {
                    *out = bindings[s];
                }
                &stack[..slots.len()]
            } else {
                heap = slots.iter().map(|&s| bindings[s]).collect();
                &heap
            };
            if constraint.holds(values) {
                descend(
                    plan,
                    accesses,
                    step_index + 1,
                    bindings,
                    head_buf,
                    key_buf,
                    firings,
                    emit,
                );
            }
        }
        PlanStep::Scan(scan) => {
            let access = accesses[step_index]
                .as_ref()
                .expect("scan step must have a prepared access");
            match *access {
                Access::Empty => {}
                Access::Probe {
                    index,
                    rel,
                    start,
                    end,
                } => {
                    key_buf.clear();
                    for src in &scan.probe_values {
                        key_buf.push(resolve(src, bindings));
                    }
                    let postings = postings_in_range(index.probe(rel, key_buf), start, end);
                    let has_dead = rel.dead_count() != 0;
                    for &row in postings {
                        // Rows tombstoned after the index ingested them.
                        if has_dead && !rel.is_live(row) {
                            continue;
                        }
                        try_candidate(
                            plan,
                            accesses,
                            step_index,
                            scan,
                            rel.row(row),
                            false,
                            bindings,
                            head_buf,
                            key_buf,
                            firings,
                            emit,
                        );
                    }
                }
                Access::Scan { rel, start, end } => {
                    if rel.dead_count() == 0 {
                        // Hot path: delete-free arena, plain slice walk.
                        for t in &rel.rows()[start as usize..end as usize] {
                            try_candidate(
                                plan, accesses, step_index, scan, t, true, bindings, head_buf,
                                key_buf, firings, emit,
                            );
                        }
                    } else {
                        for row in start..end {
                            if !rel.is_live(row) {
                                continue;
                            }
                            try_candidate(
                                plan,
                                accesses,
                                step_index,
                                scan,
                                rel.row(row),
                                true,
                                bindings,
                                head_buf,
                                key_buf,
                                firings,
                                emit,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal hot path, flattened on purpose
fn try_candidate(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    step_index: usize,
    scan: &ScanStep,
    tuple: &Tuple,
    check_probe: bool,
    bindings: &mut [Value],
    head_buf: &mut Vec<Value>,
    key_buf: &mut Vec<Value>,
    firings: &mut u64,
    emit: &mut impl FnMut(Tuple),
) {
    if check_probe {
        // Raw scans must verify probe columns that an index would have
        // guaranteed.
        for (col, src) in scan.probe_columns.iter().zip(&scan.probe_values) {
            if tuple.get(*col) != resolve(src, bindings) {
                return;
            }
        }
    }
    for (col, earlier) in &scan.intra_checks {
        if tuple.get(*col) != tuple.get(*earlier) {
            return;
        }
    }
    for (col, slot) in &scan.bindings {
        bindings[*slot] = tuple.get(*col);
    }
    descend(
        plan,
        accesses,
        step_index + 1,
        bindings,
        head_buf,
        key_buf,
        firings,
        emit,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile_rule;
    use gst_common::ituple;
    use gst_frontend::parse_program;

    fn edges() -> Relation {
        [ituple![1, 2], ituple![2, 3], ituple![3, 4], ituple![2, 5]]
            .into_iter()
            .collect()
    }

    fn collect(plan: &RulePlan, accesses: &[Option<Access<'_>>]) -> (u64, Vec<Tuple>) {
        let mut out = Vec::new();
        let n = run_plan(plan, accesses, &mut |t| out.push(t));
        out.sort();
        (n, out)
    }

    #[test]
    fn single_scan_copies_relation() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let (n, out) = collect(&plan, &[Some(Access::scan_all(&e))]);
        assert_eq!(n, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn two_way_join_with_index() {
        // t(X,Z) :- e(X,Y), e(Y,Z): paths of length 2.
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (n, out) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))],
        );
        assert_eq!(n, 3); // 1→2→3, 1→2→5, 2→3→4
        assert_eq!(out, vec![ituple![1, 3], ituple![1, 5], ituple![2, 4]]);
    }

    #[test]
    fn join_without_index_matches_index_join() {
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (_, with_idx) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))],
        );
        let (_, without) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::scan_all(&e))],
        );
        assert_eq!(with_idx, without);
    }

    #[test]
    fn constant_probe_filters() {
        let p = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let (n, out) = collect(&plan, &[Some(Access::scan_all(&e))]);
        assert_eq!(n, 2);
        assert_eq!(out, vec![ituple![3], ituple![5]]);
    }

    #[test]
    fn intra_check_selects_loops() {
        let p = parse_program("t(X) :- e(X, X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let mut e = edges();
        e.insert(ituple![7, 7]).unwrap();
        let (n, out) = collect(&plan, &[Some(Access::scan_all(&e))]);
        assert_eq!(n, 1);
        assert_eq!(out, vec![ituple![7]]);
    }

    #[test]
    fn row_ranges_realize_old_and_delta_views() {
        // Arena order is insertion order: rows 0..2 are the "old" view,
        // rows 2..4 the "delta" — no minus set needed.
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges(); // rows: (1,2) (2,3) (3,4) (2,5)
        let (n, out) = collect(&plan, &[Some(Access::scan_range(&e, 2, 4))]);
        assert_eq!(n, 2);
        assert_eq!(out, vec![ituple![2, 5], ituple![3, 4]]);

        // Indexed variant: probe e(2, Y) restricted to the old rows
        // finds only (2,3); the full probe also finds (2,5).
        let p2 = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan2 = compile_rule(&p2.rules[0], 0, &|_| false, None).unwrap();
        let idx = HashIndex::build(&e, &[0]);
        let (n_old, out_old) = collect(&plan2, &[Some(Access::probe_range(&idx, &e, 0, 2))]);
        assert_eq!(n_old, 1);
        assert_eq!(out_old, vec![ituple![3]]);
        let (n_all, _) = collect(&plan2, &[Some(Access::probe_all(&idx, &e))]);
        assert_eq!(n_all, 2);
    }

    #[test]
    fn empty_access_yields_nothing() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let (n, out) = collect(&plan, &[Some(Access::Empty)]);
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let p = parse_program("t(X,Y) :- a(X), b(Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let a: Relation = [ituple![1], ituple![2]].into_iter().collect();
        let b: Relation = [ituple![10], ituple![20], ituple![30]].into_iter().collect();
        let (n, _) = collect(
            &plan,
            &[Some(Access::scan_all(&a)), Some(Access::scan_all(&b))],
        );
        assert_eq!(n, 6);
    }

    #[test]
    fn head_constants_are_materialized() {
        let p = parse_program("t(X, 99) :- a(X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let a: Relation = [ituple![1]].into_iter().collect();
        let (_, out) = collect(&plan, &[Some(Access::scan_all(&a))]);
        assert_eq!(out, vec![ituple![1, 99]]);
    }

    #[test]
    fn scans_and_probes_skip_tombstoned_rows() {
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let mut e = edges();
        // Index first, then tombstone: postings still hold the dead row,
        // so both the scan arm and the probe arm must filter it.
        let idx = HashIndex::build(&e, &[0]);
        e.delete(&ituple![2, 3]);
        let (_, with_idx) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::probe_all(&idx, &e))],
        );
        assert_eq!(with_idx, vec![ituple![1, 5]]); // 1→2→3 and 2→3→4 are gone
        let (_, without) = collect(
            &plan,
            &[Some(Access::scan_all(&e)), Some(Access::scan_all(&e))],
        );
        assert_eq!(with_idx, without);
    }

    #[test]
    fn nested_probes_reuse_the_key_buffer() {
        // Three-way join forces probe-inside-probe recursion; the shared
        // key buffer must not corrupt outer probes.
        let p = parse_program("t(X,W) :- e(X,Y), e(Y,Z), e(Z,W).")
            .unwrap()
            .program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (n, out) = collect(
            &plan,
            &[
                Some(Access::scan_all(&e)),
                Some(Access::probe_all(&idx, &e)),
                Some(Access::probe_all(&idx, &e)),
            ],
        );
        assert_eq!(n, 1); // only 1→2→3→4 completes three hops
        assert_eq!(out, vec![ituple![1, 4]]);
    }
}
