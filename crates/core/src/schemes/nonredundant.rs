//! The §3 non-redundant scheme `Q_i`.
//!
//! Given a linear sirup
//!
//! ```text
//! e:  t(Z̄) :- s(Z̄)
//! r:  t(X̄) :- t(Ȳ), b₁, …, b_k
//! ```
//!
//! discriminating sequences `v(e)`, `v(r)` and hash functions `h'`, `h`
//! over `P = {0,…,n−1}`, processor `i` executes
//!
//! ```text
//! initialization:  t_out^i(Z̄) :- s(Z̄), h'(v(e)) = i
//! processing:      t_out^i(X̄) :- t_in^i(Ȳ), b₁, …, b_k, h(v(r)) = i
//! sending (∀j):    t_ij(Ȳ)    :- t_out^i(Ȳ), h(v(r)) = j
//! receiving (∀j):  t_in^i(W̄)  :- t_ji(W̄)
//! final pooling:   t(W̄)       :- t_out^i(W̄)
//! ```
//!
//! Implementation notes:
//! * the `i → i` "channel" is realized as a direct local rule
//!   `t_in^i(Ȳ) :- t_out^i(Ȳ), h(v(r)) = i` — semantically identical and
//!   it spares a loopback message;
//! * receiving and pooling are performed by the runtime (inbox injection
//!   and answer pooling), not as materialized rules;
//! * when `h` cannot be evaluated on an outgoing tuple — its variables
//!   are not all in `Ȳ`, or `h` is [`FragmentOwner`]-like — the sending
//!   rules drop their condition and broadcast, exactly the resolution the
//!   paper adopts for Example 2 ("the extra communication does not make
//!   the parallel execution either incorrect or redundant");
//! * the selection `h(v(r)) = i` of the processing rule is pushed into
//!   the join by the planner's eager constraint placement, realizing the
//!   fragment reads `b_k^i :- b_k, h(v(r)) = i` of the paper.
//!
//! [`FragmentOwner`]: crate::discriminator::FragmentOwner

use gst_common::Result;
use gst_frontend::ast::Literal;
use gst_frontend::{LinearSirup, Variable};
use gst_runtime::{ChannelOut, ProcessorProgram, WorkerSpec};
use gst_storage::Database;

use crate::discriminator::{DiscConstraint, DiscriminatorRef};
use crate::schemes::common::{
    atom, can_route, program, rel_id, validate_sequence, worker_databases, BaseDistribution,
    Namer,
};
use crate::schemes::CompiledScheme;

/// Parameters of the §3 rewriting.
#[derive(Clone)]
pub struct NonRedundantConfig {
    /// `v(r)` — discriminating sequence of the recursive rule.
    pub v_r: Vec<Variable>,
    /// `v(e)` — discriminating sequence of the exit rule.
    pub v_e: Vec<Variable>,
    /// `h` — discriminating function of the recursive rule.
    pub h: DiscriminatorRef,
    /// `h'` — discriminating function of the exit rule.
    pub h_prime: DiscriminatorRef,
    /// How base relations reach the workers.
    pub base: BaseDistribution,
}

/// Rewrite `sirup` under `cfg` into the non-redundant parallel scheme.
pub fn rewrite_non_redundant(
    sirup: &LinearSirup,
    cfg: &NonRedundantConfig,
    db: &Database,
) -> Result<CompiledScheme> {
    let n = cfg.h.processors();
    if cfg.h_prime.processors() != n {
        return Err(gst_common::Error::Discriminator(format!(
            "h and h' must map to the same processor set ({} vs {})",
            n,
            cfg.h_prime.processors()
        )));
    }
    validate_sequence(sirup.recursive_rule(), &cfg.v_r, "v(r)")?;
    validate_sequence(sirup.exit_rule(), &cfg.v_e, "v(e)")?;

    let interner = sirup.program.interner.clone();
    let namer = Namer::new(interner.clone());
    let t = rel_id(sirup.target);

    // Can the sending rules evaluate h on an outgoing tuple?
    let routed = can_route(&sirup.recursive_args, &cfg.v_r, cfg.h.locally_evaluable());

    let mut programs: Vec<ProcessorProgram> = Vec::with_capacity(n);
    for i in 0..n {
        let out_i = namer.out(t, i);
        let in_i = namer.input(t, i);
        let mut rules = Vec::new();

        // 0: initialization  t_out^i(Z̄) :- s-body, h'(v(e)) = i.
        {
            // Clone the whole exit body — atoms AND any built-in
            // constraint literals (e.g. comparisons) the rule carries.
            let mut body: Vec<Literal> = sirup.exit_rule().body.to_vec();
            body.push(Literal::Constraint(DiscConstraint::literal(
                cfg.v_e.clone(),
                cfg.h_prime.clone(),
                i,
            )));
            rules.push(gst_frontend::Rule::new(
                atom(out_i, sirup.exit_head.clone()),
                body,
            ));
        }

        // 1: processing  t_out^i(X̄) :- …, t_in^i(Ȳ), …, h(v(r)) = i.
        {
            let mut body: Vec<Literal> = Vec::with_capacity(sirup.base_atoms.len() + 2);
            let mut seen_atoms = 0usize;
            for literal in &sirup.recursive_rule().body {
                match literal {
                    Literal::Atom(a) => {
                        if seen_atoms == sirup.recursive_atom_index {
                            body.push(Literal::Atom(atom(in_i, a.terms.clone())));
                        } else {
                            body.push(Literal::Atom(a.clone()));
                        }
                        seen_atoms += 1;
                    }
                    Literal::Constraint(c) => body.push(Literal::Constraint(c.clone())),
                }
            }
            body.push(Literal::Constraint(DiscConstraint::literal(
                cfg.v_r.clone(),
                cfg.h.clone(),
                i,
            )));
            rules.push(gst_frontend::Rule::new(atom(out_i, sirup.head.clone()), body));
        }

        // Sending rules. Local (j = i) targets t_in^i directly.
        let mut outgoing = Vec::new();
        if routed {
            let pattern = sirup.recursive_args.clone();
            rules.push(gst_frontend::Rule::new(
                atom(in_i, pattern.clone()),
                vec![
                    Literal::Atom(atom(out_i, pattern.clone())),
                    Literal::Constraint(DiscConstraint::literal(
                        cfg.v_r.clone(),
                        cfg.h.clone(),
                        i,
                    )),
                ],
            ));
            for j in 0..n {
                if j == i {
                    continue;
                }
                let ch = namer.channel(t, i, j);
                rules.push(gst_frontend::Rule::new(
                    atom(ch, pattern.clone()),
                    vec![
                        Literal::Atom(atom(out_i, pattern.clone())),
                        Literal::Constraint(DiscConstraint::literal(
                            cfg.v_r.clone(),
                            cfg.h.clone(),
                            j,
                        )),
                    ],
                ));
                outgoing.push(ChannelOut {
                    channel: ch,
                    dest: j,
                    inbox: namer.input(t, j),
                });
            }
        } else {
            // Broadcast: every t_out tuple to every processor. All
            // destinations share one channel predicate `t_i*`, so the
            // runtime encodes the delta once and multicasts the payload.
            // One sending rule per destination is kept (their firings are
            // the per-destination sends the paper's cost model charges
            // for); set semantics collapse their identical derivations.
            let fresh = namer.fresh_vars(t.1);
            rules.push(gst_frontend::Rule::new(
                atom(in_i, fresh.clone()),
                vec![Literal::Atom(atom(out_i, fresh.clone()))],
            ));
            let ch = namer.broadcast(t, i);
            for j in 0..n {
                if j == i {
                    continue;
                }
                rules.push(gst_frontend::Rule::new(
                    atom(ch, fresh.clone()),
                    vec![Literal::Atom(atom(out_i, fresh.clone()))],
                ));
                outgoing.push(ChannelOut {
                    channel: ch,
                    dest: j,
                    inbox: namer.input(t, j),
                });
            }
        }

        programs.push(ProcessorProgram {
            processor: i,
            program: program(rules, &interner),
            outgoing,
            inboxes: vec![in_i],
            processing_rules: vec![0, 1],
            pooling: vec![(out_i, t)],
            local_idb: vec![],
            retract_channels: vec![],
        });
    }

    let edbs = worker_databases(db, &programs, cfg.base)?;
    let workers = programs
        .into_iter()
        .zip(edbs)
        .map(|(program, edb)| WorkerSpec { program, edb, session: None })
        .collect();

    Ok(CompiledScheme {
        workers,
        answers: vec![t],
        kind: "non-redundant (§3 Q_i)",
        hot_keys_split: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::HashMod;
    use gst_common::ituple;
    use gst_eval::seminaive_eval;
    use gst_frontend::parse_program;
    use gst_workloads::{chain, linear_ancestor, random_digraph};
    use std::sync::Arc;

    fn ancestor_sirup() -> (LinearSirup, gst_workloads::Fixture) {
        let fx = linear_ancestor();
        (LinearSirup::from_program(&fx.program).unwrap(), fx)
    }

    fn var(s: &LinearSirup, name: &str) -> Variable {
        Variable(s.program.interner.get(name).unwrap())
    }

    fn example3_config(s: &LinearSirup, n: usize) -> NonRedundantConfig {
        let h: DiscriminatorRef = Arc::new(HashMod::new(n, 7));
        NonRedundantConfig {
            v_r: vec![var(s, "Z")],
            v_e: vec![var(s, "X")],
            h: h.clone(),
            h_prime: h,
            base: BaseDistribution::MinimalFragments,
        }
    }

    #[test]
    fn matches_sequential_on_chain() {
        let (s, fx) = ancestor_sirup();
        let db = fx.database(&chain(12));
        let scheme = rewrite_non_redundant(&s, &example3_config(&s, 3), &db).unwrap();
        assert_eq!(scheme.processors(), 3);
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        assert_eq!(outcome.relation(anc).len(), 78);
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        let (s, fx) = ancestor_sirup();
        for seed in 0..3u64 {
            let db = fx.database(&random_digraph(30, 60, seed));
            let scheme = rewrite_non_redundant(&s, &example3_config(&s, 4), &db).unwrap();
            let outcome = scheme.run().unwrap();
            let seq = seminaive_eval(&fx.program, &db).unwrap();
            let anc = fx.output_id();
            assert!(
                outcome.relation(anc).set_eq(&seq.relation(anc)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn is_seminaive_non_redundant() {
        // Theorem 2: parallel processing firings ≤ sequential firings.
        let (s, fx) = ancestor_sirup();
        // A bushy graph with many duplicate derivations.
        let db = fx.database(&gst_workloads::grid(6, 6));
        let scheme = rewrite_non_redundant(&s, &example3_config(&s, 4), &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        assert!(
            outcome.stats.total_processing_firings() <= seq.stats.firings,
            "parallel {} > sequential {}",
            outcome.stats.total_processing_firings(),
            seq.stats.firings
        );
    }

    #[test]
    fn fragments_partition_base_relation() {
        let (s, fx) = ancestor_sirup();
        let edges = chain(40);
        let db = fx.database(&edges);
        let scheme = rewrite_non_redundant(&s, &example3_config(&s, 4), &db).unwrap();
        let par = fx.input_id(0);
        let total: usize = scheme
            .workers
            .iter()
            .map(|w| w.edb.relation(par).map(|r| r.len()).unwrap_or(0))
            .sum();
        // Each worker holds the X-fragment ∪ Z-fragment: ≤ 2·|par| total,
        // and strictly less than full replication (4·|par|).
        assert!(total <= 2 * edges.len());
        assert!(total >= edges.len());
    }

    #[test]
    fn single_processor_degenerates_to_sequential() {
        let (s, fx) = ancestor_sirup();
        let db = fx.database(&chain(8));
        let scheme = rewrite_non_redundant(&s, &example3_config(&s, 1), &db).unwrap();
        let outcome = scheme.run().unwrap();
        assert!(outcome.stats.communication_free());
        assert_eq!(outcome.relation(fx.output_id()).len(), 36);
    }

    #[test]
    fn rejects_mismatched_processor_counts() {
        let (s, fx) = ancestor_sirup();
        let db = fx.database(&chain(4));
        let cfg = NonRedundantConfig {
            v_r: vec![var(&s, "Z")],
            v_e: vec![var(&s, "X")],
            h: Arc::new(HashMod::new(2, 0)),
            h_prime: Arc::new(HashMod::new(3, 0)),
            base: BaseDistribution::Shared,
        };
        assert!(rewrite_non_redundant(&s, &cfg, &db).is_err());
    }

    #[test]
    fn rejects_foreign_discriminating_variable() {
        let (s, fx) = ancestor_sirup();
        let db = fx.database(&chain(4));
        let w = Variable(s.program.interner.intern("Wxyz"));
        let h: DiscriminatorRef = Arc::new(HashMod::new(2, 0));
        let cfg = NonRedundantConfig {
            v_r: vec![w],
            v_e: vec![var(&s, "X")],
            h: h.clone(),
            h_prime: h,
            base: BaseDistribution::Shared,
        };
        assert!(rewrite_non_redundant(&s, &cfg, &db).is_err());
    }

    #[test]
    fn works_on_same_generation() {
        let fx = gst_workloads::same_generation();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        let (up, down, flat) = gst_workloads::same_generation_tree(4);
        let db = fx.database_multi(&[up, down, flat]);
        // v(r) = ⟨U⟩ (first arg of the body sg-atom), v(e) = ⟨X⟩.
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 5));
        let cfg = NonRedundantConfig {
            v_r: vec![var(&s, "U")],
            v_e: vec![var(&s, "X")],
            h: h.clone(),
            h_prime: h,
            base: BaseDistribution::Shared,
        };
        let scheme = rewrite_non_redundant(&s, &cfg, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let sg = fx.output_id();
        assert!(outcome.relation(sg).set_eq(&seq.relation(sg)));
        assert!(outcome.relation(sg).contains(&ituple![2, 3]));
    }

    #[test]
    fn chain_sirup_arity3_is_supported() {
        let fx = gst_workloads::chain_sirup();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        // s(u,v,w): seed tuples; q(u,z) drives the recursion.
        let mut sdata = gst_storage::Relation::new(3);
        sdata.insert(ituple![1, 2, 3]).unwrap();
        sdata.insert(ituple![5, 6, 7]).unwrap();
        let mut qdata = gst_storage::Relation::new(2);
        for k in 0..6i64 {
            qdata.insert(ituple![k, k + 2]).unwrap();
        }
        let db = fx.database_multi(&[sdata, qdata]);
        let h: DiscriminatorRef = Arc::new(HashMod::new(2, 3));
        let cfg = NonRedundantConfig {
            v_r: vec![var(&s, "V"), var(&s, "W"), var(&s, "Z")],
            v_e: vec![var(&s, "U"), var(&s, "V"), var(&s, "W")],
            h: h.clone(),
            h_prime: h,
            base: BaseDistribution::Shared,
        };
        let scheme = rewrite_non_redundant(&s, &cfg, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let p = fx.output_id();
        assert!(outcome.relation(p).set_eq(&seq.relation(p)));
        assert!(!outcome.relation(p).is_empty());
    }

    #[test]
    fn parse_program_shape_guard() {
        // A non-sirup must be rejected before reaching this scheme.
        let p = parse_program("t(X) :- t(X).").unwrap().program;
        assert!(LinearSirup::from_program(&p).is_err());
    }
}
