//! Static analysis of Datalog programs.
//!
//! Implements the Section-2 notions the rewriting schemes rely on:
//!
//! * **safety** — every head variable occurs in a body atom (finite
//!   answers);
//! * the ***derives* relation** — predicate `Q` derives `R` if `Q` occurs
//!   in the body of a rule whose head is an `R`-atom;
//! * **recursive rules/predicates** — a rule is recursive if its head
//!   predicate transitively derives some predicate in its body, computed
//!   via Tarjan's strongly-connected components over the derives graph.

use gst_common::{Error, FxHashMap, Result};

use crate::ast::{Predicate, Program, Rule};

/// Analysis results for one program.
#[derive(Debug, Clone)]
pub struct ProgramAnalysis {
    predicates: Vec<Predicate>,
    derived: Vec<Predicate>,
    base: Vec<Predicate>,
    /// `edges[i]` lists successor indexes of predicate `i` in the derives
    /// graph (edge `Q → R` when `Q` derives `R`).
    edges: Vec<Vec<usize>>,
    index_of: FxHashMap<Predicate, usize>,
    /// Strongly connected component id per predicate index.
    scc_of: Vec<usize>,
    /// Whether each SCC contains a cycle (size > 1 or a self-loop).
    scc_cyclic: Vec<bool>,
    /// Per rule (by program index), whether the rule is recursive.
    rule_recursive: Vec<bool>,
}

impl ProgramAnalysis {
    /// Analyze `program`, rejecting unsafe rules.
    pub fn new(program: &Program) -> Result<Self> {
        for (idx, rule) in program.rules.iter().enumerate() {
            if !rule.is_safe() {
                return Err(Error::Analysis(format!(
                    "rule {idx} is unsafe: a head variable does not occur in any body atom"
                )));
            }
        }

        let predicates = program.predicates();
        let derived = program.derived_predicates();
        let base = program.base_predicates();
        let mut index_of: FxHashMap<Predicate, usize> = FxHashMap::default();
        for (i, &p) in predicates.iter().enumerate() {
            index_of.insert(p, i);
        }

        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); predicates.len()];
        for rule in &program.rules {
            let head = index_of[&rule.head.pred()];
            for atom in rule.body_atoms() {
                let body = index_of[&atom.pred()];
                if !edges[body].contains(&head) {
                    edges[body].push(head);
                }
            }
        }

        let (scc_of, scc_count) = tarjan_scc(&edges);
        let mut scc_size = vec![0usize; scc_count];
        for &s in &scc_of {
            scc_size[s] += 1;
        }
        let mut scc_cyclic = vec![false; scc_count];
        for (s, &size) in scc_size.iter().enumerate() {
            scc_cyclic[s] = size > 1;
        }
        for (from, succs) in edges.iter().enumerate() {
            if succs.contains(&from) {
                scc_cyclic[scc_of[from]] = true;
            }
        }

        let rule_recursive = program
            .rules
            .iter()
            .map(|rule| {
                let head = index_of[&rule.head.pred()];
                rule.body_atoms().any(|atom| {
                    let body = index_of[&atom.pred()];
                    scc_of[body] == scc_of[head] && scc_cyclic[scc_of[head]]
                })
            })
            .collect();

        Ok(ProgramAnalysis {
            predicates,
            derived,
            base,
            edges,
            index_of,
            scc_of,
            scc_cyclic,
            rule_recursive,
        })
    }

    /// All predicates of the program.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// Derived (intensional) predicates.
    pub fn derived(&self) -> &[Predicate] {
        &self.derived
    }

    /// Base (extensional) predicates.
    pub fn base(&self) -> &[Predicate] {
        &self.base
    }

    /// Whether the rule at `index` (program order) is recursive.
    pub fn is_recursive_rule(&self, index: usize) -> bool {
        self.rule_recursive[index]
    }

    /// Whether `p` participates in any recursion (cyclic SCC).
    pub fn is_recursive_predicate(&self, p: Predicate) -> bool {
        self.index_of
            .get(&p)
            .map(|&i| self.scc_cyclic[self.scc_of[i]])
            .unwrap_or(false)
    }

    /// Whether `q` (transitively) derives `r`, i.e. there is a non-empty
    /// path `q → … → r` in the derives graph.
    pub fn transitively_derives(&self, q: Predicate, r: Predicate) -> bool {
        let (Some(&from), Some(&to)) = (self.index_of.get(&q), self.index_of.get(&r)) else {
            return false;
        };
        // BFS over the derives graph; small graphs, no need for caching.
        let mut seen = vec![false; self.edges.len()];
        let mut queue = std::collections::VecDeque::new();
        for &s in &self.edges[from] {
            if !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            for &s in &self.edges[n] {
                if !seen[s] {
                    seen[s] = true;
                    queue.push_back(s);
                }
            }
        }
        false
    }

    /// Convenience: check a rule (not necessarily from the analyzed
    /// program) against this analysis for recursion, by predicate SCCs.
    pub fn rule_is_recursive(&self, rule: &Rule) -> bool {
        let Some(&head) = self.index_of.get(&rule.head.pred()) else {
            return false;
        };
        rule.body_atoms().any(|atom| {
            self.index_of
                .get(&atom.pred())
                .map(|&b| self.scc_of[b] == self.scc_of[head] && self.scc_cyclic[self.scc_of[head]])
                .unwrap_or(false)
        })
    }
}

/// Iterative Tarjan SCC. Returns `(scc_of, scc_count)`; component ids are
/// assigned in reverse topological order of discovery (ids themselves carry
/// no ordering guarantee we rely on).
fn tarjan_scc(edges: &[Vec<usize>]) -> (Vec<usize>, usize) {
    const UNSET: usize = usize::MAX;
    let n = edges.len();
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut scc_of = vec![UNSET; n];
    let mut next_index = 0usize;
    let mut scc_count = 0usize;

    // Explicit DFS stack: (node, next child position).
    let mut call_stack: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != UNSET {
            continue;
        }
        call_stack.push((root, 0));
        index[root] = next_index;
        lowlink[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(&mut (v, ref mut child)) = call_stack.last_mut() {
            if *child < edges[v].len() {
                let w = edges[v][*child];
                *child += 1;
                if index[w] == UNSET {
                    index[w] = next_index;
                    lowlink[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call_stack.push((w, 0));
                } else if on_stack[w] {
                    lowlink[v] = lowlink[v].min(index[w]);
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
                if lowlink[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        scc_of[w] = scc_count;
                        if w == v {
                            break;
                        }
                    }
                    scc_count += 1;
                }
            }
        }
    }
    (scc_of, scc_count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn analyze(src: &str) -> (Program, ProgramAnalysis) {
        let unit = parse_program(src).unwrap();
        let a = ProgramAnalysis::new(&unit.program).unwrap();
        (unit.program, a)
    }

    fn pred(p: &Program, name: &str, arity: usize) -> Predicate {
        Predicate::new(p.interner.get(name).unwrap(), arity)
    }

    #[test]
    fn linear_ancestor_classification() {
        let (p, a) = analyze(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).",
        );
        assert!(!a.is_recursive_rule(0));
        assert!(a.is_recursive_rule(1));
        assert!(a.is_recursive_predicate(pred(&p, "anc", 2)));
        assert!(!a.is_recursive_predicate(pred(&p, "par", 2)));
    }

    #[test]
    fn nonlinear_ancestor_classification() {
        let (_, a) = analyze(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- anc(X,Z), anc(Z,Y).",
        );
        assert!(!a.is_recursive_rule(0));
        assert!(a.is_recursive_rule(1));
    }

    #[test]
    fn mutual_recursion_detected() {
        let (p, a) = analyze(
            "even(X) :- zero(X).\n\
             even(X) :- succ(Y,X), odd(Y).\n\
             odd(X) :- succ(Y,X), even(Y).",
        );
        assert!(a.is_recursive_predicate(pred(&p, "even", 1)));
        assert!(a.is_recursive_predicate(pred(&p, "odd", 1)));
        assert!(!a.is_recursive_rule(0));
        assert!(a.is_recursive_rule(1));
        assert!(a.is_recursive_rule(2));
    }

    #[test]
    fn transitive_derives() {
        let (p, a) = analyze(
            "b(X) :- a(X).\n\
             c(X) :- b(X).\n\
             d(X) :- c(X).",
        );
        let ap = pred(&p, "a", 1);
        let dp = pred(&p, "d", 1);
        assert!(a.transitively_derives(ap, dp));
        assert!(!a.transitively_derives(dp, ap));
        // derives is irreflexive without cycles
        assert!(!a.transitively_derives(ap, ap));
    }

    #[test]
    fn self_derivation_through_cycle() {
        let (p, a) = analyze("t(X,Y) :- t(Y,X).\nt(X,Y) :- e(X,Y).");
        let t = pred(&p, "t", 2);
        assert!(a.transitively_derives(t, t));
    }

    #[test]
    fn unsafe_rule_rejected() {
        let unit = parse_program("p(X,Y) :- q(X).").unwrap();
        let err = ProgramAnalysis::new(&unit.program).unwrap_err();
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn base_derived_split() {
        let (p, a) = analyze("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).");
        assert_eq!(a.derived(), &[pred(&p, "anc", 2)]);
        assert_eq!(a.base(), &[pred(&p, "par", 2)]);
        assert_eq!(a.predicates().len(), 2);
    }

    #[test]
    fn nonrecursive_chain_has_no_recursive_rules() {
        let (_, a) = analyze("b(X) :- a(X).\nc(X) :- b(X), a(X).");
        assert!(!a.is_recursive_rule(0));
        assert!(!a.is_recursive_rule(1));
    }

    #[test]
    fn rule_is_recursive_on_foreign_rule() {
        let (p, a) = analyze("t(X,Y) :- e(X,Y).\nt(X,Y) :- t(X,Z), e(Z,Y).");
        assert!(a.rule_is_recursive(&p.rules[1]));
        assert!(!a.rule_is_recursive(&p.rules[0]));
    }

    #[test]
    fn tarjan_on_diamond() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 : four singleton SCCs.
        let edges = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let (scc_of, count) = tarjan_scc(&edges);
        assert_eq!(count, 4);
        let distinct: std::collections::HashSet<_> = scc_of.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    fn tarjan_on_cycle() {
        // 0 -> 1 -> 2 -> 0 plus 2 -> 3.
        let edges = vec![vec![1], vec![2], vec![0, 3], vec![]];
        let (scc_of, count) = tarjan_scc(&edges);
        assert_eq!(count, 2);
        assert_eq!(scc_of[0], scc_of[1]);
        assert_eq!(scc_of[1], scc_of[2]);
        assert_ne!(scc_of[3], scc_of[0]);
    }
}
