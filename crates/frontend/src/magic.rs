//! Magic-sets rewrite: demand-driven evaluation of point queries.
//!
//! A query `?- anc("ann", Y).` binds some arguments of a derived predicate
//! to constants. Evaluating the full least model to answer it wastes work
//! proportional to the *whole* closure; the magic-sets transformation
//! (Bancilhon–Maier–Sagiv–Ullman) rewrites the program so a semi-naive
//! fixpoint explores only the part of the model the query can reach.
//!
//! The rewrite is mechanical and produces ordinary Datalog:
//!
//! 1. **Adornments.** Starting from the query's bound/free pattern (`b`
//!    where the argument is a constant, `f` where it is a variable),
//!    propagate a left-to-right *sideways information passing* (SIP)
//!    strategy through every rule: a body argument is bound if it is a
//!    constant, bound in the head, or appears in an earlier body atom.
//!    Each reachable derived predicate `p` with adornment `a` becomes a
//!    fresh predicate `p_a` (e.g. `anc_bf`).
//! 2. **Magic predicates.** For each `p^a` a predicate `m_p_a` holds the
//!    demand tuples — the bound-argument combinations whose answers the
//!    query actually needs. Every adorned rule is *guarded* by its magic
//!    atom, and every derived body occurrence contributes a *magic rule*
//!    deriving the demand it creates from the guard plus the occurrence's
//!    SIP prefix.
//! 3. **Seed.** The query constants form one fact. Because magic
//!    predicates appear in rule heads (they are derived), the seed is
//!    loaded under an auxiliary *base* predicate and copied in by a seed
//!    rule — this keeps the output a plain program the parallel runtime
//!    (scheme rewriting, semi-naive evaluation, all transports, recovery,
//!    profiling) runs unchanged.
//!
//! All generated names are lowercase-identifier-shaped, so the rewrite
//! pretty-prints (`--explain-rewrite`) and re-parses to itself.

use std::collections::{HashMap, HashSet, VecDeque};

use gst_common::{Error, Result, Tuple, Value};

use crate::ast::{Atom, Literal, Predicate, Program, Rule, Term, Variable};
use crate::pretty;

/// What a generated rule is, for provenance labels and partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MagicRuleKind {
    /// The seed copy rule `m_q_a(..) :- m_q_a_seed(..).`
    Seed,
    /// A magic rule deriving demand for a body occurrence.
    Magic,
    /// A guarded adorned copy of a source rule.
    Adorned,
}

/// Provenance of one generated rule, aligned with
/// [`MagicRewrite::program`] by index.
#[derive(Debug, Clone)]
pub struct MagicRuleInfo {
    /// Seed, magic, or adorned.
    pub kind: MagicRuleKind,
    /// Index of the source rule this was generated from, if any.
    pub source_rule: Option<usize>,
    /// Source predicate name the rule concerns (`anc`, not `m_anc_bf`).
    pub predicate: String,
    /// The adornment string, e.g. `bf` (empty for arity 0).
    pub adornment: String,
    /// Distinct variables of the rule's demand guard, in term order —
    /// the demand key a partitioning strategy should co-locate on.
    pub guard: Vec<Variable>,
}

impl MagicRuleInfo {
    /// Human label for profiling tables, e.g. `anc^bf [magic r1]`.
    pub fn label(&self) -> String {
        let head = if self.adornment.is_empty() {
            self.predicate.clone()
        } else {
            format!("{}^{}", self.predicate, self.adornment)
        };
        let tag = match (self.kind, self.source_rule) {
            (MagicRuleKind::Seed, _) => "seed".to_string(),
            (MagicRuleKind::Magic, Some(k)) => format!("magic r{k}"),
            (MagicRuleKind::Magic, None) => "magic".to_string(),
            (MagicRuleKind::Adorned, Some(k)) => format!("adorned r{k}"),
            (MagicRuleKind::Adorned, None) => "adorned".to_string(),
        };
        format!("{head} [{tag}]")
    }
}

/// The output of [`magic_rewrite`]: an ordinary program plus the seed
/// fact and per-rule provenance.
#[derive(Debug, Clone)]
pub struct MagicRewrite {
    /// The adorned + magic program. Shares the source interner.
    pub program: Program,
    /// Auxiliary *base* predicate carrying the demand seed.
    pub seed_predicate: Predicate,
    /// The seed tuple: the query's constants, in bound-position order.
    pub seed_fact: Tuple,
    /// The adorned query predicate whose relation holds the answers
    /// (filter with [`MagicRewrite::answer_matches`] before printing —
    /// it also holds answers for transitively demanded bindings).
    pub answer: Predicate,
    /// The original query goal.
    pub query: Atom,
    /// Provenance, one entry per rule of [`MagicRewrite::program`].
    pub rules: Vec<MagicRuleInfo>,
}

impl MagicRewrite {
    /// The seed fact as a ground atom (for printing / loading).
    pub fn seed_atom(&self) -> Atom {
        Atom::new(
            self.seed_predicate.name,
            self.seed_fact.as_slice().iter().map(|v| Term::Const(*v)).collect(),
        )
    }

    /// True if `tuple` (from the answer relation) matches the query
    /// goal: constants agree and repeated variables bind consistently.
    pub fn answer_matches(&self, tuple: &Tuple) -> bool {
        let mut bound: HashMap<Variable, Value> = HashMap::new();
        for (i, term) in self.query.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if tuple.get(i) != *c {
                        return false;
                    }
                }
                Term::Var(v) => match bound.get(v) {
                    Some(prev) => {
                        if *prev != tuple.get(i) {
                            return false;
                        }
                    }
                    None => {
                        bound.insert(*v, tuple.get(i));
                    }
                },
            }
        }
        true
    }

    /// Pretty-print the rewrite: every generated rule with a provenance
    /// comment, then the seed fact. The output re-parses to the same
    /// program (comments are skipped by the lexer).
    pub fn explain(&self) -> String {
        let interner = &self.program.interner;
        let mut out = String::new();
        for (rule, info) in self.program.rules.iter().zip(&self.rules) {
            out.push_str(&format!(
                "{}  % {}\n",
                pretty::rule(rule, interner),
                info.label()
            ));
        }
        out.push_str(&format!("{}.  % demand seed\n", pretty::atom(&self.seed_atom(), interner)));
        out
    }
}

/// Render an adornment as its conventional string, e.g. `[true,false]`
/// → `"bf"`.
pub fn adornment_str(adornment: &[bool]) -> String {
    adornment.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// Allocates collision-free, identifier-shaped names for adorned and
/// magic predicates.
struct Namer {
    used: HashSet<String>,
    adorned: HashMap<(Predicate, Vec<bool>), Predicate>,
    magic: HashMap<(Predicate, Vec<bool>), Predicate>,
}

impl Namer {
    fn new(source: &Program) -> Self {
        let used = source
            .predicates()
            .into_iter()
            .map(|p| source.interner.resolve(p.name).to_string())
            .collect();
        Namer {
            used,
            adorned: HashMap::new(),
            magic: HashMap::new(),
        }
    }

    fn fresh(&mut self, base: String) -> String {
        let mut name = base;
        while self.used.contains(&name) {
            name.push_str("_m");
        }
        self.used.insert(name.clone());
        name
    }

    fn adorned(&mut self, program: &Program, p: Predicate, a: &[bool]) -> Predicate {
        if let Some(q) = self.adorned.get(&(p, a.to_vec())) {
            return *q;
        }
        let base = program.interner.resolve(p.name).to_string();
        let astr = adornment_str(a);
        let name = if astr.is_empty() {
            self.fresh(format!("{base}_q"))
        } else {
            self.fresh(format!("{base}_{astr}"))
        };
        let q = Predicate::new(program.interner.intern(&name), p.arity);
        self.adorned.insert((p, a.to_vec()), q);
        q
    }

    fn magic(&mut self, program: &Program, p: Predicate, a: &[bool]) -> Predicate {
        if let Some(q) = self.magic.get(&(p, a.to_vec())) {
            return *q;
        }
        let base = program.interner.resolve(p.name).to_string();
        let astr = adornment_str(a);
        let name = if astr.is_empty() {
            self.fresh(format!("m_{base}"))
        } else {
            self.fresh(format!("m_{base}_{astr}"))
        };
        let arity = a.iter().filter(|&&b| b).count();
        let q = Predicate::new(program.interner.intern(&name), arity);
        self.magic.insert((p, a.to_vec()), q);
        q
    }
}

/// Distinct variables of an atom, in term order.
fn distinct_vars(atom: &Atom) -> Vec<Variable> {
    let mut out = Vec::new();
    for v in atom.variables() {
        if !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// Rewrite `source` for the point query `query` (constants mark bound
/// arguments). Errors if the goal predicate is not derived by the
/// program, or if no argument is bound (the rewrite would degenerate to
/// full evaluation — just run the program).
pub fn magic_rewrite(source: &Program, query: &Atom) -> Result<MagicRewrite> {
    let interner = source.interner.clone();
    let goal_pred = query.pred();
    if !source.is_derived(goal_pred) {
        return Err(Error::Shape(format!(
            "query goal {} is not a derived predicate of the program; \
             point queries on base relations need no rewrite",
            goal_pred.display(&interner)
        )));
    }
    let goal_adornment: Vec<bool> = query
        .terms
        .iter()
        .map(|t| t.as_const().is_some())
        .collect();
    if !goal_adornment.iter().any(|&b| b) {
        return Err(Error::Shape(
            "query has no bound argument (all terms are variables); \
             the magic rewrite would evaluate the full closure — run the \
             program and filter instead"
                .into(),
        ));
    }

    let mut namer = Namer::new(source);
    let mut rules: Vec<Rule> = Vec::new();
    let mut infos: Vec<MagicRuleInfo> = Vec::new();
    let push_rule = |rules: &mut Vec<Rule>, infos: &mut Vec<MagicRuleInfo>, r: Rule, i: MagicRuleInfo| {
        // Skip tautologies (`m(X) :- m(X).`, from occurrences whose
        // demand is their own guard) and exact duplicates.
        if r.body.len() == 1 && r.body[0] == Literal::Atom(r.head.clone()) {
            return;
        }
        if rules.contains(&r) {
            return;
        }
        rules.push(r);
        infos.push(i);
    };

    // Seed rule first: copy the seed base relation into the goal's magic
    // predicate. Fresh variables B0.. (uppercase so the rendering
    // re-parses as variables).
    let goal_magic = namer.magic(source, goal_pred, &goal_adornment);
    let seed_name = namer.fresh(format!(
        "{}_seed",
        interner.resolve(goal_magic.name)
    ));
    let seed_predicate = Predicate::new(interner.intern(&seed_name), goal_magic.arity);
    let seed_vars: Vec<Term> = (0..goal_magic.arity)
        .map(|i| Term::Var(Variable(interner.intern(&format!("B{i}")))))
        .collect();
    push_rule(
        &mut rules,
        &mut infos,
        Rule::new(
            Atom::new(goal_magic.name, seed_vars.clone()),
            vec![Literal::Atom(Atom::new(seed_predicate.name, seed_vars.clone()))],
        ),
        MagicRuleInfo {
            kind: MagicRuleKind::Seed,
            source_rule: None,
            predicate: interner.resolve(goal_pred.name).to_string(),
            adornment: adornment_str(&goal_adornment),
            guard: seed_vars.iter().filter_map(Term::as_var).collect(),
        },
    );
    let seed_fact: Tuple = query.terms.iter().filter_map(Term::as_const).collect();

    // Propagate adornments through every reachable derived predicate.
    let mut seen: HashSet<(Predicate, Vec<bool>)> = HashSet::new();
    let mut worklist: VecDeque<(Predicate, Vec<bool>)> = VecDeque::new();
    seen.insert((goal_pred, goal_adornment.clone()));
    worklist.push_back((goal_pred, goal_adornment.clone()));

    while let Some((p, a)) = worklist.pop_front() {
        let p_adorned = namer.adorned(source, p, &a);
        let p_magic = namer.magic(source, p, &a);
        for (k, rule) in source.rules.iter().enumerate() {
            if rule.head.pred() != p {
                continue;
            }
            // The guard: demand for this head under adornment `a`.
            let guard_terms: Vec<Term> = rule
                .head
                .terms
                .iter()
                .zip(&a)
                .filter(|(_, &b)| b)
                .map(|(t, _)| *t)
                .collect();
            let guard = Atom::new(p_magic.name, guard_terms);
            let guard_vars = distinct_vars(&guard);

            // SIP state: variables bound so far, and the prefix of
            // literals a magic rule for a later occurrence may use.
            let mut bound: HashSet<Variable> = guard.variables().collect();
            let mut prefix: Vec<Literal> = vec![Literal::Atom(guard.clone())];
            let mut adorned_body: Vec<Literal> = vec![Literal::Atom(guard.clone())];

            for literal in &rule.body {
                match literal {
                    Literal::Atom(atom) if source.is_derived(atom.pred()) => {
                        let occ: Vec<bool> = atom
                            .terms
                            .iter()
                            .map(|t| match t {
                                Term::Const(_) => true,
                                Term::Var(v) => bound.contains(v),
                            })
                            .collect();
                        let q = atom.pred();
                        let q_magic = namer.magic(source, q, &occ);
                        let m_head_terms: Vec<Term> = atom
                            .terms
                            .iter()
                            .zip(&occ)
                            .filter(|(_, &b)| b)
                            .map(|(t, _)| *t)
                            .collect();
                        push_rule(
                            &mut rules,
                            &mut infos,
                            Rule::new(Atom::new(q_magic.name, m_head_terms), prefix.clone()),
                            MagicRuleInfo {
                                kind: MagicRuleKind::Magic,
                                source_rule: Some(k),
                                predicate: interner.resolve(q.name).to_string(),
                                adornment: adornment_str(&occ),
                                guard: guard_vars.clone(),
                            },
                        );
                        if seen.insert((q, occ.clone())) {
                            worklist.push_back((q, occ.clone()));
                        }
                        let q_adorned = namer.adorned(source, q, &occ);
                        let renamed = Atom::new(q_adorned.name, atom.terms.clone());
                        adorned_body.push(Literal::Atom(renamed.clone()));
                        bound.extend(atom.variables());
                        prefix.push(Literal::Atom(renamed));
                    }
                    Literal::Atom(atom) => {
                        adorned_body.push(literal.clone());
                        bound.extend(atom.variables());
                        prefix.push(literal.clone());
                    }
                    Literal::Constraint(c) => {
                        adorned_body.push(literal.clone());
                        // A constraint joins the SIP prefix only once all
                        // of its variables are bound there; otherwise the
                        // magic rules soundly over-approximate demand.
                        if c.variables().iter().all(|v| bound.contains(v)) {
                            prefix.push(literal.clone());
                        }
                    }
                }
            }

            push_rule(
                &mut rules,
                &mut infos,
                Rule::new(Atom::new(p_adorned.name, rule.head.terms.clone()), adorned_body),
                MagicRuleInfo {
                    kind: MagicRuleKind::Adorned,
                    source_rule: Some(k),
                    predicate: interner.resolve(p.name).to_string(),
                    adornment: adornment_str(&a),
                    guard: guard_vars,
                },
            );
        }
    }

    let answer = namer.adorned(source, goal_pred, &goal_adornment);
    Ok(MagicRewrite {
        program: Program::new(rules, interner),
        seed_predicate,
        seed_fact,
        answer,
        query: query.clone(),
        rules: infos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::pretty;

    fn goal(unit: &crate::parser::ParsedUnit) -> Atom {
        unit.queries[0].clone()
    }

    #[test]
    fn rewrites_left_linear_ancestor() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             ?- anc(ann, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        let text = pretty::program(&rw.program);
        assert_eq!(
            text,
            "m_anc_bf(B0) :- m_anc_bf_seed(B0).\n\
             anc_bf(X, Y) :- m_anc_bf(X), par(X, Y).\n\
             m_anc_bf(Z) :- m_anc_bf(X), par(X, Z).\n\
             anc_bf(X, Y) :- m_anc_bf(X), par(X, Z), anc_bf(Z, Y).",
            "unexpected rewrite:\n{text}"
        );
        assert_eq!(rw.seed_fact.len(), 1);
        assert_eq!(rw.answer.arity, 2);
        let i = &rw.program.interner;
        assert_eq!(&*i.resolve(rw.answer.name), "anc_bf");
        assert_eq!(&*i.resolve(rw.seed_predicate.name), "m_anc_bf_seed");
        // Provenance: seed, adorned r0, magic r1, adorned r1.
        let labels: Vec<String> = rw.rules.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "anc^bf [seed]",
                "anc^bf [adorned r0]",
                "anc^bf [magic r1]",
                "anc^bf [adorned r1]"
            ]
        );
    }

    #[test]
    fn right_linear_demand_does_not_propagate() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- anc(X,Z), par(Z,Y).\n\
             ?- anc(ann, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        // The recursive occurrence's magic rule is the tautology
        // m(X) :- m(X) and is dropped: demand stays exactly the seed.
        assert_eq!(
            pretty::program(&rw.program),
            "m_anc_bf(B0) :- m_anc_bf_seed(B0).\n\
             anc_bf(X, Y) :- m_anc_bf(X), par(X, Y).\n\
             anc_bf(X, Y) :- m_anc_bf(X), anc_bf(X, Z), par(Z, Y)."
        );
    }

    #[test]
    fn nonlinear_rules_demand_both_occurrences() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- anc(X,Z), anc(Z,Y).\n\
             ?- anc(ann, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        assert_eq!(
            pretty::program(&rw.program),
            "m_anc_bf(B0) :- m_anc_bf_seed(B0).\n\
             anc_bf(X, Y) :- m_anc_bf(X), par(X, Y).\n\
             m_anc_bf(Z) :- m_anc_bf(X), anc_bf(X, Z).\n\
             anc_bf(X, Y) :- m_anc_bf(X), anc_bf(X, Z), anc_bf(Z, Y)."
        );
    }

    #[test]
    fn multi_predicate_adornment_propagates() {
        // buys^bf demands likes^bf through the SIP.
        let unit = parse_program(
            "buys(X,Y) :- likes(X,Y).\n\
             likes(X,Y) :- knows(X,Z), likes(Z,Y).\n\
             likes(X,Y) :- owns(X,Y).\n\
             ?- buys(ann, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        let text = pretty::program(&rw.program);
        assert!(text.contains("m_likes_bf(X) :- m_buys_bf(X)."), "{text}");
        assert!(text.contains("likes_bf(X, Y) :- m_likes_bf(X), owns(X, Y)."), "{text}");
    }

    #[test]
    fn comparison_constraints_survive_the_rewrite() {
        let unit = parse_program(
            "reach(X,Y) :- edge(X,Y,W), W < 10.\n\
             reach(X,Y) :- edge(X,Z,W), W < 10, reach(Z,Y).\n\
             ?- reach(ann, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        let text = pretty::program(&rw.program);
        // The bounded-weight condition guards both the adorned rule and
        // the magic rule (its variables are in the SIP prefix).
        assert!(text.contains("m_reach_bf(Z) :- m_reach_bf(X), edge(X, Z, W), W < 10."), "{text}");
    }

    #[test]
    fn explain_round_trips_through_the_parser() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             ?- anc(\"ann lee\", Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        let printed = rw.explain();
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(pretty::program(&reparsed.program), pretty::program(&rw.program));
        assert_eq!(reparsed.program.rules.len(), rw.program.rules.len());
        // The seed fact re-parses as the single ground fact.
        assert_eq!(reparsed.facts.len(), 1);
        assert_eq!(reparsed.facts[0].0.arity, rw.seed_predicate.arity);
    }

    #[test]
    fn generated_names_avoid_collisions() {
        let unit = parse_program(
            "anc_bf(X) :- m_anc_bf(X).\n\
             m_anc_bf(X) :- src(X).\n\
             anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             ?- anc(ann, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        let i = &rw.program.interner;
        assert_eq!(&*i.resolve(rw.answer.name), "anc_bf_m");
        let text = pretty::program(&rw.program);
        assert!(text.contains("m_anc_bf_m(Z) :- m_anc_bf_m(X), par(X, Z)."), "{text}");
    }

    #[test]
    fn unbound_query_is_rejected() {
        let unit = parse_program("anc(X,Y) :- par(X,Y).\n?- anc(X, Y).").unwrap();
        let err = magic_rewrite(&unit.program, &goal(&unit)).unwrap_err();
        assert!(err.to_string().contains("no bound argument"), "{err}");
    }

    #[test]
    fn base_predicate_query_is_rejected() {
        let unit = parse_program("anc(X,Y) :- par(X,Y).\n?- par(ann, Y).").unwrap();
        let err = magic_rewrite(&unit.program, &goal(&unit)).unwrap_err();
        assert!(err.to_string().contains("not a derived predicate"), "{err}");
    }

    #[test]
    fn answer_matching_checks_constants_and_repeats() {
        let unit = parse_program(
            "p(X,Y,Z) :- e(X,Y,Z).\n\
             ?- p(ann, Y, Y).",
        )
        .unwrap();
        let rw = magic_rewrite(&unit.program, &goal(&unit)).unwrap();
        let i = &rw.program.interner;
        let ann = Value::Sym(i.get("ann").unwrap());
        let bob = Value::Sym(i.intern("bob"));
        let t = |a, b, c| -> Tuple { [a, b, c].into_iter().collect() };
        assert!(rw.answer_matches(&t(ann, bob, bob)));
        assert!(!rw.answer_matches(&t(bob, bob, bob)));
        assert!(!rw.answer_matches(&t(ann, ann, bob)));
    }
}
