//! # parallel-datalog
//!
//! A Rust implementation of **"A Framework for the Parallel Processing of
//! Datalog Queries"** (Ganguly, Silberschatz & Tsur, SIGMOD 1990): parallel
//! bottom-up (semi-naive) Datalog evaluation driven by *discriminating
//! hash functions* that partition the set of ground substitutions across
//! processors, with provably non-redundant computation and compile-time
//! derivation of the minimal interprocessor network.
//!
//! This crate is a facade that re-exports the workspace layers:
//!
//! * [`common`] — values, tuples, interning, hashing;
//! * [`frontend`] — Datalog parser, AST, program analysis, linear sirups;
//! * [`storage`] — relations, indexes, deltas, fragmentation;
//! * [`eval`] — naive and semi-naive sequential engines;
//! * [`runtime`] — multi-worker runtime with channels and distributed
//!   termination detection;
//! * [`core`] — the paper's contribution: discriminating functions, the
//!   rewriting schemes of §3/§6/§7, dataflow graphs (§5) and minimal
//!   network-graph derivation (§5);
//! * [`workloads`] — deterministic graph generators and a program corpus.
//!
//! ## Quickstart
//!
//! Parallel transitive closure on 4 processors with the paper's §3
//! non-redundant scheme (Example 3's discriminating choice):
//!
//! ```
//! use std::sync::Arc;
//! use parallel_datalog::prelude::*;
//!
//! // Parse the program and its facts.
//! let unit = parse_program(
//!     "anc(X,Y) :- par(X,Y).\n\
//!      anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
//!      par(1,2). par(2,3). par(3,4).",
//! ).unwrap();
//! let mut db = Database::new(unit.program.interner.clone());
//! db.load_facts(unit.facts.clone()).unwrap();
//!
//! // Recognize the linear sirup and pick discriminating sequences.
//! let sirup = LinearSirup::from_program(&unit.program).unwrap();
//! let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
//!
//! // Execute on 4 real worker threads and pool the answer.
//! let outcome = scheme.run().unwrap();
//! let anc = (unit.program.interner.get("anc").unwrap(), 2);
//! assert_eq!(outcome.relation(anc).len(), 6);
//!
//! // The parallel run fires no more rules than sequential semi-naive
//! // evaluation (the paper's Theorem 2).
//! let seq = seminaive_eval(&unit.program, &db).unwrap();
//! assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
//! ```

pub use gst_common as common;
pub use gst_core as core;
pub use gst_eval as eval;
pub use gst_frontend as frontend;
pub use gst_runtime as runtime;
pub use gst_storage as storage;
pub use gst_workloads as workloads;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use gst_common::{ituple, Error, Interner, Result, SmallRng, Tuple, Value};
    pub use gst_core::prelude::*;
    pub use gst_eval::{naive_eval, seminaive_eval, EvalResult, EvalStats, FixpointEngine};
    pub use gst_frontend::{
        parse_program, Atom, LinearSirup, Literal, Predicate, Program, ProgramAnalysis, Rule,
        Term, Variable,
    };
    pub use gst_runtime::{
        execute_processors, ChannelOut, ExecutionOutcome, ProcessorProgram, RuntimeConfig,
        SessionSeed, ThreadedTransport, Transport, WorkerSpec,
    };
    pub use gst_storage::{
        hash_fragment, round_robin_fragment, Database, Fragmentation, HashIndex, Relation,
    };
}
