//! Deterministic simulation transport: all processors on one thread,
//! under a virtual clock, with seeded adversarial scheduling and fault
//! injection.
//!
//! The threaded transport leaves scheduling to the OS — every run explores
//! one uncontrollable interleaving. [`SimTransport`] turns the schedule
//! into an *input*: a discrete-event loop pops `(virtual time, tiebreak)`
//! ordered events off a heap, and every nondeterministic choice — which
//! worker steps next, how long a step takes, when a message arrives,
//! whether it is duplicated, delayed or dropped-and-redelivered
//! ([`FaultPlan`]) — is drawn from a [`SmallRng`] seeded by the caller.
//! Identical seed, specs and plan ⇒ identical event sequence, trace,
//! per-worker firing counts and final model, bit for bit. A failing seed
//! from a sweep ([`crate::explore`]) is therefore a complete, replayable
//! bug report.
//!
//! The same [`crate::worker::WorkerCore`] state machine runs here and in
//! the threaded transport; nothing is mocked above the wire. This is the
//! simulation-testing discipline FoundationDB popularized, applied to the
//! paper's architecture: the algorithmic claims (least-model correctness
//! under asynchrony, Safra termination, set-semantics idempotence under
//! duplication) are checked under schedules far nastier than an OS will
//! produce in a CI run.
//!
//! Crashes come in two flavors. A plain [`crate::fault::CrashSpec`] kills a
//! worker for good and the run must surface the idle-watchdog error at a
//! healthy peer. With `recover: true` the event loop plays the supervisor:
//! after [`RESTART_DELAY`] ticks it rebuilds the worker from its retained
//! spec in a fresh recovery epoch and broadcasts `Recover` to the whole
//! fleet over a reliable path (bypassing the fault plan, like a
//! supervisor's control channel), whereupon peers replay their logged
//! traffic and the repaired ring re-runs termination detection — see
//! `DESIGN.md` §7. One modeling caveat: a worker that crashes *after* the
//! termination decision keeps its in-memory result for pooling (the crash
//! handler skips terminated cores), which is the abstraction boundary of a
//! single-process simulation, not a claim about durable storage.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use gst_common::{Result, SmallRng};

use crate::coordinator::RuntimeConfig;
use crate::fault::FaultPlan;
use crate::message::{Envelope, Message, MessageKind};
use crate::obs::{ObsEvent, ObsKind, TimeBase, TraceSink};
use crate::spec::WorkerSpec;
use crate::stats::ExecutionOutcome;
use crate::transport::{assemble_outcome, validate_specs, Transport};
use crate::worker::{finish_core, watchdog_error, Outbox, Step, WorkerCore};

/// Extra virtual ticks a step may cost beyond its base tick — the
/// scheduler's knob for letting workers race past each other.
const STEP_JITTER: u64 = 4;

/// Hard ceiling on processed events: a diverging simulation (which would
/// mean a liveness bug) fails loudly instead of spinning forever.
const MAX_EVENTS: u64 = 20_000_000;

/// Virtual ticks between a recoverable crash and the simulated
/// supervisor's restart of the worker — long enough for in-flight
/// pre-crash traffic to keep racing the recovery broadcast.
const RESTART_DELAY: u64 = 25;

/// What one simulated worker step reported (public mirror of the worker's
/// internal step result).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Progress was made.
    Worked,
    /// Locally quiescent; the worker sleeps until a delivery.
    Idle,
    /// Globally terminated.
    Done,
}

/// One entry of the replayable schedule trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A worker executed one scheduling quantum.
    Step {
        /// Virtual time of the step.
        time: u64,
        /// Which worker stepped.
        worker: usize,
        /// What the step reported.
        outcome: StepOutcome,
    },
    /// An envelope reached a worker's queue.
    Deliver {
        /// Virtual delivery time.
        time: u64,
        /// Receiving worker.
        to: usize,
        /// Sending worker.
        from: usize,
        /// Per-link sequence number of the envelope.
        seq: u64,
        /// Kind of message delivered.
        kind: MessageKind,
        /// True for the fault injector's duplicate copy.
        duplicate: bool,
    },
    /// The fault plan stalled a worker.
    Stall {
        /// When the stall began.
        time: u64,
        /// Which worker stalled.
        worker: usize,
        /// When it resumes.
        until: u64,
    },
    /// The fault plan killed a worker.
    Crash {
        /// When it died.
        time: u64,
        /// Which worker died.
        worker: usize,
    },
    /// The simulated supervisor restarted a crashed worker into a fresh
    /// recovery epoch.
    Restart {
        /// When the fresh incarnation came up.
        time: u64,
        /// Which worker was restarted.
        worker: usize,
        /// The recovery epoch the whole fleet moves to.
        epoch: u64,
    },
}

/// The full schedule of one simulated run — deterministic in (specs,
/// seed, plan), so two runs are bit-for-bit comparable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimTrace {
    /// Events in execution order.
    pub events: Vec<TraceEvent>,
    /// Virtual time at which the run ended.
    pub virtual_time: u64,
}

impl SimTrace {
    /// Number of worker steps per processor (a compact schedule
    /// fingerprint used by reproducibility assertions).
    pub fn steps_per_worker(&self, n: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n];
        for e in &self.events {
            if let TraceEvent::Step { worker, .. } = e {
                counts[*worker] += 1;
            }
        }
        counts
    }

    /// Number of duplicate deliveries the fault injector produced.
    pub fn duplicates(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { duplicate: true, .. }))
            .count() as u64
    }
}

impl std::fmt::Display for SimTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for e in &self.events {
            match e {
                TraceEvent::Step { time, worker, outcome } => {
                    writeln!(f, "[{time:>8}] step    w{worker} -> {outcome:?}")?
                }
                TraceEvent::Deliver { time, to, from, seq, kind, duplicate } => {
                    let marker = if *duplicate { " (dup)" } else { "" };
                    writeln!(f, "[{time:>8}] deliver w{from} -> w{to} {kind} #{seq}{marker}")?
                }
                TraceEvent::Stall { time, worker, until } => {
                    writeln!(f, "[{time:>8}] stall   w{worker} until {until}")?
                }
                TraceEvent::Crash { time, worker } => {
                    writeln!(f, "[{time:>8}] crash   w{worker}")?
                }
                TraceEvent::Restart { time, worker, epoch } => {
                    writeln!(f, "[{time:>8}] restart w{worker} epoch {epoch}")?
                }
            }
        }
        writeln!(f, "[{:>8}] end of simulation", self.virtual_time)
    }
}

enum EventKind {
    /// Give worker `w` one step.
    Ready(usize),
    /// Hand an envelope to worker `to`.
    Deliver {
        to: usize,
        env: Envelope,
        duplicate: bool,
    },
    /// Kill a worker.
    Crash(usize),
    /// Bring a crashed worker back (simulated supervisor restart).
    Restart(usize),
}

struct Event {
    time: u64,
    tiebreak: u64,
    kind: EventKind,
}

// BinaryHeap is a max-heap; invert the comparison for earliest-first.
// `tiebreak` is unique per event, giving a total (hence deterministic)
// order.
impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.tiebreak) == (other.time, other.tiebreak)
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.tiebreak).cmp(&(self.time, self.tiebreak))
    }
}

/// Outbox that collects a step's sends for the event loop to route.
#[derive(Default)]
struct SimOutbox {
    sends: Vec<(usize, Envelope)>,
}

impl Outbox for SimOutbox {
    fn send(&mut self, to: usize, env: Envelope) -> Result<()> {
        self.sends.push((to, env));
        Ok(())
    }
}

/// The single-threaded, virtual-clock transport.
#[derive(Debug, Clone)]
pub struct SimTransport {
    /// Seed for every scheduling and fault decision.
    pub seed: u64,
    /// The misbehavior distribution.
    pub faults: FaultPlan,
}

impl SimTransport {
    /// A simulator with a perfect network.
    pub fn new(seed: u64) -> Self {
        SimTransport {
            seed,
            faults: FaultPlan::none(),
        }
    }

    /// A simulator drawing faults from `plan`.
    pub fn with_faults(seed: u64, plan: FaultPlan) -> Self {
        SimTransport { seed, faults: plan }
    }

    /// Run the fleet, returning the outcome together with the replayable
    /// trace (also populated when the run fails).
    pub fn run_traced(
        &self,
        specs: Vec<WorkerSpec>,
        config: &RuntimeConfig,
    ) -> (Result<ExecutionOutcome>, SimTrace) {
        let mut trace = SimTrace::default();
        let result = self.run_inner(specs, config, &mut trace);
        (result, trace)
    }

    fn run_inner(
        &self,
        specs: Vec<WorkerSpec>,
        config: &RuntimeConfig,
        trace: &mut SimTrace,
    ) -> Result<ExecutionOutcome> {
        validate_specs(&specs)?;
        if let Some(crash) = self.faults.crash {
            if crash.worker >= specs.len() {
                return Err(gst_common::Error::Runtime(format!(
                    "fault plan crashes nonexistent processor {}",
                    crash.worker
                )));
            }
        }
        let started = Instant::now();
        let n = specs.len();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // A recoverable crash rebuilds the dead worker from its spec, so
        // retain a copy (the cores consume the originals).
        let retained: Option<Vec<WorkerSpec>> = self
            .faults
            .crash
            .is_some_and(|c| c.recover)
            .then(|| specs.clone());
        let mut cores = specs
            .into_iter()
            .map(|spec| WorkerCore::new(spec, n))
            .collect::<Result<Vec<_>>>()?;
        for core in cores.iter_mut() {
            core.set_morsel_threads(config.worker.morsel_threads);
        }
        if config.trace {
            // Virtual-clock sinks: the journal then carries only virtual
            // ticks and counters, so same-seed runs are bit-identical.
            for (w, core) in cores.iter_mut().enumerate() {
                core.set_sink(TraceSink::virtual_clock(w));
            }
        }
        if config.worker.profile {
            // Virtual-clock profilers: durations are deterministic work
            // proxies, so same-seed profiles are bit-identical too.
            for core in cores.iter_mut() {
                core.set_profiler(
                    crate::profile::Profiler::ticks(),
                    gst_eval::TimeMode::Ticks,
                );
            }
        }
        // Journal buffers salvaged from crashed incarnations (the threaded
        // transport loses these with the thread; the simulator can do
        // better).
        let mut lost_events: Vec<ObsEvent> = Vec::new();

        let mut heap: BinaryHeap<Event> = BinaryHeap::new();
        let mut tiebreak = 0u64;
        let mut push = |heap: &mut BinaryHeap<Event>, time: u64, kind: EventKind| {
            heap.push(Event {
                time,
                tiebreak,
                kind,
            });
            tiebreak += 1;
        };

        let mut ready_pending = vec![false; n];
        let mut crashed = vec![false; n];
        // Random initial offsets: even the first step order is part of the
        // explored schedule space.
        for (w, pending) in ready_pending.iter_mut().enumerate() {
            let at = rng.gen_below(STEP_JITTER + 1);
            *pending = true;
            push(&mut heap, at, EventKind::Ready(w));
        }
        if let Some(crash) = self.faults.crash {
            push(&mut heap, crash.at_time, EventKind::Crash(crash.worker));
        }

        let mut now = 0u64;
        let mut processed = 0u64;
        let mut epoch = 0u64;
        let mut restarts = 0u64;
        while let Some(event) = heap.pop() {
            debug_assert!(event.time >= now, "virtual time went backwards");
            now = event.time;
            processed += 1;
            if processed > MAX_EVENTS {
                return Err(gst_common::Error::Runtime(
                    "simulation exceeded its event budget (liveness bug?)".into(),
                ));
            }
            match event.kind {
                EventKind::Ready(w) => {
                    ready_pending[w] = false;
                    if crashed[w] || cores[w].terminated() {
                        continue;
                    }
                    cores[w].set_trace_now(now);
                    let mut out = SimOutbox::default();
                    let step = cores[w].step(&mut out)?;
                    trace.events.push(TraceEvent::Step {
                        time: now,
                        worker: w,
                        outcome: match step {
                            Step::Worked => StepOutcome::Worked,
                            Step::Idle => StepOutcome::Idle,
                            Step::Done => StepOutcome::Done,
                        },
                    });
                    for (to, env) in out.sends {
                        self.route(&mut rng, &mut push, &mut heap, now, to, env);
                    }
                    if step == Step::Worked {
                        let mut at = now + 1 + rng.gen_below(STEP_JITTER);
                        if self.faults.stall_ticks > 0
                            && rng.gen_bool(self.faults.stall_prob)
                        {
                            at += self.faults.stall_ticks;
                            trace.events.push(TraceEvent::Stall {
                                time: now,
                                worker: w,
                                until: at,
                            });
                        }
                        ready_pending[w] = true;
                        push(&mut heap, at, EventKind::Ready(w));
                    }
                    // Idle: sleep until a delivery; Done: out of the game.
                }
                EventKind::Deliver { to, env, duplicate } => {
                    if crashed[to] {
                        continue; // a dead worker black-holes its queue
                    }
                    trace.events.push(TraceEvent::Deliver {
                        time: now,
                        to,
                        from: env.from,
                        seq: env.seq,
                        kind: env.message.kind(),
                        duplicate,
                    });
                    if cores[to].terminated() {
                        continue; // late duplicate after termination
                    }
                    cores[to].enqueue(env);
                    if !ready_pending[to] {
                        ready_pending[to] = true;
                        push(&mut heap, now, EventKind::Ready(to));
                    }
                }
                EventKind::Crash(w) => {
                    if !cores[w].terminated() {
                        crashed[w] = true;
                        trace.events.push(TraceEvent::Crash { time: now, worker: w });
                        let recoverable = self.faults.crash.is_some_and(|c| c.recover);
                        if recoverable && config.supervisor.max_restarts >= 1 {
                            push(&mut heap, now + RESTART_DELAY, EventKind::Restart(w));
                        }
                    }
                }
                EventKind::Restart(w) => {
                    // Recovery is only sound while no worker has accepted a
                    // termination decision; the ring stalls through the dead
                    // worker, so in practice nobody can have terminated, but
                    // guard anyway (mirrors the threaded supervisor).
                    if cores.iter().any(|c| c.terminated()) || !crashed[w] {
                        continue;
                    }
                    let specs = retained.as_ref().expect("restart without retained specs");
                    epoch += 1;
                    restarts += 1;
                    // Salvage the dead incarnation's journal before the
                    // replacement drops it.
                    lost_events.extend(cores[w].take_trace_events());
                    cores[w] = WorkerCore::with_epoch(specs[w].clone(), n, epoch)?;
                    cores[w].set_morsel_threads(config.worker.morsel_threads);
                    if config.worker.profile {
                        // The crashed incarnation's partial profile dies
                        // with it (as its stats do); the replacement
                        // accounts from its restart onward.
                        cores[w].set_profiler(
                            crate::profile::Profiler::ticks(),
                            gst_eval::TimeMode::Ticks,
                        );
                    }
                    if config.trace {
                        cores[w].set_sink(TraceSink::virtual_clock(w));
                        cores[w].set_trace_now(now);
                    }
                    crashed[w] = false;
                    trace.events.push(TraceEvent::Restart { time: now, worker: w, epoch });
                    // Broadcast Recover ahead of any new-epoch traffic: the
                    // deliveries are pushed directly at `now` (bypassing the
                    // fault plan — a supervisor channel is reliable), while
                    // the fresh incarnation's own sends can only leave after
                    // its first Ready, at a strictly later tiebreak.
                    for to in 0..n {
                        push(
                            &mut heap,
                            now,
                            EventKind::Deliver {
                                to,
                                env: Envelope {
                                    from: w,
                                    seq: 0,
                                    epoch,
                                    ack: 0,
                                    message: Message::Recover { epoch, restarted: w },
                                },
                                duplicate: false,
                            },
                        );
                    }
                }
            }
            if cores.iter().enumerate().all(|(w, c)| c.terminated() || crashed[w])
                && cores.iter().any(|c| c.terminated())
            {
                // All survivors terminated; drain nothing further.
                break;
            }
        }
        trace.virtual_time = now;

        // The queue ran dry. If a healthy worker never terminated, the
        // fleet starved — exactly the condition the threaded transport's
        // idle watchdog reports (a crashed fleet must error, not hang).
        if let Some(w) = cores
            .iter()
            .position(|c| !c.terminated() && !crashed[c.id()])
        {
            return Err(watchdog_error(w, format!("virtual time {now}")));
        }
        if cores.iter().all(|c| !c.terminated()) {
            return Err(gst_common::Error::Runtime(
                "every worker crashed before termination".into(),
            ));
        }

        // The schedule trace is a producer into the unified journal:
        // deliveries, stalls, crashes and restarts become transport-level
        // events (worker steps stay trace-only — the journal records them
        // as rounds/idles from the worker's own sink).
        let transport_events = if config.trace {
            let mut events: Vec<ObsEvent> = trace
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEvent::Step { .. } => None,
                    TraceEvent::Deliver { time, to, from, seq, kind, duplicate } => {
                        Some(ObsEvent {
                            time: *time,
                            worker: *to,
                            kind: ObsKind::Delivered {
                                from: *from,
                                kind: *kind,
                                seq: *seq,
                                duplicate: *duplicate,
                            },
                        })
                    }
                    TraceEvent::Stall { time, worker, until } => Some(ObsEvent {
                        time: *time,
                        worker: *worker,
                        kind: ObsKind::Stalled { until: *until },
                    }),
                    TraceEvent::Crash { time, worker } => Some(ObsEvent {
                        time: *time,
                        worker: *worker,
                        kind: ObsKind::Crashed,
                    }),
                    TraceEvent::Restart { time, worker, epoch } => Some(ObsEvent {
                        time: *time,
                        worker: *worker,
                        kind: ObsKind::Restarted { epoch: *epoch },
                    }),
                })
                .collect();
            events.extend(lost_events);
            events
        } else {
            Vec::new()
        };

        let results = cores
            .into_iter()
            .map(|core| finish_core(core, &config.worker))
            .collect();
        assemble_outcome(
            results,
            started.elapsed(),
            restarts,
            TimeBase::VirtualTicks,
            transport_events,
        )
    }

    /// Route one send through the fault plan, scheduling delivery events.
    fn route(
        &self,
        rng: &mut SmallRng,
        push: &mut impl FnMut(&mut BinaryHeap<Event>, u64, EventKind),
        heap: &mut BinaryHeap<Event>,
        now: u64,
        to: usize,
        env: Envelope,
    ) {
        let plan = &self.faults;
        let mut delay = rng.gen_inclusive(plan.min_delay, plan.max_delay);
        // Control traffic (token, terminate) is exempt from duplication
        // and loss: Safra's invariant is one token in the ring, and a real
        // transport keeps control messages reliable via acks. Delay (and
        // therefore reordering against batches) still applies.
        if env.message.kind() == MessageKind::Batch {
            if rng.gen_bool(plan.drop_prob) {
                // Loss with guaranteed redelivery: the retransmit pays the
                // redelivery penalty on top of the original draw.
                delay += plan.drop_redeliver_after;
            }
            if rng.gen_bool(plan.dup_prob) {
                let dup_delay = rng.gen_inclusive(plan.min_delay, plan.max_delay);
                push(
                    heap,
                    now + dup_delay,
                    EventKind::Deliver {
                        to,
                        env: env.clone(),
                        duplicate: true,
                    },
                );
            }
        }
        push(
            heap,
            now + delay,
            EventKind::Deliver {
                to,
                env,
                duplicate: false,
            },
        );
    }
}

impl Transport for SimTransport {
    fn execute(&self, specs: Vec<WorkerSpec>, config: &RuntimeConfig) -> Result<ExecutionOutcome> {
        self.run_traced(specs, config).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelOut, ProcessorProgram};
    use gst_common::{ituple, Interner};
    use gst_storage::Database;
    use std::sync::Arc;

    /// The ping-pong fleet from the sync tests: two workers alternately
    /// extending paths over a chain whose edges they own half each.
    fn ping_pong_specs() -> (Vec<WorkerSpec>, gst_eval::plan::RelationId) {
        let interner = Interner::new();
        let unit0 = gst_frontend::parser::parse_program_with(
            "t0(X,Y) :- e0(X,Y).\n\
             t0(X,Y) :- e0(X,Z), in0(Z,Y).\n\
             ship0(Z,Y) :- t0(Z,Y).",
            &interner,
        )
        .unwrap();
        let unit1 = gst_frontend::parser::parse_program_with(
            "t1(X,Y) :- e1(X,Z), in1(Z,Y).\n\
             ship1(Z,Y) :- t1(Z,Y).",
            &interner,
        )
        .unwrap();
        let e0 = (interner.get("e0").unwrap(), 2);
        let e1 = (interner.get("e1").unwrap(), 2);
        let t0 = (interner.get("t0").unwrap(), 2);
        let t1 = (interner.get("t1").unwrap(), 2);
        let in0 = (interner.intern("in0"), 2);
        let in1 = (interner.intern("in1"), 2);
        let ship0 = (interner.get("ship0").unwrap(), 2);
        let ship1 = (interner.get("ship1").unwrap(), 2);
        let answer = (interner.intern("t"), 2);

        let mut db0 = Database::new(interner.clone());
        let mut db1 = Database::new(interner.clone());
        for k in 0..6i64 {
            let id = if k % 2 == 0 { e0 } else { e1 };
            let db = if k % 2 == 0 { &mut db0 } else { &mut db1 };
            db.insert(id, ituple![k, k + 1]).unwrap();
        }
        let spec0 = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit0.program,
                outgoing: vec![ChannelOut { channel: ship0, dest: 1, inbox: in1 }],
                inboxes: vec![in0],
                processing_rules: vec![0, 1],
                pooling: vec![(t0, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db0),
            session: None,
        };
        let spec1 = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit1.program,
                outgoing: vec![ChannelOut { channel: ship1, dest: 0, inbox: in0 }],
                inboxes: vec![in1],
                processing_rules: vec![0],
                pooling: vec![(t1, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(Database::new(interner.clone())),
            session: None,
        };
        // db1's edges: re-add (moved above into db1 before Arc).
        let mut specs = vec![spec0, spec1];
        specs[1].edb = Arc::new(db1);
        (specs, answer)
    }

    #[test]
    fn sim_matches_threaded_semantics() {
        let (specs, answer) = ping_pong_specs();
        let threaded =
            crate::coordinator::execute_processors(specs.clone(), &RuntimeConfig::default())
                .unwrap();
        let sim = SimTransport::new(7)
            .execute(specs, &RuntimeConfig::default())
            .unwrap();
        assert!(sim.relation(answer).set_eq(&threaded.relation(answer)));
        assert!(!sim.relation(answer).is_empty());
        assert_eq!(
            sim.stats.total_tuples_sent(),
            threaded.stats.total_tuples_sent(),
            "delta shipping sends each tuple once in both transports"
        );
    }

    #[test]
    fn same_seed_is_bit_for_bit_reproducible() {
        let (specs, answer) = ping_pong_specs();
        let sim = SimTransport::with_faults(99, FaultPlan::chaos());
        let (a, ta) = sim.run_traced(specs.clone(), &RuntimeConfig::default());
        let (b, tb) = sim.run_traced(specs, &RuntimeConfig::default());
        let (a, b) = (a.unwrap(), b.unwrap());
        assert_eq!(ta, tb, "identical trace, event for event");
        assert!(a.relation(answer).set_eq(&b.relation(answer)));
        for (wa, wb) in a.stats.workers.iter().zip(&b.stats.workers) {
            assert_eq!(wa.eval.firings, wb.eval.firings);
            assert_eq!(wa.sent_tuples_to, wb.sent_tuples_to);
            assert_eq!(wa.duplicate_batches, wb.duplicate_batches);
        }
    }

    #[test]
    fn different_seeds_explore_different_schedules() {
        let (specs, _) = ping_pong_specs();
        let sim_a = SimTransport::with_faults(1, FaultPlan::jitter());
        let sim_b = SimTransport::with_faults(2, FaultPlan::jitter());
        let (_, ta) = sim_a.run_traced(specs.clone(), &RuntimeConfig::default());
        let (_, tb) = sim_b.run_traced(specs, &RuntimeConfig::default());
        assert_ne!(ta.events, tb.events, "seeds should yield distinct schedules");
    }

    #[test]
    fn faults_do_not_change_the_least_model() {
        let (specs, answer) = ping_pong_specs();
        let clean = SimTransport::new(0)
            .execute(specs.clone(), &RuntimeConfig::default())
            .unwrap();
        for seed in 0..8 {
            let chaotic = SimTransport::with_faults(seed, FaultPlan::chaos())
                .execute(specs.clone(), &RuntimeConfig::default())
                .unwrap();
            assert!(
                chaotic.relation(answer).set_eq(&clean.relation(answer)),
                "seed {seed} diverged under faults"
            );
        }
    }

    #[test]
    fn duplicates_are_observed_and_absorbed() {
        let (specs, _) = ping_pong_specs();
        let plan = FaultPlan {
            dup_prob: 1.0,
            ..FaultPlan::jitter()
        };
        let (outcome, trace) =
            SimTransport::with_faults(5, plan).run_traced(specs, &RuntimeConfig::default());
        let outcome = outcome.unwrap();
        assert!(trace.duplicates() > 0, "every batch should be duplicated");
        let absorbed: u64 = outcome.stats.workers.iter().map(|w| w.duplicate_batches).sum();
        assert!(absorbed > 0, "workers must see (and dedup) duplicates");
    }

    #[test]
    fn crash_surfaces_watchdog_error_not_hang() {
        let (specs, _) = ping_pong_specs();
        // Kill worker 1 early, before the fixpoint can complete.
        let sim = SimTransport::with_faults(3, FaultPlan::with_crash(1, 2));
        let (result, trace) = sim.run_traced(specs, &RuntimeConfig::default());
        let err = result.unwrap_err().to_string();
        assert!(err.contains("idle"), "want the watchdog error, got: {err}");
        assert!(trace
            .events
            .iter()
            .any(|e| matches!(e, TraceEvent::Crash { worker: 1, .. })));
    }

    #[test]
    fn recoverable_crash_reaches_the_same_least_model() {
        let (specs, answer) = ping_pong_specs();
        let clean = SimTransport::new(0)
            .execute(specs.clone(), &RuntimeConfig::default())
            .unwrap();
        // Crash mid-run (t=60): traffic has already flowed, so recovery
        // must actually replay, not just restart.
        let sim = SimTransport::with_faults(3, FaultPlan::with_recovering_crash(1, 60));
        let (result, trace) = sim.run_traced(specs, &RuntimeConfig::default());
        let outcome = result.expect("recovering crash must not fail the run");
        assert_eq!(outcome.stats.restarts, 1, "exactly one restart");
        assert!(
            trace.events.iter().any(|e| matches!(
                e,
                TraceEvent::Restart { worker: 1, epoch: 1, .. }
            )),
            "trace should record the restart"
        );
        assert!(outcome.relation(answer).set_eq(&clean.relation(answer)));
        assert!(!outcome.relation(answer).is_empty());
        assert!(
            outcome.stats.total_replayed_batches() > 0,
            "recovery must replay the lost traffic"
        );
    }

    #[test]
    fn recoverable_crash_without_budget_fails_fast() {
        let (specs, _) = ping_pong_specs();
        let mut config = RuntimeConfig::default();
        config.supervisor.max_restarts = 0;
        let sim = SimTransport::with_faults(3, FaultPlan::with_recovering_crash(1, 2));
        let (result, trace) = sim.run_traced(specs, &config);
        let err = result.unwrap_err().to_string();
        assert!(err.contains("idle"), "want the watchdog error, got: {err}");
        assert!(
            !trace.events.iter().any(|e| matches!(e, TraceEvent::Restart { .. })),
            "no budget, no restart"
        );
    }

    #[test]
    fn single_worker_fleet_terminates_in_sim() {
        let interner = Interner::new();
        let unit = gst_frontend::parser::parse_program_with(
            "t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).",
            &interner,
        )
        .unwrap();
        let e = (interner.intern("e"), 2);
        let t = (interner.get("t").unwrap(), 2);
        let answer = (interner.intern("answer"), 2);
        let mut db = Database::new(interner.clone());
        db.insert(e, ituple![1, 2]).unwrap();
        db.insert(e, ituple![2, 3]).unwrap();
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program,
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![0, 1],
                pooling: vec![(t, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        };
        let outcome = SimTransport::new(11)
            .execute(vec![spec], &RuntimeConfig::default())
            .unwrap();
        assert_eq!(outcome.relation(answer).len(), 3);
    }
}
