//! Datalog front end: AST, lexer, parser, pretty-printer and static
//! analysis (safety, dependency graph, recursion classification, and the
//! paper's canonical *linear sirup* form).
//!
//! The AST is deliberately small — pure Datalog plus opaque *constraint
//! literals*. Constraint literals are how the parallelization schemes of
//! Ganguly–Silberschatz–Tsur (SIGMOD 1990) inject `h(v(r)) = i` conditions
//! into rewritten rules: the front end only defines the [`ast::Constraint`]
//! interface; `gst-core` supplies hash-based implementations and `gst-eval`
//! evaluates them during semi-naive iteration.

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod lexer;
pub mod magic;
pub mod parser;
pub mod pretty;
pub mod sirup;

pub use analysis::ProgramAnalysis;
pub use ast::{Atom, Constraint, Literal, Predicate, Program, Rule, Term, Variable};
pub use builtins::{CompareOp, Comparison};
pub use magic::{magic_rewrite, MagicRewrite, MagicRuleInfo, MagicRuleKind};
pub use parser::{parse_program, ParsedUnit};
pub use sirup::LinearSirup;
