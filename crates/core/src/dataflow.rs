//! Dataflow graphs of linear recursive rules (paper §5, Definition 2) and
//! the Theorem-3 zero-communication chooser.
//!
//! For a rule with head `t(X₁…X_m)` and body occurrence `t(Y₁…Y_m)`, the
//! dataflow graph has a vertex for every argument position that flows
//! somewhere and an edge `i → j` whenever `Y_i = X_j` — position `i` of a
//! consumed tuple becomes position `j` of the produced tuple.
//!
//! **Theorem 3**: if the graph contains a cycle, some choice of
//! discriminating sequence and function needs no communication. The
//! construction: take the positions `C` of one cycle; because the edge map
//! is injective on `C`, the *multiset* of values at positions `C` is
//! invariant from consumed to produced tuple, so discriminating on
//! `v(r) = Ȳ|C` with an order-invariant hash
//! ([`crate::discriminator::SymmetricHashMod`]) keeps every derivation on
//! the processor that already owns the tuple. With `v(e) = Z̄|C` and
//! `h' = h`, initialization places tuples correctly too.

use gst_common::{Error, Result};
use gst_frontend::{LinearSirup, Term, Variable};

/// The dataflow graph of a linear sirup's recursive rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowGraph {
    /// Arity `m` of the recursive predicate.
    pub arity: usize,
    /// Vertices: 0-based positions `i` with at least one outgoing edge
    /// (Definition 2's `i ∈ V iff ∃j. Y_i = X_j`).
    pub vertices: Vec<usize>,
    /// Edges `i → j` (0-based positions), sorted.
    pub edges: Vec<(usize, usize)>,
}

impl DataflowGraph {
    /// Build the dataflow graph of `sirup` (Definition 2).
    pub fn of(sirup: &LinearSirup) -> Self {
        let arity = sirup.head.len();
        let mut edges = Vec::new();
        for (i, y) in sirup.recursive_args.iter().enumerate() {
            let Term::Var(yv) = y else { continue };
            for (j, x) in sirup.head.iter().enumerate() {
                if matches!(x, Term::Var(xv) if xv == yv) {
                    edges.push((i, j));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let mut vertices: Vec<usize> = edges.iter().map(|&(i, _)| i).collect();
        vertices.sort_unstable();
        vertices.dedup();
        DataflowGraph {
            arity,
            vertices,
            edges,
        }
    }

    /// Successors of position `i`.
    pub fn successors(&self, i: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|&&(from, _)| from == i)
            .map(|&(_, to)| to)
            .collect()
    }

    /// Find one cycle, returned as the ordered position list
    /// `[p₀, p₁, …]` with edges `p₀→p₁→…→p₀`. `None` if acyclic.
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        // Tiny graphs (arity ≤ a handful): plain DFS with a path stack.
        fn dfs(
            g: &DataflowGraph,
            at: usize,
            path: &mut Vec<usize>,
            visited: &mut Vec<usize>,
        ) -> Option<Vec<usize>> {
            if let Some(pos) = path.iter().position(|&p| p == at) {
                return Some(path[pos..].to_vec());
            }
            if visited.contains(&at) {
                return None;
            }
            visited.push(at);
            path.push(at);
            for next in g.successors(at) {
                if let Some(cycle) = dfs(g, next, path, visited) {
                    return Some(cycle);
                }
            }
            path.pop();
            None
        }
        let mut visited = Vec::new();
        for &start in &self.vertices {
            let mut path = Vec::new();
            if let Some(cycle) = dfs(self, start, &mut path, &mut visited) {
                return Some(cycle);
            }
        }
        None
    }

    /// True when the graph has a cycle (Theorem 3's precondition).
    pub fn has_cycle(&self) -> bool {
        self.find_cycle().is_some()
    }

    /// Render in the paper's figure style, 1-based: `1 → 2 → 3` for
    /// chains; general graphs list every edge.
    pub fn display(&self) -> String {
        if self.edges.is_empty() {
            return "(empty)".to_string();
        }
        // Try to render a simple path or cycle compactly.
        if let Some(chain) = self.as_chain() {
            return chain
                .iter()
                .map(|p| (p + 1).to_string())
                .collect::<Vec<_>>()
                .join(" → ");
        }
        self.edges
            .iter()
            .map(|&(i, j)| format!("{} → {}", i + 1, j + 1))
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// If the edge relation is a simple path `p₀ → p₁ → … → p_k` (each
    /// vertex at most one successor/predecessor, no cycle), return it.
    fn as_chain(&self) -> Option<Vec<usize>> {
        if self.has_cycle() || self.edges.is_empty() {
            return None;
        }
        let froms: Vec<usize> = self.edges.iter().map(|&(i, _)| i).collect();
        let tos: Vec<usize> = self.edges.iter().map(|&(_, j)| j).collect();
        let unique = |v: &[usize]| {
            let mut s = v.to_vec();
            s.sort_unstable();
            s.windows(2).all(|w| w[0] != w[1])
        };
        if !unique(&froms) || !unique(&tos) {
            return None;
        }
        // Find the start: a `from` that is not a `to`.
        let start = froms.iter().find(|f| !tos.contains(f))?;
        let mut chain = vec![*start];
        let mut at = *start;
        for _ in 0..self.edges.len() {
            let next = self.successors(at);
            if next.len() != 1 {
                if next.is_empty() {
                    break;
                }
                return None;
            }
            at = next[0];
            chain.push(at);
        }
        if chain.len() == self.edges.len() + 1 {
            Some(chain)
        } else {
            None
        }
    }
}

/// The outcome of the Theorem-3 construction.
#[derive(Debug, Clone)]
pub struct ZeroCommChoice {
    /// The cycle positions `C` (0-based, in cycle order).
    pub positions: Vec<usize>,
    /// `v(r)`: the variables of `Ȳ` at positions `C`.
    pub v_r: Vec<Variable>,
    /// `v(e)`: the variables of the exit head `Z̄` at positions `C`.
    pub v_e: Vec<Variable>,
}

/// Apply Theorem 3: find a cycle and derive discriminating sequences that
/// make the parallel execution communication-free (when paired with an
/// order-invariant discriminating function).
///
/// Returns [`Error::Shape`] when the dataflow graph is acyclic (the
/// chain sirup of Example 4) or the cycle positions are not variables in
/// both the recursive body atom and the exit head.
pub fn zero_comm_choice(sirup: &LinearSirup) -> Result<ZeroCommChoice> {
    let graph = DataflowGraph::of(sirup);
    let cycle = graph.find_cycle().ok_or_else(|| {
        Error::Shape(
            "dataflow graph is acyclic: Theorem 3 does not apply (no \
             communication-free discriminating sequence exists on positions)"
                .into(),
        )
    })?;
    let mut v_r = Vec::with_capacity(cycle.len());
    let mut v_e = Vec::with_capacity(cycle.len());
    for &p in &cycle {
        match sirup.recursive_args.get(p) {
            Some(Term::Var(v)) => v_r.push(*v),
            _ => {
                return Err(Error::Shape(format!(
                    "cycle position {} of the recursive body atom is not a variable",
                    p + 1
                )))
            }
        }
        match sirup.exit_head.get(p) {
            Some(Term::Var(v)) => v_e.push(*v),
            _ => {
                return Err(Error::Shape(format!(
                    "cycle position {} of the exit head is not a variable",
                    p + 1
                )))
            }
        }
    }
    Ok(ZeroCommChoice {
        positions: cycle,
        v_r,
        v_e,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_frontend::parse_program;

    fn sirup(src: &str) -> LinearSirup {
        LinearSirup::from_program(&parse_program(src).unwrap().program).unwrap()
    }

    fn ancestor() -> LinearSirup {
        sirup("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).")
    }

    fn chain3() -> LinearSirup {
        sirup("p(U,V,W) :- s(U,V,W).\np(U,V,W) :- p(V,W,Z), q(U,Z).")
    }

    #[test]
    fn figure1_chain_sirup_dataflow() {
        // Paper Figure 1: 1 → 2 → 3 for p(U,V,W) :- p(V,W,Z), q(U,Z).
        let g = DataflowGraph::of(&chain3());
        assert_eq!(g.edges, vec![(0, 1), (1, 2)]);
        assert_eq!(g.vertices, vec![0, 1]);
        assert!(!g.has_cycle());
        assert_eq!(g.display(), "1 → 2 → 3");
    }

    #[test]
    fn figure2_ancestor_dataflow_has_cycle() {
        // anc(X,Y) :- par(X,Z), anc(Z,Y): Y₂ = Y = X₂ → self-loop on 2.
        let g = DataflowGraph::of(&ancestor());
        assert_eq!(g.edges, vec![(1, 1)]);
        assert!(g.has_cycle());
        assert_eq!(g.find_cycle(), Some(vec![1]));
    }

    #[test]
    fn swap_rule_has_two_cycle() {
        // t(X,Y) :- t(Y,X), e(X,Y): positions swap each step.
        let g = DataflowGraph::of(&sirup(
            "t(X,Y) :- s(X,Y).\nt(X,Y) :- t(Y,X), e(X,Y).",
        ));
        assert_eq!(g.edges, vec![(0, 1), (1, 0)]);
        let cycle = g.find_cycle().unwrap();
        assert_eq!(cycle.len(), 2);
    }

    #[test]
    fn example6_dataflow() {
        // p(X,Y) :- p(Y,Z), r(X,Z): Y₁ = Y = X₂ → edge 1 → 2, acyclic.
        let g = DataflowGraph::of(&sirup(
            "p(X,Y) :- q(X,Y).\np(X,Y) :- p(Y,Z), r(X,Z).",
        ));
        assert_eq!(g.edges, vec![(0, 1)]);
        assert!(!g.has_cycle());
        assert_eq!(g.display(), "1 → 2");
    }

    #[test]
    fn zero_comm_choice_on_ancestor_picks_y() {
        let s = ancestor();
        let choice = zero_comm_choice(&s).unwrap();
        let i = &s.program.interner;
        assert_eq!(choice.positions, vec![1]);
        assert_eq!(choice.v_r.len(), 1);
        assert_eq!(choice.v_r[0].name(i), "Y");
        assert_eq!(choice.v_e[0].name(i), "Y");
    }

    #[test]
    fn zero_comm_choice_fails_on_chain_sirup() {
        let err = zero_comm_choice(&chain3()).unwrap_err();
        assert!(err.to_string().contains("acyclic"));
    }

    #[test]
    fn zero_comm_choice_on_swap_rule() {
        let s = sirup("t(X,Y) :- s(X,Y).\nt(X,Y) :- t(Y,X), e(X,Y).");
        let choice = zero_comm_choice(&s).unwrap();
        assert_eq!(choice.positions.len(), 2);
        assert_eq!(choice.v_r.len(), 2);
    }

    #[test]
    fn same_generation_dataflow() {
        // sg(X,Y) :- up(X,U), sg(U,V), down(V,Y): no Y_i equals a head
        // variable (U, V are local) → empty graph, no cycle.
        let g = DataflowGraph::of(&sirup(
            "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,U), sg(U,V), down(V,Y).",
        ));
        assert!(g.edges.is_empty());
        assert!(!g.has_cycle());
        assert_eq!(g.display(), "(empty)");
        assert!(zero_comm_choice(&sirup(
            "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,U), sg(U,V), down(V,Y)."
        ))
        .is_err());
    }

    #[test]
    fn display_lists_edges_when_not_a_chain() {
        // Two parallel dataflows: t(X,Y) :- t(X,Y), e(...) keeps both.
        let g = DataflowGraph::of(&sirup(
            "t(X,Y) :- s(X,Y).\nt(X,Y) :- t(X,Y), e(X,Y).",
        ));
        assert_eq!(g.edges, vec![(0, 0), (1, 1)]);
        assert!(g.display().contains("1 → 1"));
        assert!(g.display().contains("2 → 2"));
    }

    #[test]
    fn repeated_head_variable_fans_out() {
        // t(X,X) :- t(X,Y), e(Y): Y₁ = X = X₁ and X₂.
        let g = DataflowGraph::of(&sirup(
            "t(X,X) :- s(X).\nt(X,X) :- t(X,Y), e(Y).",
        ));
        assert_eq!(g.edges, vec![(0, 0), (0, 1)]);
        assert!(g.has_cycle());
    }
}
