//! Top-level execution entry points and runtime configuration.
//!
//! The part of the paper's architecture that lives outside any single
//! processor: wiring the complete channel set the abstract architecture
//! assumes (schemes needing fewer channels simply never use the rest),
//! running every worker to distributed termination, and the *final
//! pooling* step — the union `t(W̄) :- t_out^i(W̄)` over all processors.
//!
//! The mechanics live behind the [`Transport`] trait
//! ([`crate::transport`]); [`execute_processors`] is the conventional
//! entry point bound to the OS-thread transport.

use crate::spec::WorkerSpec;
use crate::stats::ExecutionOutcome;
use crate::transport::{ThreadedTransport, Transport};
use crate::worker::WorkerConfig;
use gst_common::Result;

/// Configuration for a parallel execution.
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// Per-worker knobs (poll interval, watchdog).
    pub worker: WorkerConfig,
}

/// Execute one [`WorkerSpec`] per processor on OS threads and pool the
/// results.
///
/// `specs[i].program.processor` must equal `i` — the ring used for
/// termination detection and the channel matrix are indexed by position.
/// Equivalent to `ThreadedTransport.execute(specs, config)`.
pub fn execute_processors(
    specs: Vec<WorkerSpec>,
    config: &RuntimeConfig,
) -> Result<ExecutionOutcome> {
    ThreadedTransport.execute(specs, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelOut, ProcessorProgram};
    use gst_common::{ituple, Interner};
    use gst_frontend::parse_program;
    use gst_storage::Database;
    use std::sync::Arc;

    /// Hand-built two-processor pipeline:
    /// processor 0 derives t0 from its fragment and ships everything to 1;
    /// processor 1 stores what it receives. Exercise wiring, inboxes,
    /// pooling and termination without the rewrite layer.
    #[test]
    fn two_stage_pipeline_pools_results() {
        let interner = Interner::new();
        // Processor 0: out0(X) :- e(X). ship0 holds what goes to 1.
        let unit0 = gst_frontend::parser::parse_program_with(
            "out0(X) :- e(X).\n\
             ship0(X) :- out0(X).",
            &interner,
        )
        .unwrap();
        // Processor 1: out1(X) :- inbox1(X).
        let unit1 = gst_frontend::parser::parse_program_with("out1(X) :- inbox1(X).", &interner)
            .unwrap();

        let e = (interner.intern("e"), 1);
        let ship0 = (interner.get("ship0").unwrap(), 1);
        let inbox1 = (interner.intern("inbox1"), 1);
        let out0 = (interner.get("out0").unwrap(), 1);
        let out1 = (interner.get("out1").unwrap(), 1);
        let answer = (interner.intern("answer"), 1);

        let mut db0 = Database::new(interner.clone());
        db0.insert(e, ituple![1]).unwrap();
        db0.insert(e, ituple![2]).unwrap();
        let db1 = Database::new(interner.clone());

        let spec0 = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit0.program,
                outgoing: vec![ChannelOut {
                    channel: ship0,
                    dest: 1,
                    inbox: inbox1,
                }],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![(out0, answer)],
            },
            edb: Arc::new(db0),
        };
        let spec1 = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit1.program,
                outgoing: vec![],
                inboxes: vec![inbox1],
                processing_rules: vec![0],
                pooling: vec![(out1, answer)],
            },
            edb: Arc::new(db1),
        };

        let outcome =
            execute_processors(vec![spec0, spec1], &RuntimeConfig::default()).unwrap();
        let answer_rel = outcome.relation(answer);
        assert_eq!(answer_rel.len(), 2);
        assert!(answer_rel.contains(&ituple![1]));
        // Processor 0 shipped both tuples to processor 1.
        assert_eq!(outcome.stats.channel_matrix[0][1], 2);
        assert_eq!(outcome.stats.total_tuples_sent(), 2);
        assert_eq!(outcome.stats.used_channels(), vec![(0, 1)]);
        assert_eq!(outcome.stats.workers[1].received_tuples, 2);
        // A reliable transport delivers nothing twice.
        assert_eq!(outcome.stats.workers[1].duplicate_batches, 0);
    }

    #[test]
    fn single_processor_runs_sequentially() {
        let unit = parse_program("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(1,2). e(2,3).")
            .unwrap();
        let mut db = Database::new(unit.program.interner.clone());
        db.load_facts(unit.facts.clone()).unwrap();
        let t = (unit.program.interner.get("t").unwrap(), 2);
        let global = (unit.program.interner.intern("t_answer"), 2);
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program.clone(),
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![0, 1],
                pooling: vec![(t, global)],
            },
            edb: Arc::new(db),
        };
        let outcome = execute_processors(vec![spec], &RuntimeConfig::default()).unwrap();
        assert_eq!(outcome.relation(global).len(), 3);
        assert!(outcome.stats.communication_free());
    }

    #[test]
    fn misnumbered_processor_is_rejected() {
        let unit = parse_program("t(X) :- e(X).").unwrap();
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 5,
                program: unit.program.clone(),
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![],
                pooling: vec![],
            },
            edb: Arc::new(Database::new(unit.program.interner.clone())),
        };
        assert!(execute_processors(vec![spec], &RuntimeConfig::default()).is_err());
    }

    #[test]
    fn out_of_range_channel_is_rejected() {
        let unit = parse_program("t(X) :- e(X).").unwrap();
        let interner = unit.program.interner.clone();
        let spec = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program.clone(),
                outgoing: vec![ChannelOut {
                    channel: (interner.intern("c"), 1),
                    dest: 3,
                    inbox: (interner.intern("i"), 1),
                }],
                inboxes: vec![],
                processing_rules: vec![],
                pooling: vec![],
            },
            edb: Arc::new(Database::new(interner)),
        };
        assert!(execute_processors(vec![spec], &RuntimeConfig::default()).is_err());
    }

    #[test]
    fn empty_spec_list_is_rejected() {
        assert!(execute_processors(vec![], &RuntimeConfig::default()).is_err());
    }

    /// A peer failure must not hang the fleet: the healthy worker's idle
    /// watchdog fires and the coordinator reports an error.
    #[test]
    fn worker_failure_is_detected_not_hung() {
        let interner = Interner::new();
        // Worker 0 ships e-tuples (arity 1) into an inbox that worker 1
        // declares with arity 2 — worker 1's inject fails immediately.
        let unit0 = gst_frontend::parser::parse_program_with(
            "out0(X) :- e(X).\nship0(X) :- out0(X).",
            &interner,
        )
        .unwrap();
        let unit1 =
            gst_frontend::parser::parse_program_with("out1(X,Y) :- inbox1(X,Y).", &interner)
                .unwrap();
        let e = (interner.intern("e"), 1);
        let ship0 = (interner.get("ship0").unwrap(), 1);
        let inbox1_wrong = (interner.intern("inbox1"), 2);

        let mut db0 = Database::new(interner.clone());
        db0.insert(e, ituple![1]).unwrap();

        let spec0 = WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit0.program,
                outgoing: vec![ChannelOut {
                    channel: ship0,
                    dest: 1,
                    inbox: inbox1_wrong,
                }],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![],
            },
            edb: Arc::new(db0),
        };
        let spec1 = WorkerSpec {
            program: ProcessorProgram {
                processor: 1,
                program: unit1.program,
                outgoing: vec![],
                inboxes: vec![inbox1_wrong],
                processing_rules: vec![0],
                pooling: vec![],
            },
            edb: Arc::new(Database::new(interner.clone())),
        };

        let mut config = RuntimeConfig::default();
        config.worker.idle_watchdog = std::time::Duration::from_millis(200);
        let started = std::time::Instant::now();
        let err = execute_processors(vec![spec0, spec1], &config).unwrap_err();
        assert!(started.elapsed() < std::time::Duration::from_secs(10), "no hang");
        let message = err.to_string();
        assert!(
            message.contains("arity") || message.contains("idle") || message.contains("channel"),
            "unexpected error: {message}"
        );
    }
}
