//! Plan execution.
//!
//! The executor walks a [`RulePlan`]'s steps depth-first, maintaining one
//! binding slot per rule variable. Scans probe a prepared [`Access`] —
//! either a hash index on the step's probe columns or a raw relation scan —
//! and the `Old` views (`T_{i-1}`) are realized as *full-view minus delta
//! membership* filters so no separate old relation is materialized.
//!
//! The caller prepares one `Access` per scan step (the two-phase split
//! keeps index refreshing, which needs `&mut`, out of the immutable
//! execution pass) and receives every successful ground substitution via
//! the `emit` callback; the return value is the firing count that the
//! paper's non-redundancy theorems (2 and 6) are stated over.

use gst_common::{Tuple, Value};
use gst_storage::{HashIndex, Relation};

use crate::plan::{HeadTerm, KeySource, PlanStep, RulePlan, ScanStep};

/// How a scan step reads its relation this round.
#[derive(Debug, Clone, Copy)]
pub enum Access<'a> {
    /// Iterate every tuple.
    ScanAll(&'a Relation),
    /// Iterate every tuple of `.0` except members of `.1` (the `Old` view).
    ScanMinus(&'a Relation, &'a Relation),
    /// Probe a hash index on exactly the step's probe columns.
    Probe(&'a HashIndex),
    /// Probe `.0`, skipping members of `.1` (indexed `Old` view).
    ProbeMinus(&'a HashIndex, &'a Relation),
    /// The relation holds no tuples (or does not exist yet).
    Empty,
}

/// Run `plan` with one prepared access per step (`None` for filter steps),
/// invoking `emit` for each successful ground substitution's head tuple.
/// Returns the number of firings.
pub fn run_plan(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    emit: &mut dyn FnMut(Tuple),
) -> u64 {
    debug_assert_eq!(accesses.len(), plan.steps.len());
    let mut bindings = vec![Value::Int(0); plan.slot_count];
    let mut head_buf: Vec<Value> = vec![Value::Int(0); plan.head_terms.len()];
    let mut firings = 0u64;
    descend(plan, accesses, 0, &mut bindings, &mut head_buf, &mut firings, emit);
    firings
}

fn descend(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    step_index: usize,
    bindings: &mut [Value],
    head_buf: &mut Vec<Value>,
    firings: &mut u64,
    emit: &mut dyn FnMut(Tuple),
) {
    if step_index == plan.steps.len() {
        *firings += 1;
        for (out, term) in head_buf.iter_mut().zip(&plan.head_terms) {
            *out = match term {
                HeadTerm::Slot(s) => bindings[*s],
                HeadTerm::Const(c) => *c,
            };
        }
        emit(Tuple::new(head_buf));
        return;
    }

    match &plan.steps[step_index] {
        PlanStep::Filter { constraint, slots } => {
            // Constraint arity is tiny (a discriminating sequence); a small
            // stack buffer would not beat this in practice.
            let values: Vec<Value> = slots.iter().map(|&s| bindings[s]).collect();
            if constraint.holds(&values) {
                descend(plan, accesses, step_index + 1, bindings, head_buf, firings, emit);
            }
        }
        PlanStep::Scan(scan) => {
            let access = accesses[step_index]
                .as_ref()
                .expect("scan step must have a prepared access");
            match access {
                Access::Empty => {}
                Access::Probe(index) => {
                    let key = probe_key(scan, bindings);
                    for t in index.probe(&key) {
                        try_candidate(
                            plan, accesses, step_index, scan, t, false, None, bindings, head_buf,
                            firings, emit,
                        );
                    }
                }
                Access::ProbeMinus(index, minus) => {
                    let key = probe_key(scan, bindings);
                    for t in index.probe(&key) {
                        try_candidate(
                            plan,
                            accesses,
                            step_index,
                            scan,
                            t,
                            false,
                            Some(minus),
                            bindings,
                            head_buf,
                            firings,
                            emit,
                        );
                    }
                }
                Access::ScanAll(rel) => {
                    for t in rel.iter() {
                        try_candidate(
                            plan, accesses, step_index, scan, t, true, None, bindings, head_buf,
                            firings, emit,
                        );
                    }
                }
                Access::ScanMinus(rel, minus) => {
                    for t in rel.iter() {
                        try_candidate(
                            plan,
                            accesses,
                            step_index,
                            scan,
                            t,
                            true,
                            Some(minus),
                            bindings,
                            head_buf,
                            firings,
                            emit,
                        );
                    }
                }
            }
        }
    }
}

/// Build the probe key for `scan` from current bindings and constants.
fn probe_key(scan: &ScanStep, bindings: &[Value]) -> Tuple {
    scan.probe_values
        .iter()
        .map(|src| match src {
            KeySource::Slot(s) => bindings[*s],
            KeySource::Const(c) => *c,
        })
        .collect()
}

#[allow(clippy::too_many_arguments)] // internal hot path, flattened on purpose
fn try_candidate(
    plan: &RulePlan,
    accesses: &[Option<Access<'_>>],
    step_index: usize,
    scan: &ScanStep,
    tuple: &Tuple,
    check_probe: bool,
    minus: Option<&Relation>,
    bindings: &mut [Value],
    head_buf: &mut Vec<Value>,
    firings: &mut u64,
    emit: &mut dyn FnMut(Tuple),
) {
    if let Some(m) = minus {
        if m.contains(tuple) {
            return;
        }
    }
    if check_probe {
        // Raw scans must verify probe columns that an index would have
        // guaranteed.
        for (col, src) in scan.probe_columns.iter().zip(&scan.probe_values) {
            let expected = match src {
                KeySource::Slot(s) => bindings[*s],
                KeySource::Const(c) => *c,
            };
            if tuple.get(*col) != expected {
                return;
            }
        }
    }
    for (col, earlier) in &scan.intra_checks {
        if tuple.get(*col) != tuple.get(*earlier) {
            return;
        }
    }
    for (col, slot) in &scan.bindings {
        bindings[*slot] = tuple.get(*col);
    }
    descend(plan, accesses, step_index + 1, bindings, head_buf, firings, emit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::compile_rule;
    use gst_common::ituple;
    use gst_frontend::parse_program;

    fn edges() -> Relation {
        [ituple![1, 2], ituple![2, 3], ituple![3, 4], ituple![2, 5]]
            .into_iter()
            .collect()
    }

    fn collect(plan: &RulePlan, accesses: &[Option<Access<'_>>]) -> (u64, Vec<Tuple>) {
        let mut out = Vec::new();
        let n = run_plan(plan, accesses, &mut |t| out.push(t));
        out.sort();
        (n, out)
    }

    #[test]
    fn single_scan_copies_relation() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let (n, out) = collect(&plan, &[Some(Access::ScanAll(&e))]);
        assert_eq!(n, 4);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn two_way_join_with_index() {
        // t(X,Z) :- e(X,Y), e(Y,Z): paths of length 2.
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (n, out) = collect(&plan, &[Some(Access::ScanAll(&e)), Some(Access::Probe(&idx))]);
        assert_eq!(n, 3); // 1→2→3, 1→2→5, 2→3→4
        assert_eq!(out, vec![ituple![1, 3], ituple![1, 5], ituple![2, 4]]);
    }

    #[test]
    fn join_without_index_matches_index_join() {
        let p = parse_program("t(X,Z) :- e(X,Y), e(Y,Z).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let idx = HashIndex::build(&e, &[0]);
        let (_, with_idx) =
            collect(&plan, &[Some(Access::ScanAll(&e)), Some(Access::Probe(&idx))]);
        let (_, without) =
            collect(&plan, &[Some(Access::ScanAll(&e)), Some(Access::ScanAll(&e))]);
        assert_eq!(with_idx, without);
    }

    #[test]
    fn constant_probe_filters() {
        let p = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let (n, out) = collect(&plan, &[Some(Access::ScanAll(&e))]);
        assert_eq!(n, 2);
        assert_eq!(out, vec![ituple![3], ituple![5]]);
    }

    #[test]
    fn intra_check_selects_loops() {
        let p = parse_program("t(X) :- e(X, X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let mut e = edges();
        e.insert(ituple![7, 7]).unwrap();
        let (n, out) = collect(&plan, &[Some(Access::ScanAll(&e))]);
        assert_eq!(n, 1);
        assert_eq!(out, vec![ituple![7]]);
    }

    #[test]
    fn minus_views_exclude_delta() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let e = edges();
        let minus: Relation = [ituple![1, 2], ituple![2, 3]].into_iter().collect();
        let (n, _) = collect(&plan, &[Some(Access::ScanMinus(&e, &minus))]);
        assert_eq!(n, 2);

        // Indexed variant agrees.
        let p2 = parse_program("t(Y) :- e(2, Y).").unwrap().program;
        let plan2 = compile_rule(&p2.rules[0], 0, &|_| false, None).unwrap();
        let idx = HashIndex::build(&e, &[0]);
        let (n2, out2) = collect(&plan2, &[Some(Access::ProbeMinus(&idx, &minus))]);
        assert_eq!(n2, 1);
        assert_eq!(out2, vec![ituple![5]]);
    }

    #[test]
    fn empty_access_yields_nothing() {
        let p = parse_program("t(X,Y) :- e(X,Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let (n, out) = collect(&plan, &[Some(Access::Empty)]);
        assert_eq!(n, 0);
        assert!(out.is_empty());
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let p = parse_program("t(X,Y) :- a(X), b(Y).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let a: Relation = [ituple![1], ituple![2]].into_iter().collect();
        let b: Relation = [ituple![10], ituple![20], ituple![30]].into_iter().collect();
        let (n, _) = collect(&plan, &[Some(Access::ScanAll(&a)), Some(Access::ScanAll(&b))]);
        assert_eq!(n, 6);
    }

    #[test]
    fn head_constants_are_materialized() {
        let p = parse_program("t(X, 99) :- a(X).").unwrap().program;
        let plan = compile_rule(&p.rules[0], 0, &|_| false, None).unwrap();
        let a: Relation = [ituple![1]].into_iter().collect();
        let (_, out) = collect(&plan, &[Some(Access::ScanAll(&a))]);
        assert_eq!(out, vec![ituple![1, 99]]);
    }
}
