//! Predicting wall-clock on hypothetical architectures.
//!
//! The paper's closing argument (§8) is that the right scheme depends on
//! the machine: "computation cost as opposed to communication cost". Our
//! container cannot *be* a shared-nothing cluster, so we do what the
//! system prompt's substitution rule asks: simulate one.
//!
//! [`crate::sync::execute_synchronous_traced`] records a deterministic
//! per-round trace — firings per processor and tuples/batches per channel
//! — and [`simulate_bsp`] replays it under a parameterized
//! [`MachineModel`]. The model is deliberately simple (bulk-synchronous
//! rounds, full-bisection network):
//!
//! ```text
//! round time = max_i (firings_i · firing_us)                 (compute phase)
//!            + max_i (Σ_j batches_ij · message_us
//!                     + Σ_j tuples_ij · tuple_us)            (comm phase)
//! total      = Σ_rounds round time
//! ```
//!
//! Absolute numbers are not the point — *crossovers* are: on which
//! architectures does Example 1 beat Example 3 beat Example 2, and at
//! what processor count does adding workers stop paying.

/// Per-round record of one synchronous execution.
#[derive(Debug, Clone, Default)]
pub struct RoundRecord {
    /// Rule firings per processor during this round's compute phase.
    pub firings: Vec<u64>,
    /// `sent_tuples[i][j]`: tuples shipped `i → j` this round.
    pub sent_tuples: Vec<Vec<u64>>,
    /// `sent_batches[i][j]`: messages shipped `i → j` this round.
    pub sent_batches: Vec<Vec<u64>>,
}

/// The full trace: one record per synchronous round (bootstrap included
/// as round 0).
#[derive(Debug, Clone, Default)]
pub struct RoundTrace {
    /// Number of processors.
    pub processors: usize,
    /// Round records in execution order.
    pub rounds: Vec<RoundRecord>,
}

impl RoundTrace {
    /// Total firings across all rounds and processors.
    pub fn total_firings(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.firings.iter().sum::<u64>())
            .sum()
    }

    /// Total tuples shipped between distinct processors.
    pub fn total_tuples(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| r.sent_tuples.iter().enumerate())
            .flat_map(|(i, row)| {
                row.iter()
                    .enumerate()
                    .filter(move |(j, _)| *j != i)
                    .map(|(_, &v)| v)
            })
            .sum()
    }
}

/// Cost parameters of a hypothetical parallel machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineModel {
    /// Microseconds per rule firing (compute).
    pub firing_us: f64,
    /// Microseconds per tuple on the wire (bandwidth term).
    pub tuple_us: f64,
    /// Microseconds per message (latency/overhead term).
    pub message_us: f64,
}

impl MachineModel {
    /// Shared-memory multiprocessor: passing a tuple is a pointer write.
    pub fn shared_memory() -> Self {
        MachineModel {
            firing_us: 1.0,
            tuple_us: 0.01,
            message_us: 0.1,
        }
    }

    /// A LAN cluster: communication costs real microseconds.
    pub fn lan_cluster() -> Self {
        MachineModel {
            firing_us: 1.0,
            tuple_us: 1.0,
            message_us: 50.0,
        }
    }

    /// A geo-distributed deployment: latency dominates everything.
    pub fn wan() -> Self {
        MachineModel {
            firing_us: 1.0,
            tuple_us: 2.0,
            message_us: 10_000.0,
        }
    }
}

/// Predicted wall time (µs) of replaying `trace` on `model` under the
/// bulk-synchronous schedule documented in the module header.
pub fn simulate_bsp(trace: &RoundTrace, model: &MachineModel) -> f64 {
    let mut total = 0.0f64;
    for round in &trace.rounds {
        let compute = round
            .firings
            .iter()
            .map(|&f| f as f64 * model.firing_us)
            .fold(0.0, f64::max);
        let comm = (0..trace.processors)
            .map(|i| {
                let tuples: u64 = round
                    .sent_tuples
                    .get(i)
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, &v)| v)
                            .sum()
                    })
                    .unwrap_or(0);
                let batches: u64 = round
                    .sent_batches
                    .get(i)
                    .map(|row| {
                        row.iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .map(|(_, &v)| v)
                            .sum()
                    })
                    .unwrap_or(0);
                tuples as f64 * model.tuple_us + batches as f64 * model.message_us
            })
            .fold(0.0, f64::max);
        total += compute + comm;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_round_trace() -> RoundTrace {
        RoundTrace {
            processors: 2,
            rounds: vec![
                RoundRecord {
                    firings: vec![10, 30],
                    sent_tuples: vec![vec![0, 5], vec![0, 0]],
                    sent_batches: vec![vec![0, 1], vec![0, 0]],
                },
                RoundRecord {
                    firings: vec![20, 20],
                    sent_tuples: vec![vec![0, 0], vec![7, 0]],
                    sent_batches: vec![vec![0, 0], vec![1, 0]],
                },
            ],
        }
    }

    #[test]
    fn aggregates() {
        let t = two_round_trace();
        assert_eq!(t.total_firings(), 80);
        assert_eq!(t.total_tuples(), 12);
    }

    #[test]
    fn bsp_time_is_max_per_phase() {
        let t = two_round_trace();
        let m = MachineModel {
            firing_us: 1.0,
            tuple_us: 1.0,
            message_us: 10.0,
        };
        // round 0: compute max(10,30)=30; comm max(5+10, 0)=15 → 45
        // round 1: compute max(20,20)=20; comm max(0, 7+10)=17 → 37
        assert!((simulate_bsp(&t, &m) - 82.0).abs() < 1e-9);
    }

    #[test]
    fn free_communication_reduces_to_critical_path() {
        let t = two_round_trace();
        let m = MachineModel {
            firing_us: 1.0,
            tuple_us: 0.0,
            message_us: 0.0,
        };
        assert!((simulate_bsp(&t, &m) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn latency_dominated_machines_punish_messages() {
        let t = two_round_trace();
        let cheap = simulate_bsp(&t, &MachineModel::shared_memory());
        let wan = simulate_bsp(&t, &MachineModel::wan());
        assert!(wan > cheap * 10.0);
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let t = RoundTrace {
            processors: 3,
            rounds: vec![],
        };
        assert_eq!(simulate_bsp(&t, &MachineModel::lan_cluster()), 0.0);
    }
}
