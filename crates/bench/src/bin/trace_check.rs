//! CI validator for Chrome traces exported by `pdatalog --trace-out`.
//!
//! ```text
//! trace_check <trace.json> [--workers N] [--require-sends]
//! ```
//!
//! Exits 0 and prints a one-line summary if the trace is structurally
//! sound (see [`gst_bench::tracecheck::check_chrome_trace`]); exits 1
//! with the violation otherwise. `--workers N` additionally requires
//! worker tracks `0..N`, each with a termination marker; `--require-sends`
//! fails traces with no communication events.

use gst_bench::tracecheck::check_chrome_trace;

fn main() {
    std::process::exit(match run() {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("trace_check: {e}");
            1
        }
    });
}

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let path = args
        .next()
        .ok_or("usage: trace_check <trace.json> [--workers N] [--require-sends]")?;
    let mut expect_workers = None;
    let mut require_sends = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                let n = args.next().ok_or("--workers needs a count")?;
                expect_workers =
                    Some(n.parse::<usize>().map_err(|_| format!("bad worker count {n:?}"))?);
            }
            "--require-sends" => require_sends = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = check_chrome_trace(&text, expect_workers, require_sends)?;
    println!(
        "{path}: ok ({} events, {} spans, {} worker tracks)",
        summary.events, summary.spans, summary.workers
    );
    Ok(())
}
