//! Section 7 of the paper, live: the general scheme `T_i` on programs the
//! sirup-only sections cannot touch — Example 8's non-linear ancestor and
//! a mutually recursive even/odd program — with Theorem 6's
//! non-redundancy checked against the sequential engine.
//!
//! ```text
//! cargo run --release --example nonlinear_general
//! ```

use std::sync::Arc;

use parallel_datalog::core::schemes::BaseDistribution;
use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{even_odd, nonlinear_ancestor, random_digraph};

fn main() -> Result<()> {
    let n = 4;

    // ---- Example 8: non-linear ancestor ------------------------------
    // anc(X,Y) :- par(X,Y).         v(r1) = ⟨Y⟩
    // anc(X,Y) :- anc(X,Z), anc(Z,Y).  v(r2) = ⟨Z⟩,  h1 = h2 = h
    let fx = nonlinear_ancestor();
    let db = fx.database(&random_digraph(40, 90, 17));
    let var = |name: &str| Variable(fx.program.interner.get(name).unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(n, 13));
    let choices = vec![
        RuleChoice {
            v: vec![var("Y")],
            h: h.clone(),
        },
        RuleChoice {
            v: vec![var("Z")],
            h: h.clone(),
        },
    ];
    let scheme = rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared)?;
    let outcome = scheme.run()?;
    let sequential = seminaive_eval(&fx.program, &db)?;
    let anc = fx.output_id();

    println!("== Example 8: non-linear ancestor on {n} processors ==");
    println!(
        "|anc| = {} (sequential {}), tuples sent = {}, processing firings = {} \
         (sequential {})",
        outcome.relation(anc).len(),
        sequential.relation(anc).len(),
        outcome.stats.total_tuples_sent(),
        outcome.stats.total_processing_firings(),
        sequential.stats.firings,
    );
    assert!(outcome.relation(anc).set_eq(&sequential.relation(anc)));
    assert!(outcome.stats.total_processing_firings() <= sequential.stats.firings);
    println!("Theorem 5 (correctness) and Theorem 6 (non-redundancy) hold ✓");
    println!(
        "note: each anc tuple (a,b) is shipped to h(b) AND h(a) — the two sending \
         rules of Example 8\n"
    );

    // ---- Mutual recursion: even/odd ----------------------------------
    let fx = even_odd();
    let len = 30i64;
    let succ: Relation = (0..len).map(|k| ituple![k, k + 1]).collect();
    let zero: Relation = [ituple![0]].into_iter().collect();
    let db = fx.database_multi(&[zero, succ]);
    let var = |name: &str| Variable(fx.program.interner.get(name).unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(n, 29));
    let choices: Vec<RuleChoice> = [vec![var("X")], vec![var("Y")], vec![var("Y")]]
        .into_iter()
        .map(|v| RuleChoice { v, h: h.clone() })
        .collect();
    let scheme = rewrite_general(&fx.program, &choices, &db, BaseDistribution::MinimalFragments)?;
    let outcome = scheme.run()?;
    let sequential = seminaive_eval(&fx.program, &db)?;
    let even = fx.output_id();
    let odd = (fx.program.interner.get("odd").unwrap(), 1);

    println!("== mutual recursion: even/odd over a successor chain of {len} ==");
    println!(
        "|even| = {}, |odd| = {}, tuples sent = {}",
        outcome.relation(even).len(),
        outcome.relation(odd).len(),
        outcome.stats.total_tuples_sent()
    );
    assert!(outcome.relation(even).set_eq(&sequential.relation(even)));
    assert!(outcome.relation(odd).set_eq(&sequential.relation(odd)));
    println!("both mutually recursive predicates match the least model ✓");
    Ok(())
}
