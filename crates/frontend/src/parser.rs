//! Recursive-descent parser for the Datalog surface syntax.
//!
//! ```text
//! unit   := (clause | query)* EOF
//! clause := atom [ ':-' literal (',' literal)* ] '.'
//! query  := '?-' atom '.'
//! literal := atom | term cmp term
//! cmp    := '<' | '<=' | '>' | '>=' | '=' | '!='
//! atom   := ident [ '(' term (',' term)* ')' ]
//! term   := Variable | ident | integer | string
//! ```
//!
//! A clause without a body must be ground and is returned as a *fact*
//! rather than a rule, matching the paper's split between the program (a
//! finite set of rules) and its input (a relation per base predicate).
//!
//! A query `?- anc("ann", Y).` names a goal atom: constants mark bound
//! arguments, variables mark requested outputs. Queries are collected on
//! the side — they are not rules — and drive the magic-sets rewrite in
//! [`crate::magic`].

use gst_common::{Error, Interner, Result, Tuple, Value};

use std::sync::Arc;

use crate::ast::{Atom, Literal, Predicate, Program, Rule, Term, Variable};
use crate::builtins::{CompareOp, Comparison};
use crate::lexer::{tokenize, Token, TokenKind};

/// The result of parsing a source unit: the rules (as a [`Program`]) and
/// the ground facts, ready to be loaded into a database.
#[derive(Debug, Clone)]
pub struct ParsedUnit {
    /// The rules of the unit.
    pub program: Program,
    /// Ground facts `(predicate, tuple)` in source order.
    pub facts: Vec<(Predicate, Tuple)>,
    /// Query goals (`?- atom.`) in source order.
    pub queries: Vec<Atom>,
}

/// Parse `source` with a fresh interner.
pub fn parse_program(source: &str) -> Result<ParsedUnit> {
    parse_program_with(source, &Interner::new())
}

/// Parse `source`, interning all symbols into `interner`.
///
/// Sharing an interner lets separately parsed programs and generated data
/// agree on symbol ids — required when a workload generator produces facts
/// for a program parsed from text.
pub fn parse_program_with(source: &str, interner: &Interner) -> Result<ParsedUnit> {
    let tokens = tokenize(source)?;
    Parser {
        tokens,
        pos: 0,
        interner: interner.clone(),
    }
    .unit()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    interner: Interner,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        let t = self.bump();
        if &t.kind == kind {
            Ok(t)
        } else {
            Err(Error::parse(
                t.line,
                t.column,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            ))
        }
    }

    fn unit(mut self) -> Result<ParsedUnit> {
        let mut rules = Vec::new();
        let mut facts = Vec::new();
        let mut queries = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            if self.peek().kind == TokenKind::QuestionDash {
                self.bump();
                let goal = self.atom()?;
                self.expect(&TokenKind::Dot)?;
                queries.push(goal);
                continue;
            }
            let head = self.atom()?;
            match self.peek().kind {
                TokenKind::ColonDash => {
                    self.bump();
                    let mut body = vec![self.literal()?];
                    while self.peek().kind == TokenKind::Comma {
                        self.bump();
                        body.push(self.literal()?);
                    }
                    self.expect(&TokenKind::Dot)?;
                    rules.push(Rule::new(head, body));
                }
                TokenKind::Dot => {
                    let t = self.bump();
                    if !head.is_ground() {
                        return Err(Error::parse(
                            t.line,
                            t.column,
                            "a fact (bodyless clause) must be ground",
                        ));
                    }
                    let tuple: Tuple = head
                        .terms
                        .iter()
                        .map(|t| t.as_const().expect("ground atom"))
                        .collect();
                    facts.push((head.pred(), tuple));
                }
                _ => {
                    let t = self.peek();
                    return Err(Error::parse(
                        t.line,
                        t.column,
                        format!("expected `:-` or `.`, found {}", t.kind.describe()),
                    ));
                }
            }
        }
        Ok(ParsedUnit {
            program: Program::new(rules, self.interner),
            facts,
            queries,
        })
    }

    /// One body literal: an atom, or a comparison `term op term`.
    fn literal(&mut self) -> Result<Literal> {
        // A comparison begins with a non-predicate term (variable,
        // integer, string) or with an identifier followed by an operator.
        let starts_comparison = match &self.peek().kind {
            TokenKind::UpperIdent(_) | TokenKind::Int(_) | TokenKind::Str(_) => true,
            TokenKind::Ident(_) => matches!(
                self.peek_ahead(1),
                TokenKind::Lt
                    | TokenKind::Le
                    | TokenKind::Gt
                    | TokenKind::Ge
                    | TokenKind::EqSign
                    | TokenKind::Ne
            ),
            _ => false,
        };
        if !starts_comparison {
            return Ok(Literal::Atom(self.atom()?));
        }
        let lhs = self.term()?;
        let op_token = self.bump();
        let op = match op_token.kind {
            TokenKind::Lt => CompareOp::Lt,
            TokenKind::Le => CompareOp::Le,
            TokenKind::Gt => CompareOp::Gt,
            TokenKind::Ge => CompareOp::Ge,
            TokenKind::EqSign => CompareOp::Eq,
            TokenKind::Ne => CompareOp::Ne,
            other => {
                return Err(Error::parse(
                    op_token.line,
                    op_token.column,
                    format!("expected a comparison operator, found {}", other.describe()),
                ))
            }
        };
        let rhs = self.term()?;
        Ok(Literal::Constraint(Arc::new(Comparison::new(lhs, op, rhs))))
    }

    fn peek_ahead(&self, k: usize) -> &TokenKind {
        let idx = (self.pos + k).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn atom(&mut self) -> Result<Atom> {
        let t = self.bump();
        let name = match t.kind {
            TokenKind::Ident(s) => self.interner.intern(&s),
            other => {
                return Err(Error::parse(
                    t.line,
                    t.column,
                    format!("expected a predicate name, found {}", other.describe()),
                ))
            }
        };
        let mut terms = Vec::new();
        if self.peek().kind == TokenKind::LParen {
            self.bump();
            if self.peek().kind != TokenKind::RParen {
                terms.push(self.term()?);
                while self.peek().kind == TokenKind::Comma {
                    self.bump();
                    terms.push(self.term()?);
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Atom::new(name, terms))
    }

    fn term(&mut self) -> Result<Term> {
        let t = self.bump();
        match t.kind {
            TokenKind::UpperIdent(s) => Ok(Term::Var(Variable(self.interner.intern(&s)))),
            TokenKind::Ident(s) => Ok(Term::Const(Value::Sym(self.interner.intern(&s)))),
            TokenKind::Int(n) => Ok(Term::Const(Value::Int(n))),
            TokenKind::Str(text) => Ok(Term::Const(Value::Sym(self.interner.intern(&text)))),
            other => Err(Error::parse(
                t.line,
                t.column,
                format!("expected a term, found {}", other.describe()),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_ancestor_program() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).",
        )
        .unwrap();
        assert_eq!(unit.program.rules.len(), 2);
        assert!(unit.facts.is_empty());
        let i = &unit.program.interner;
        let anc = Predicate::new(i.get("anc").unwrap(), 2);
        assert_eq!(unit.program.derived_predicates(), vec![anc]);
        assert_eq!(unit.program.rules[1].body.len(), 2);
    }

    #[test]
    fn parses_facts_and_rules_mixed() {
        let unit = parse_program(
            "par(alice, bob).\n\
             par(1, 2).\n\
             anc(X,Y) :- par(X,Y).",
        )
        .unwrap();
        assert_eq!(unit.facts.len(), 2);
        assert_eq!(unit.program.rules.len(), 1);
        let (pred, tuple) = &unit.facts[1];
        assert_eq!(pred.arity, 2);
        assert_eq!(tuple.get(0), Value::Int(1));
    }

    #[test]
    fn symbolic_constants_are_interned_values() {
        let unit = parse_program("par(alice, bob).").unwrap();
        let i = &unit.program.interner;
        let (_, tuple) = &unit.facts[0];
        assert_eq!(tuple.get(0), Value::Sym(i.get("alice").unwrap()));
    }

    #[test]
    fn string_constants_are_interned_symbols() {
        let unit = parse_program(r#"par("John Smith", bob)."#).unwrap();
        let i = &unit.program.interner;
        let (_, tuple) = &unit.facts[0];
        assert_eq!(tuple.get(0), Value::Sym(i.get("John Smith").unwrap()));
        assert_eq!(tuple.get(1), Value::Sym(i.get("bob").unwrap()));
    }

    #[test]
    fn string_and_bare_symbol_unify() {
        // "alice" and alice intern to the same symbol.
        let unit = parse_program(r#"p("alice"). q(alice)."#).unwrap();
        let i = &unit.program.interner;
        assert_eq!(unit.facts[0].1.get(0), unit.facts[1].1.get(0));
        assert_eq!(i.len(), 3); // p, alice, q
    }

    #[test]
    fn zero_arity_atoms() {
        let unit = parse_program("go.\nrun() :- go.").unwrap();
        assert_eq!(unit.facts[0].0.arity, 0);
        assert_eq!(unit.program.rules[0].head.pred().arity, 0);
    }

    #[test]
    fn non_ground_fact_is_rejected() {
        let err = parse_program("par(X, bob).").unwrap_err();
        assert!(err.to_string().contains("must be ground"));
    }

    #[test]
    fn missing_dot_is_rejected() {
        assert!(parse_program("p(X) :- q(X)").is_err());
    }

    #[test]
    fn garbage_after_head_is_rejected() {
        assert!(parse_program("p(X) q(X).").is_err());
    }

    #[test]
    fn variable_as_predicate_is_rejected() {
        assert!(parse_program("X(a).").is_err());
    }

    #[test]
    fn parses_comparison_literals() {
        let unit = parse_program("older(X,Y) :- age(X,A), age(Y,B), A > B.").unwrap();
        let rule = &unit.program.rules[0];
        assert_eq!(rule.body.len(), 3);
        assert!(matches!(rule.body[2], Literal::Constraint(_)));
        // Comparisons don't count as body atoms.
        assert_eq!(rule.body_atoms().count(), 2);
        // Safety still holds: X, Y bound by atoms.
        assert!(rule.is_safe());
    }

    #[test]
    fn comparison_with_constant_operand() {
        let unit = parse_program("adult(X) :- age(X,A), A >= 18.").unwrap();
        assert!(matches!(unit.program.rules[0].body[1], Literal::Constraint(_)));
        let unit = parse_program("p(X) :- q(X), 3 < X.").unwrap();
        assert!(matches!(unit.program.rules[0].body[1], Literal::Constraint(_)));
    }

    #[test]
    fn symbol_comparison_disambiguates_from_atom() {
        // `alice != X` starts with an identifier but is a comparison.
        let unit = parse_program("p(X) :- q(X), alice != X.").unwrap();
        assert!(matches!(unit.program.rules[0].body[1], Literal::Constraint(_)));
        // `q(X)` stays an atom.
        assert!(matches!(unit.program.rules[0].body[0], Literal::Atom(_)));
    }

    #[test]
    fn comparison_in_fact_position_is_rejected() {
        assert!(parse_program("X < 3.").is_err());
    }

    #[test]
    fn dangling_comparison_is_rejected() {
        assert!(parse_program("p(X) :- q(X), X <.").is_err());
    }

    #[test]
    fn shared_interner_agrees_across_units() {
        let i = Interner::new();
        let a = parse_program_with("p(X) :- e(X).", &i).unwrap();
        let b = parse_program_with("q(X) :- e(X).", &i).unwrap();
        let ea = a.program.rules[0].body_atoms().next().unwrap().predicate;
        let eb = b.program.rules[0].body_atoms().next().unwrap().predicate;
        assert_eq!(ea, eb);
    }

    #[test]
    fn empty_source_parses_to_empty_unit() {
        let unit = parse_program("  % nothing here\n").unwrap();
        assert!(unit.program.rules.is_empty());
        assert!(unit.facts.is_empty());
    }

    #[test]
    fn dangling_comma_in_body_is_rejected() {
        assert!(parse_program("p(X) :- q(X), .").is_err());
    }

    #[test]
    fn parses_query_goals() {
        let unit = parse_program(
            "anc(X,Y) :- par(X,Y).\n\
             par(ann, bob).\n\
             ?- anc(\"ann\", Y).",
        )
        .unwrap();
        assert_eq!(unit.queries.len(), 1);
        let goal = &unit.queries[0];
        assert_eq!(goal.pred().arity, 2);
        let i = &unit.program.interner;
        assert_eq!(goal.terms[0].as_const(), Some(Value::Sym(i.get("ann").unwrap())));
        assert!(goal.terms[1].as_var().is_some());
        // Queries are neither rules nor facts.
        assert_eq!(unit.program.rules.len(), 1);
        assert_eq!(unit.facts.len(), 1);
    }

    #[test]
    fn query_without_dot_is_rejected() {
        assert!(parse_program("?- anc(ann, Y)").is_err());
    }
}
