//! The database catalog: a named collection of relations.

use gst_common::{Error, FxHashMap, Interner, Result, Tuple};

use crate::relation::Relation;

/// Identifies a relation: an interned name plus arity.
///
/// This mirrors `gst_frontend::Predicate` without depending on the AST
/// crate; the two convert through `(SymbolId, usize)`.
pub type RelationId = (gst_common::SymbolId, usize);

/// A catalog of named relations sharing one interner.
#[derive(Debug, Clone)]
pub struct Database {
    interner: Interner,
    relations: FxHashMap<RelationId, Relation>,
}

impl Database {
    /// Create an empty database over `interner`.
    pub fn new(interner: Interner) -> Self {
        Database {
            interner,
            relations: FxHashMap::default(),
        }
    }

    /// The interner naming this database's symbols.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Get (creating if needed) the relation for `id`.
    pub fn relation_mut(&mut self, id: RelationId) -> &mut Relation {
        self.relations.entry(id).or_insert_with(|| Relation::new(id.1))
    }

    /// Get the relation for `id`, if it exists.
    pub fn relation(&self, id: RelationId) -> Option<&Relation> {
        self.relations.get(&id)
    }

    /// The relation for `id`, or an empty one (shared static) if absent.
    pub fn relation_or_empty(&self, id: RelationId) -> Relation {
        self.relations
            .get(&id)
            .cloned()
            .unwrap_or_else(|| Relation::new(id.1))
    }

    /// Look up by name string; `None` if the name or relation is unknown.
    pub fn relation_by_name(&self, name: &str, arity: usize) -> Option<&Relation> {
        let sym = self.interner.get(name)?;
        self.relations.get(&(sym, arity))
    }

    /// Insert one fact.
    pub fn insert(&mut self, id: RelationId, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != id.1 {
            return Err(Error::Storage(format!(
                "fact arity {} does not match relation arity {}",
                tuple.arity(),
                id.1
            )));
        }
        self.relation_mut(id).insert(tuple)
    }

    /// Tombstone one fact; `true` if it was live (see
    /// [`Relation::delete`]).
    pub fn delete(&mut self, id: RelationId, tuple: &Tuple) -> bool {
        match self.relations.get_mut(&id) {
            Some(rel) => rel.delete(tuple),
            None => false,
        }
    }

    /// Bulk-load `(id, tuple)` facts, e.g. from the parser.
    ///
    /// Accepts anything convertible to `RelationId` pairs; the parser's
    /// `(Predicate, Tuple)` output converts via `Predicate::{name, arity}`.
    pub fn load_facts<I, P>(&mut self, facts: I) -> Result<usize>
    where
        I: IntoIterator<Item = (P, Tuple)>,
        P: Into<RelationId>,
    {
        let mut loaded = 0;
        for (pred, tuple) in facts {
            if self.insert(pred.into(), tuple)? {
                loaded += 1;
            }
        }
        Ok(loaded)
    }

    /// Replace the relation stored at `id`.
    pub fn put_relation(&mut self, id: RelationId, relation: Relation) -> Result<()> {
        if relation.arity() != id.1 {
            return Err(Error::Storage(format!(
                "relation arity {} does not match id arity {}",
                relation.arity(),
                id.1
            )));
        }
        self.relations.insert(id, relation);
        Ok(())
    }

    /// Iterate over all `(id, relation)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&RelationId, &Relation)> {
        self.relations.iter()
    }

    /// Total number of live tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::live_len).sum()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    fn db() -> (Database, RelationId) {
        let interner = Interner::new();
        let par = (interner.intern("par"), 2usize);
        (Database::new(interner), par)
    }

    #[test]
    fn insert_and_lookup() {
        let (mut d, par) = db();
        assert!(d.insert(par, ituple![1, 2]).unwrap());
        assert!(!d.insert(par, ituple![1, 2]).unwrap());
        assert_eq!(d.relation(par).unwrap().len(), 1);
        assert_eq!(d.relation_by_name("par", 2).unwrap().len(), 1);
        assert!(d.relation_by_name("par", 3).is_none());
        assert!(d.relation_by_name("nope", 2).is_none());
    }

    #[test]
    fn insert_arity_mismatch_is_error() {
        let (mut d, par) = db();
        assert!(d.insert(par, ituple![1]).is_err());
    }

    #[test]
    fn relation_or_empty_for_missing() {
        let (d, par) = db();
        assert_eq!(d.relation_or_empty(par).len(), 0);
        assert_eq!(d.relation_or_empty(par).arity(), 2);
    }

    #[test]
    fn load_facts_counts_fresh_only() {
        let (mut d, par) = db();
        let facts = vec![
            (par, ituple![1, 2]),
            (par, ituple![2, 3]),
            (par, ituple![1, 2]),
        ];
        assert_eq!(d.load_facts(facts).unwrap(), 2);
        assert_eq!(d.total_tuples(), 2);
        assert_eq!(d.relation_count(), 1);
    }

    #[test]
    fn put_relation_replaces() {
        let (mut d, par) = db();
        d.insert(par, ituple![9, 9]).unwrap();
        let fresh: Relation = [ituple![1, 2]].into_iter().collect();
        d.put_relation(par, fresh).unwrap();
        assert_eq!(d.relation(par).unwrap().sorted(), vec![ituple![1, 2]]);
        assert!(d.put_relation(par, Relation::new(3)).is_err());
    }
}
