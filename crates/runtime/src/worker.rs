//! The per-processor worker loop.
//!
//! Implements the paper's §3 execution skeleton:
//!
//! ```text
//! evaluate initialization rule
//! repeat
//!     evaluate processing rules
//!     evaluate sending rules
//!     evaluate receiving rules
//! until "termination"
//! ```
//!
//! Initialization/processing/sending rules run inside the local
//! [`FixpointEngine`]; the *receiving* rules are realized by injecting
//! arriving batches into the inbox predicates; and the asynchrony the
//! paper insists on ("processor i does not wait for data from processor
//! j") falls out of draining the input queue non-blockingly while active
//! and blocking only when locally quiescent.

use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use gst_common::{Error, Result};
use gst_eval::FixpointEngine;

use crate::message::{Envelope, Message};
use crate::spec::WorkerSpec;
use crate::stats::WorkerReport;
use crate::termination::{Safra, TokenAction, TokenMsg};

/// Runtime knobs shared by all workers.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// How long a passive worker blocks on its queue per wait.
    pub idle_poll: Duration,
    /// Give up if passive this long with no token traffic (a peer died).
    pub idle_watchdog: Duration,
    /// Perform the final-pooling step. Disable to measure the recursive
    /// computation alone — the paper treats pooling as a separate cost
    /// ("might require communication from all processors to a single
    /// processor", §3 step 5).
    pub pool_results: bool,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            idle_poll: Duration::from_millis(1),
            idle_watchdog: Duration::from_secs(30),
            pool_results: true,
        }
    }
}

pub(crate) struct Worker {
    id: usize,
    n: usize,
    engine: FixpointEngine,
    spec: WorkerSpec,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    safra: Safra,
    held_token: Option<TokenMsg>,
    terminated: bool,
    config: WorkerConfig,
    // statistics
    sent_tuples_to: Vec<u64>,
    sent_bytes_to: Vec<u64>,
    sent_messages: u64,
    received_tuples: u64,
    received_bytes: u64,
    busy: Duration,
}

impl Worker {
    fn run_to_termination(&mut self) -> Result<()> {
        let t0 = std::time::Instant::now();
        self.engine.bootstrap()?;
        self.local_work()?;
        self.busy += t0.elapsed();

        let mut idle_for = Duration::ZERO;
        while !self.terminated {
            // Passive here: the engine is quiescent and all produced
            // tuples have been shipped.
            if let Some(token) = self.held_token.take() {
                self.handle_token(token)?;
                continue;
            }
            if self.id == 0 {
                if let Some(token) = self.safra.launch() {
                    self.send_token(self.safra.next(), token)?;
                }
            }
            match self.rx.recv_timeout(self.config.idle_poll) {
                Ok(env) => {
                    idle_for = Duration::ZERO;
                    self.handle_passive(env)?;
                }
                Err(RecvTimeoutError::Timeout) => {
                    idle_for += self.config.idle_poll;
                    if idle_for >= self.config.idle_watchdog {
                        return Err(Error::Runtime(format!(
                            "processor {} idle for {:?} without termination — a peer \
                             likely failed",
                            self.id, idle_for
                        )));
                    }
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(Error::Runtime(format!(
                        "processor {}: input channel disconnected before termination",
                        self.id
                    )))
                }
            }
        }
        Ok(())
    }

    /// Handle one envelope while passive.
    fn handle_passive(&mut self, env: Envelope) -> Result<()> {
        match env.message {
            Message::Batch(payload) => {
                let t0 = std::time::Instant::now();
                self.accept_batch(payload)?;
                let r = self.local_work();
                self.busy += t0.elapsed();
                r
            }
            Message::Token(token) => self.handle_token(token),
            Message::Terminate => {
                self.terminated = true;
                Ok(())
            }
        }
    }

    /// Compute to local quiescence, shipping channel deltas as they form.
    fn local_work(&mut self) -> Result<()> {
        loop {
            self.drain_incoming()?;
            if self.terminated {
                return Ok(());
            }
            let fresh = self.engine.advance();
            if fresh == 0 {
                debug_assert!(self.engine.quiescent());
                return Ok(());
            }
            self.ship_channel_deltas()?;
            self.engine.process_round();
        }
    }

    /// Non-blocking drain: inject data, hold tokens (we are active),
    /// honor terminate.
    fn drain_incoming(&mut self) -> Result<()> {
        while let Ok(env) = self.rx.try_recv() {
            match env.message {
                Message::Batch(payload) => self.accept_batch(payload)?,
                Message::Token(token) => {
                    // An active process keeps the token until passive.
                    debug_assert!(self.held_token.is_none(), "two tokens in the ring");
                    self.held_token = Some(token);
                }
                Message::Terminate => self.terminated = true,
            }
        }
        Ok(())
    }

    /// Decode and absorb an incoming batch (the receive step: the decoded
    /// tuples realize `t_in^i(W̄) :- t_ji(W̄)`).
    fn accept_batch(&mut self, payload: bytes::Bytes) -> Result<()> {
        self.safra.on_basic_receive();
        self.received_bytes += payload.len() as u64;
        let (inbox, tuples) = crate::codec::decode_batch(payload)?;
        self.received_tuples += tuples.len() as u64;
        self.engine.inject(inbox, tuples)
    }

    /// Ship every channel predicate's fresh delta (paper: sending step).
    fn ship_channel_deltas(&mut self) -> Result<()> {
        for k in 0..self.spec.program.outgoing.len() {
            let out = self.spec.program.outgoing[k].clone();
            let tuples = self.engine.delta_tuples(out.channel);
            if tuples.is_empty() {
                continue;
            }
            if out.dest == self.id {
                // Local loopback (t_ii): no network, no counters.
                self.engine.inject(out.inbox, tuples)?;
                continue;
            }
            let payload = crate::codec::encode_batch(out.inbox, &tuples)?;
            self.sent_tuples_to[out.dest] += tuples.len() as u64;
            self.sent_bytes_to[out.dest] += payload.len() as u64;
            self.sent_messages += 1;
            self.safra.on_send();
            self.senders[out.dest]
                .send(Envelope {
                    from: self.id,
                    message: Message::Batch(payload),
                })
                .map_err(|_| {
                    Error::Runtime(format!(
                        "processor {}: channel to {} closed",
                        self.id, out.dest
                    ))
                })?;
        }
        Ok(())
    }

    fn handle_token(&mut self, token: TokenMsg) -> Result<()> {
        match self.safra.on_token(token) {
            TokenAction::Forward(t) | TokenAction::Relaunch(t) => {
                self.send_token(self.safra.next(), t)
            }
            TokenAction::Terminate => {
                self.terminated = true;
                for dest in 0..self.n {
                    if dest != self.id {
                        self.senders[dest]
                            .send(Envelope {
                                from: self.id,
                                message: Message::Terminate,
                            })
                            .map_err(|_| {
                                Error::Runtime(format!(
                                    "processor {}: terminate broadcast to {} failed",
                                    self.id, dest
                                ))
                            })?;
                    }
                }
                Ok(())
            }
        }
    }

    fn send_token(&mut self, dest: usize, token: TokenMsg) -> Result<()> {
        self.senders[dest]
            .send(Envelope {
                from: self.id,
                message: Message::Token(token),
            })
            .map_err(|_| {
                Error::Runtime(format!(
                    "processor {}: token send to {} failed",
                    self.id, dest
                ))
            })
    }

    fn into_report(self, pooled_tuples: u64) -> WorkerReport {
        let stats = self.engine.stats().clone();
        let processing_firings = stats.firings_for_rules(&self.spec.program.processing_rules);
        WorkerReport {
            processor: self.id,
            eval: stats,
            processing_firings,
            sent_tuples_to: self.sent_tuples_to,
            sent_bytes_to: self.sent_bytes_to,
            sent_messages: self.sent_messages,
            received_tuples: self.received_tuples,
            received_bytes: self.received_bytes,
            pooled_tuples,
            busy: self.busy,
        }
    }

    /// Move the pooled relations out of the engine (final pooling, §3
    /// step 5) — a move, not a clone, so pooling cost is one union at the
    /// coordinator.
    pub(crate) fn take_pooled(&mut self) -> PooledRelations {
        let pairs = self.spec.program.pooling.clone();
        pairs
            .into_iter()
            .filter_map(|(local, global)| {
                self.engine.take_relation(local).map(|rel| (global, rel))
            })
            .collect()
    }
}

/// `(global predicate, relation)` pairs a worker pools into the answer.
pub(crate) type PooledRelations = Vec<((gst_common::SymbolId, usize), gst_storage::Relation)>;

/// Run a worker and also return its pooled relations. Separate from
/// [`run`] so the coordinator gets data and report in one join.
pub(crate) fn run_with_pool(
    spec: WorkerSpec,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    config: WorkerConfig,
) -> Result<(WorkerReport, PooledRelations)> {
    let id = spec.program.processor;
    let n = senders.len();
    let engine = FixpointEngine::new(
        &spec.program.program,
        spec.edb.clone(),
        &spec.program.extra_idb(),
    )?;
    let mut worker = Worker {
        id,
        n,
        engine,
        spec,
        senders,
        rx,
        safra: Safra::new(id, n),
        held_token: None,
        terminated: false,
        config,
        sent_tuples_to: vec![0; n],
        sent_bytes_to: vec![0; n],
        sent_messages: 0,
        received_tuples: 0,
        received_bytes: 0,
        busy: Duration::ZERO,
    };
    worker.run_to_termination()?;
    let pooled = if worker.config.pool_results {
        worker.take_pooled()
    } else {
        Vec::new()
    };
    let pooled_tuples = pooled.iter().map(|(_, r)| r.len() as u64).sum();
    Ok((worker.into_report(pooled_tuples), pooled))
}
