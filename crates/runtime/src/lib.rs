//! The parallel runtime: the paper's abstract architecture made concrete.
//!
//! Section 3 of the paper assumes a set `P` of processors where "a
//! processor i in P may communicate with every other processor j" through
//! reliable channels `ij`, with **asynchronous receives** ("processor i
//! does not wait for data from processor j") and termination when "all
//! processors are idle and all channels are empty", detected by "standard
//! algorithms of Distributed Computing" (the paper cites Dijkstra–Scholten
//! and Chandy–Misra).
//!
//! Here each processor is a transport-agnostic state machine
//! ([`worker::WorkerCore`]) running a [`gst_eval::FixpointEngine`] over its
//! rewritten program, with termination detected by Safra's colored-token
//! ring algorithm (the same diffusing-computation family the paper cites),
//! implemented as a pure, unit-testable state machine in [`termination`].
//! How the machines are driven is the [`transport::Transport`]'s choice:
//!
//! * [`transport::ThreadedTransport`] (the default behind
//!   [`execute_processors`]) — one OS thread per processor, blocking
//!   queues, real parallelism;
//! * [`sim::SimTransport`] — every processor interleaved on one thread
//!   under a virtual clock with a seeded scheduler and [`fault::FaultPlan`]
//!   injection: deterministic, replayable, adversarial. [`explore`] sweeps
//!   seed ranges and shrinks failures to minimal replayable traces.
//!
//! The runtime is scheme-agnostic: it executes any [`ProcessorProgram`] —
//! the rewriting schemes in `gst-core` produce them — and reports the
//! pooled result plus per-worker and per-channel statistics (tuples sent
//! on every channel `i→j`, firings split by rule class) that the
//! experiments use to verify the paper's communication and non-redundancy
//! claims.

#![warn(missing_docs)]

pub mod codec;
pub mod coordinator;
pub mod explore;
pub mod fault;
pub mod message;
pub mod net;
pub mod obs;
pub mod profile;
pub mod sim;
pub mod spec;
pub mod simulate;
pub mod stats;
pub mod sync;
pub mod termination;
pub mod transport;
pub(crate) mod wire;
pub mod worker;

pub use coordinator::{execute_processors, FailPoint, RuntimeConfig, SupervisorConfig};
pub use explore::{shrink_failure, sweep_seeds, ExpectedModel, Shrunk, SweepReport};
pub use fault::{CrashSpec, FaultPlan};
pub use net::{
    run_net_worker, ConstraintDecoderFn, InProcessLauncher, KillSpec, Launcher, NetConfig,
    NetCoordinator, NetFault, NetFaultPlan, NetWorkerArgs, ProcessLauncher,
};
pub use obs::{Journal, ObsEvent, ObsKind, TimeBase, TraceSink};
pub use profile::{
    HotRule, IdleGap, PhaseTotals, ProfileReport, RoundCost, WorkerProfile, PHASES,
};
pub use sim::{SimTrace, SimTransport, TraceEvent};
pub use simulate::{simulate_bsp, MachineModel, RoundTrace};
pub use sync::{execute_synchronous, execute_synchronous_traced};
pub use spec::{ChannelOut, ProcessorProgram, SessionSeed, WorkerSpec};
pub use stats::{ExecutionOutcome, ParallelStats, WorkerReport};
pub use transport::{ThreadedTransport, Transport};
