//! A fast, non-cryptographic hasher in the style of `rustc-hash`'s FxHash.
//!
//! Hashing is on the hottest path of a bottom-up Datalog engine: every
//! duplicate-elimination, every hash join probe, and every discriminating
//! function evaluation hashes a tuple. SipHash (std's default) is
//! needlessly slow for short integer-shaped keys, so we implement the
//! multiply-and-rotate scheme used by the Rust compiler itself. We write it
//! here rather than pulling in `rustc-hash` to keep the dependency set to
//! the approved list.
//!
//! The hasher is *not* DoS-resistant; all keys in this workspace are
//! machine-generated tuples, not attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative seed used by FxHash on 64-bit platforms
/// (derived from the golden ratio, as in rustc).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation amount applied before every multiply.
const ROTATE: u32 = 5;

/// A fast hasher for short, trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            // chunk is exactly 8 bytes by construction.
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hash a single `Hash` value to a `u64` with [`FxHasher`].
///
/// Used by discriminating functions, which must be *deterministic across
/// threads and processes in the same run* — FxHash has no per-instance
/// randomness, so every worker computes the same processor assignment.
#[inline]
pub fn hash_one<T: Hash>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_one(&42u64), hash_one(&42u64));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn different_keys_differ() {
        // Not a guarantee in general, but these must differ for the hasher
        // to be at all useful.
        assert_ne!(hash_one(&1u64), hash_one(&2u64));
        assert_ne!(hash_one(&"a"), hash_one(&"b"));
    }

    #[test]
    fn write_handles_non_multiple_of_eight() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 0, 0]);
        let b = h.finish();
        // Padding semantics: trailing zeros land in the same word for the
        // remainder path, but a 5-byte write still hashes one word, so the
        // two must agree only if the padded words agree; assert stability
        // instead of collision freedom.
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3]);
        assert_eq!(a, h2.finish());
        let _ = b;
    }

    #[test]
    fn empty_input_hashes_to_zero_state() {
        let h = FxHasher::default();
        assert_eq!(h.finish(), 0);
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m.get(&7), Some(&"seven"));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn u128_write_mixes_both_halves() {
        let lo = hash_one(&1u128);
        let hi = hash_one(&(1u128 << 64));
        assert_ne!(lo, hi);
    }
}
