//! The transport abstraction: how worker state machines get driven and
//! how their envelopes move.
//!
//! The paper's architecture assumes "a processor i in P may communicate
//! with every other processor j" over reliable channels, but deliberately
//! says nothing about *what* a processor is. This module keeps that
//! abstraction honest in code: a [`Transport`] executes a set of
//! [`WorkerSpec`]s to distributed termination and pools the answer, and
//! everything above it (schemes, CLI, experiments) is transport-agnostic.
//!
//! Two implementations exist:
//!
//! * [`ThreadedTransport`] — one OS thread per processor with blocking
//!   queues; real parallelism, schedule chosen by the OS;
//! * [`crate::sim::SimTransport`] — all processors interleaved on the
//!   calling thread under a virtual clock, schedule chosen by a seeded
//!   PRNG, with optional fault injection. Same [`crate::worker::WorkerCore`],
//!   adversarial schedules, bit-for-bit reproducible.

use std::collections::hash_map::Entry;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::Instant;

use gst_common::{Error, FxHashMap, Result};
use gst_eval::plan::RelationId;
use gst_storage::Relation;

use crate::coordinator::RuntimeConfig;
use crate::message::Envelope;
use crate::spec::WorkerSpec;
use crate::stats::{ExecutionOutcome, ParallelStats, WorkerReport};
use crate::worker::{finish_core, watchdog_error, Outbox, PooledRelations, Step, WorkerCore};

/// Something that can run a fleet of processor programs to distributed
/// termination and pool the global answer.
pub trait Transport {
    /// Execute one [`WorkerSpec`] per processor and pool the results.
    ///
    /// `specs[i].program.processor` must equal `i` — the termination ring
    /// and the channel matrix are indexed by position.
    fn execute(&self, specs: Vec<WorkerSpec>, config: &RuntimeConfig) -> Result<ExecutionOutcome>;
}

/// Shared spec validation: positions match processor ids, channel
/// destinations exist.
pub(crate) fn validate_specs(specs: &[WorkerSpec]) -> Result<()> {
    if specs.is_empty() {
        return Err(Error::Runtime("no processors to execute".into()));
    }
    for (i, spec) in specs.iter().enumerate() {
        if spec.program.processor != i {
            return Err(Error::Runtime(format!(
                "worker at position {i} claims processor {}",
                spec.program.processor
            )));
        }
        for out in &spec.program.outgoing {
            if out.dest >= specs.len() {
                return Err(Error::Runtime(format!(
                    "processor {i} has a channel to nonexistent processor {}",
                    out.dest
                )));
            }
        }
    }
    Ok(())
}

/// Union one worker's pooled relations into the global answer. The first
/// shard per predicate arrives by move (no per-tuple cost).
pub(crate) fn pool_into(
    relations: &mut FxHashMap<RelationId, Relation>,
    pooled: PooledRelations,
) -> Result<()> {
    for (global, rel) in pooled {
        match relations.entry(global) {
            Entry::Vacant(slot) => {
                slot.insert(rel);
            }
            Entry::Occupied(mut slot) => {
                slot.get_mut().absorb(&rel)?;
            }
        }
    }
    Ok(())
}

/// Assemble the final outcome from per-worker results (shared by both
/// transports).
pub(crate) fn assemble_outcome(
    results: Vec<(WorkerReport, PooledRelations)>,
    wall_time: std::time::Duration,
) -> Result<ExecutionOutcome> {
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(results.len());
    let mut relations: FxHashMap<RelationId, Relation> = FxHashMap::default();
    for (report, pooled) in results {
        pool_into(&mut relations, pooled)?;
        reports.push(report);
    }
    reports.sort_by_key(|r| r.processor);
    let channel_matrix: Vec<Vec<u64>> = reports.iter().map(|r| r.sent_tuples_to.clone()).collect();
    Ok(ExecutionOutcome {
        relations,
        stats: ParallelStats {
            workers: reports,
            channel_matrix,
            wall_time,
        },
    })
}

/// One OS thread per processor, unbounded queues, OS scheduling — the
/// deployment transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedTransport;

/// Outbox over per-processor queue senders.
struct ThreadOutbox {
    senders: Vec<Sender<Envelope>>,
}

impl Outbox for ThreadOutbox {
    fn send(&mut self, to: usize, env: Envelope) -> Result<()> {
        self.senders[to].send(env).map_err(|_| {
            Error::Runtime(format!("channel to processor {to} closed (peer exited early)"))
        })
    }
}

/// The per-thread driver: drain the queue, step the core, block (bounded)
/// when idle, watchdog a starving worker.
fn run_threaded(
    spec: WorkerSpec,
    senders: Vec<Sender<Envelope>>,
    rx: Receiver<Envelope>,
    config: RuntimeConfig,
) -> Result<(WorkerReport, PooledRelations)> {
    let n = senders.len();
    let mut core = WorkerCore::new(spec, n)?;
    let mut out = ThreadOutbox { senders };
    let mut idle_since: Option<Instant> = None;
    loop {
        while let Ok(env) = rx.try_recv() {
            core.enqueue(env);
        }
        match core.step(&mut out)? {
            Step::Done => break,
            Step::Worked => idle_since = None,
            Step::Idle => {
                let since = *idle_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= config.worker.idle_watchdog {
                    return Err(watchdog_error(core.id(), since.elapsed()));
                }
                match rx.recv_timeout(config.worker.idle_poll) {
                    Ok(env) => core.enqueue(env),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        // All senders (including the coordinator's anchor)
                        // dropped: the run is being torn down.
                        return Err(watchdog_error(core.id(), since.elapsed()));
                    }
                }
            }
        }
    }
    Ok(finish_core(core, &config.worker))
}

impl Transport for ThreadedTransport {
    fn execute(&self, specs: Vec<WorkerSpec>, config: &RuntimeConfig) -> Result<ExecutionOutcome> {
        validate_specs(&specs)?;
        let n = specs.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Envelope>();
            senders.push(tx);
            receivers.push(rx);
        }

        let started = Instant::now();
        // The coordinator keeps anchor clones of every sender so a worker
        // blocked in recv_timeout sees Timeout (not Disconnected) while
        // peers are still being joined; a send to an *exited* worker still
        // fails fast because its Receiver is dropped.
        let joined: Vec<Result<(WorkerReport, PooledRelations)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for (spec, rx) in specs.into_iter().zip(receivers) {
                let senders = senders.clone();
                let config = config.clone();
                handles.push(scope.spawn(move || run_threaded(spec, senders, rx, config)));
            }
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::Runtime("worker thread panicked".into())))
                })
                .collect()
        });
        drop(senders);
        let wall_time = started.elapsed();
        let results = joined.into_iter().collect::<Result<Vec<_>>>()?;
        assemble_outcome(results, wall_time)
    }
}
