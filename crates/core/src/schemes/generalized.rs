//! The §6 generalized scheme `R_i`: per-processor discriminating
//! functions, exposing the redundancy ↔ communication trade-off.
//!
//! Processor `i` executes
//!
//! ```text
//! initialization:  t_out^i(Z̄) :- s(Z̄), h'(v(e)) = i
//! processing:      t_out^i(X̄) :- t_in^i(Ȳ), b₁, …, b_k        (no condition!)
//! sending (∀j):    t_ij(Ȳ)    :- t_out^i(Ȳ), h_i(v(r)) = j
//! receiving (∀j):  t_in^i(W̄)  :- t_ji(W̄)
//! final pooling:   t(W̄)       :- t_out^i(W̄)
//! ```
//!
//! "The major distinction ... is that the discriminating functions `h_i`
//! used by the processors may be different from one another": routing is
//! a *local decision*. The paper's two degenerate points:
//!
//! * `h_i(x) = i` for all `i` ([`Constant`]) — nothing is ever sent; the
//!   execution *is* the communication-free scheme of [Wolfson 88];
//! * `h_i = h` for all `i` — every tuple is processed at one unique site;
//!   the execution is the non-redundant scheme of §3.
//!
//! [`Mixed`] interpolates: keep each tuple local with probability `α`,
//! else route by the shared hash. Sweeping `α` traces the paper's
//! spectrum (experiment S1).
//!
//! §6 requires every variable of `v(r)` to appear in `Ȳ` — enforced here —
//! which also guarantees the sending rules can always evaluate `h_i` on
//! an outgoing tuple (no broadcast fallback exists in this scheme).
//!
//! [`Constant`]: crate::discriminator::Constant
//! [`Mixed`]: crate::discriminator::Mixed

use gst_common::{Error, Result};
use gst_frontend::ast::{Literal, Term};
use gst_frontend::{LinearSirup, Variable};
use gst_runtime::{ChannelOut, ProcessorProgram, WorkerSpec};
use gst_storage::Database;

use crate::discriminator::{DiscConstraint, DiscriminatorRef};
use crate::schemes::common::{
    atom, program, rel_id, validate_sequence, worker_databases, BaseDistribution, Namer,
};
use crate::schemes::CompiledScheme;

/// Parameters of the §6 rewriting.
#[derive(Clone)]
pub struct GeneralizedConfig {
    /// `v(r)`; every variable must appear in the body `t`-atom `Ȳ`.
    pub v_r: Vec<Variable>,
    /// `v(e)`.
    pub v_e: Vec<Variable>,
    /// `h'` shared by all processors for initialization.
    pub h_prime: DiscriminatorRef,
    /// `h_i` per processor — the local routing decisions.
    pub h_locals: Vec<DiscriminatorRef>,
}

/// Rewrite `sirup` into the generalized trade-off scheme.
///
/// Base relations are shared: the processing rule is unconditioned, so a
/// processor may fire any instance its inputs reach.
pub fn rewrite_generalized(
    sirup: &LinearSirup,
    cfg: &GeneralizedConfig,
    db: &Database,
) -> Result<CompiledScheme> {
    let n = cfg.h_locals.len();
    if n == 0 {
        return Err(Error::Discriminator("need at least one processor".into()));
    }
    if cfg.h_prime.processors() != n
        || cfg.h_locals.iter().any(|h| h.processors() != n)
    {
        return Err(Error::Discriminator(
            "h' and every h_i must map onto the same processor set".into(),
        ));
    }
    validate_sequence(sirup.exit_rule(), &cfg.v_e, "v(e)")?;
    validate_sequence(sirup.recursive_rule(), &cfg.v_r, "v(r)")?;
    // §6's restriction: v(r) ⊆ Ȳ.
    for v in &cfg.v_r {
        let in_y = sirup
            .recursive_args
            .iter()
            .any(|t| matches!(t, Term::Var(tv) if tv == v));
        if !in_y {
            return Err(Error::Discriminator(
                "§6 requires every variable in v(r) to appear in Ȳ \
                 (the body t-atom)"
                    .into(),
            ));
        }
    }

    let interner = sirup.program.interner.clone();
    let namer = Namer::new(interner.clone());
    let t = rel_id(sirup.target);

    let mut programs = Vec::with_capacity(n);
    for i in 0..n {
        let out_i = namer.out(t, i);
        let in_i = namer.input(t, i);
        let h_i = &cfg.h_locals[i];
        let mut rules = Vec::new();

        // 0: initialization.
        // Clone the whole exit body — atoms AND any built-in constraint
        // literals (e.g. comparisons) the source rule carries.
        let mut body: Vec<Literal> = sirup.exit_rule().body.to_vec();
        body.push(Literal::Constraint(DiscConstraint::literal(
            cfg.v_e.clone(),
            cfg.h_prime.clone(),
            i,
        )));
        rules.push(gst_frontend::Rule::new(
            atom(out_i, sirup.exit_head.clone()),
            body,
        ));

        // 1: unconditioned processing.
        let mut body: Vec<Literal> = Vec::new();
        let mut seen_atoms = 0usize;
        for literal in &sirup.recursive_rule().body {
            match literal {
                Literal::Atom(a) => {
                    if seen_atoms == sirup.recursive_atom_index {
                        body.push(Literal::Atom(atom(in_i, a.terms.clone())));
                    } else {
                        body.push(Literal::Atom(a.clone()));
                    }
                    seen_atoms += 1;
                }
                Literal::Constraint(c) => body.push(Literal::Constraint(c.clone())),
            }
        }
        rules.push(gst_frontend::Rule::new(atom(out_i, sirup.head.clone()), body));

        // Sending with the processor's own h_i; j = i is a local rule.
        let pattern = sirup.recursive_args.clone();
        let mut outgoing = Vec::new();
        rules.push(gst_frontend::Rule::new(
            atom(in_i, pattern.clone()),
            vec![
                Literal::Atom(atom(out_i, pattern.clone())),
                Literal::Constraint(DiscConstraint::literal(
                    cfg.v_r.clone(),
                    h_i.clone(),
                    i,
                )),
            ],
        ));
        for j in 0..n {
            if j == i {
                continue;
            }
            let ch = namer.channel(t, i, j);
            rules.push(gst_frontend::Rule::new(
                atom(ch, pattern.clone()),
                vec![
                    Literal::Atom(atom(out_i, pattern.clone())),
                    Literal::Constraint(DiscConstraint::literal(
                        cfg.v_r.clone(),
                        h_i.clone(),
                        j,
                    )),
                ],
            ));
            outgoing.push(ChannelOut {
                channel: ch,
                dest: j,
                inbox: namer.input(t, j),
            });
        }

        programs.push(ProcessorProgram {
            processor: i,
            program: program(rules, &interner),
            outgoing,
            inboxes: vec![in_i],
            processing_rules: vec![0, 1],
            pooling: vec![(out_i, t)],
            local_idb: vec![],
            retract_channels: vec![],
        });
    }

    let edbs = worker_databases(db, &programs, BaseDistribution::Shared)?;
    let workers = programs
        .into_iter()
        .zip(edbs)
        .map(|(program, edb)| WorkerSpec { program, edb, session: None })
        .collect();

    Ok(CompiledScheme {
        workers,
        answers: vec![t],
        kind: "generalized trade-off (§6 R_i)",
        hot_keys_split: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discriminator::{Constant, HashMod, Mixed};
    use gst_eval::seminaive_eval;
    use gst_workloads::{grid, linear_ancestor, random_digraph};
    use std::sync::Arc;

    fn setup() -> (LinearSirup, gst_workloads::Fixture) {
        let fx = linear_ancestor();
        let s = LinearSirup::from_program(&fx.program).unwrap();
        (s, fx)
    }

    fn var(s: &LinearSirup, name: &str) -> Variable {
        Variable(s.program.interner.get(name).unwrap())
    }

    fn config_with(
        s: &LinearSirup,
        h_locals: Vec<DiscriminatorRef>,
        n: usize,
    ) -> GeneralizedConfig {
        GeneralizedConfig {
            v_r: vec![var(s, "Z")],
            v_e: vec![var(s, "X")],
            h_prime: Arc::new(HashMod::new(n, 17)),
            h_locals,
        }
    }

    #[test]
    fn shared_h_reduces_to_non_redundant() {
        let (s, fx) = setup();
        let n = 4;
        let h: DiscriminatorRef = Arc::new(HashMod::new(n, 23));
        let cfg = config_with(&s, vec![h; n], n);
        let db = fx.database(&grid(5, 5));
        let outcome = rewrite_generalized(&s, &cfg, &db).unwrap().run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        // Theorem 2 regime: non-redundant.
        assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
    }

    #[test]
    fn constant_h_reduces_to_no_communication() {
        let (s, fx) = setup();
        let n = 3;
        let h_locals: Vec<DiscriminatorRef> = (0..n)
            .map(|i| Arc::new(Constant::new(n, i)) as DiscriminatorRef)
            .collect();
        let cfg = config_with(&s, h_locals, n);
        let db = fx.database(&random_digraph(20, 40, 4));
        let outcome = rewrite_generalized(&s, &cfg, &db).unwrap().run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
        assert!(outcome.stats.communication_free());
    }

    #[test]
    fn mixed_alpha_trades_communication_for_redundancy() {
        let (s, fx) = setup();
        let n = 4;
        let db = fx.database(&grid(6, 6));
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();

        let base: DiscriminatorRef = Arc::new(HashMod::new(n, 23));
        let mut comm = Vec::new();
        let mut firings = Vec::new();
        for &alpha in &[0.0, 0.5, 1.0] {
            let h_locals: Vec<DiscriminatorRef> = (0..n)
                .map(|i| Arc::new(Mixed::new(i, base.clone(), alpha, 31)) as DiscriminatorRef)
                .collect();
            let cfg = config_with(&s, h_locals, n);
            let outcome = rewrite_generalized(&s, &cfg, &db).unwrap().run().unwrap();
            assert!(
                outcome.relation(anc).set_eq(&seq.relation(anc)),
                "α={alpha}: correctness must hold everywhere on the spectrum"
            );
            comm.push(outcome.stats.total_tuples_sent());
            firings.push(outcome.stats.total_processing_firings());
        }
        // α=0 (pure hash) communicates the most and fires the least;
        // α=1 (keep-local) communicates nothing.
        assert!(comm[0] > comm[1], "comm: {comm:?}");
        assert!(comm[1] > comm[2], "comm: {comm:?}");
        assert_eq!(comm[2], 0);
        assert!(firings[0] <= seq.stats.firings);
        assert!(
            firings[2] >= firings[0],
            "keep-local must not fire fewer times: {firings:?}"
        );
    }

    #[test]
    fn rejects_v_r_outside_y() {
        let (s, fx) = setup();
        let n = 2;
        let h: DiscriminatorRef = Arc::new(HashMod::new(n, 1));
        let cfg = GeneralizedConfig {
            v_r: vec![var(&s, "X")], // X ∉ Ȳ = (Z, Y)
            v_e: vec![var(&s, "X")],
            h_prime: h.clone(),
            h_locals: vec![h; n],
        };
        let db = fx.database(&grid(3, 3));
        let err = rewrite_generalized(&s, &cfg, &db).unwrap_err();
        assert!(err.to_string().contains("appear in Ȳ"));
    }

    #[test]
    fn rejects_mismatched_ranges() {
        let (s, fx) = setup();
        let h2: DiscriminatorRef = Arc::new(HashMod::new(2, 1));
        let h3: DiscriminatorRef = Arc::new(HashMod::new(3, 1));
        let cfg = GeneralizedConfig {
            v_r: vec![var(&s, "Z")],
            v_e: vec![var(&s, "X")],
            h_prime: h3,
            h_locals: vec![h2.clone(), h2],
        };
        let db = fx.database(&grid(3, 3));
        assert!(rewrite_generalized(&s, &cfg, &db).is_err());
    }

    #[test]
    fn rejects_zero_processors() {
        let (s, fx) = setup();
        let cfg = GeneralizedConfig {
            v_r: vec![var(&s, "Z")],
            v_e: vec![var(&s, "X")],
            h_prime: Arc::new(HashMod::new(1, 1)),
            h_locals: vec![],
        };
        let db = fx.database(&grid(2, 2));
        assert!(rewrite_generalized(&s, &cfg, &db).is_err());
    }
}
