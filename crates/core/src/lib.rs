//! The paper's contribution: parallelizing bottom-up Datalog evaluation
//! with discriminating hash functions.
//!
//! Ganguly, Silberschatz & Tsur, *A Framework for the Parallel Processing
//! of Datalog Queries* (SIGMOD 1990) partitions the ground substitutions
//! of semi-naive evaluation across processors via *discriminating
//! sequences* of variables and *discriminating functions* based on
//! hashing. This crate implements the whole framework:
//!
//! * [`discriminator`] — the function family (§3): hash partitions,
//!   bit-vector and linear `g`-combinations, fragment ownership, and the
//!   §6 keep-local mixes;
//! * [`schemes`] — the rewritings: `Q_i` (§3, non-redundant),
//!   the communication-free scheme of [Wolfson 88] (§6), `R_i` (§6,
//!   per-processor functions: the redundancy/communication trade-off),
//!   `T_i` (§7, arbitrary programs), and the §4 example presets;
//! * [`dataflow`] — argument-position dataflow graphs (§5, Def. 2) and
//!   the Theorem-3 zero-communication chooser;
//! * [`network`] — compile-time derivation of the minimal processor
//!   network (§5, Def. 3, Examples 6–7 / Figures 3–4);
//! * [`strategy`] — the §8 "compiler" decision: pick a scheme from
//!   measured profiles and an architecture's computation/communication
//!   cost ratio.

#![warn(missing_docs)]

pub mod advisor;
pub mod dataflow;
pub mod discriminator;
pub mod network;
pub mod schemes;
pub mod session;
pub mod strategy;

/// Convenient imports for building and running schemes.
pub mod prelude {
    pub use crate::advisor::{advise, candidates, ArchitecturePreference, Candidate};
    pub use crate::dataflow::{zero_comm_choice, DataflowGraph, ZeroCommChoice};
    pub use crate::discriminator::{
        decode_constraint, BitFn, BitVector, Constant, DiscConstraint, Discriminator,
        DiscriminatorRef, FragmentOwner, HashMod, Linear, Mixed, SkewAwareHashMod,
        SymmetricHashMod,
    };
    pub use crate::network::{derive_network, NetworkGraph, SymbolicDisc};
    pub use crate::schemes::demand::compile_demand;
    pub use crate::schemes::general::{rewrite_general, RuleChoice};
    pub use crate::schemes::generalized::{rewrite_generalized, GeneralizedConfig};
    pub use crate::schemes::nocomm::{rewrite_no_comm, NoCommConfig};
    pub use crate::schemes::nonredundant::{rewrite_non_redundant, NonRedundantConfig};
    pub use crate::schemes::presets::{
        example1_wolfson, example2_valduriez, example3_hash_partition, skew_aware_hash_partition,
    };
    pub use crate::schemes::{BaseDistribution, CompiledScheme};
    pub use crate::session::{RoundReport, UpdateBatch, UpdateSession};
    pub use crate::strategy::{
        choose, crossover, demand_choices, sample_key_frequencies, CostModel,
        KeyFrequencyProfile, SchemeProfile, SkewPolicy, DEMAND_HASH_SEED,
    };
}
