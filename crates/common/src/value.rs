//! Runtime constants.
//!
//! A [`Value`] is what fills an argument position of a ground atom: either
//! a 64-bit integer or an interned symbol. Both variants are `Copy`, so
//! tuples of values move through joins, channels and hash tables without
//! allocation.

use std::fmt;

use crate::interner::{Interner, SymbolId};

/// A Datalog constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A 64-bit integer constant, e.g. node ids from a workload generator.
    Int(i64),
    /// An interned symbolic constant, e.g. `alice` in `par(alice, bob)`.
    Sym(SymbolId),
}

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    #[inline]
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(n),
            Value::Sym(_) => None,
        }
    }

    /// The symbol payload, if this is a [`Value::Sym`].
    #[inline]
    pub fn as_sym(self) -> Option<SymbolId> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Render the value using `interner` to resolve symbols.
    pub fn display(self, interner: &Interner) -> String {
        match self {
            Value::Int(n) => n.to_string(),
            Value::Sym(s) => interner.resolve(s).to_string(),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<SymbolId> for Value {
    fn from(s: SymbolId) -> Self {
        Value::Sym(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_sym(), None);
        let s = SymbolId(3);
        assert_eq!(Value::Sym(s).as_sym(), Some(s));
        assert_eq!(Value::Sym(s).as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(SymbolId(2)), Value::Sym(SymbolId(2)));
    }

    #[test]
    fn ints_and_syms_never_compare_equal() {
        assert_ne!(Value::Int(0), Value::Sym(SymbolId(0)));
    }

    #[test]
    fn display_resolves_symbols() {
        let interner = Interner::new();
        let id = interner.intern("alice");
        assert_eq!(Value::Sym(id).display(&interner), "alice");
        assert_eq!(Value::Int(-3).display(&interner), "-3");
    }

    #[test]
    fn value_is_small() {
        // Two words: keeps tuples compact and copies cheap.
        assert!(std::mem::size_of::<Value>() <= 16);
    }
}
