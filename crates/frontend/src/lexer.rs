//! Hand-written lexer for the Datalog surface syntax.
//!
//! Token classes:
//! * identifiers starting with a lowercase letter → predicate/constant
//!   symbols (`par`, `alice`);
//! * identifiers starting with an uppercase letter or `_` → variables
//!   (`X`, `_Tmp`);
//! * signed integers (`42`, `-7`);
//! * punctuation `(`, `)`, `,`, `.`, the rule arrow `:-`, and the query
//!   arrow `?-`;
//! * comments: `%` or `//` to end of line.
//!
//! Every token carries its 1-based line/column for error reporting.

use gst_common::{Error, Result};

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub column: u32,
}

/// The token classes of the Datalog grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Lowercase-initial identifier: predicate or symbolic constant.
    Ident(String),
    /// Uppercase- or underscore-initial identifier: a variable.
    UpperIdent(String),
    /// An integer literal.
    Int(i64),
    /// A quoted string constant, quotes stripped, escapes resolved.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:-`
    ColonDash,
    /// `?-` — starts a query goal.
    QuestionDash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    EqSign,
    /// `!=`
    Ne,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short rendering used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::UpperIdent(s) => format!("variable `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::Str(s) => format!("string {s:?}"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Dot => "`.`".into(),
            TokenKind::ColonDash => "`:-`".into(),
            TokenKind::QuestionDash => "`?-`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::EqSign => "`=`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// Tokenize `source` completely. The result always ends with
/// [`TokenKind::Eof`].
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    column: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn skip_line(&mut self) {
        while let Some(&c) = self.chars.peek() {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            // Skip whitespace and comments.
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                    continue;
                }
                Some('%') => {
                    self.skip_line();
                    continue;
                }
                Some('/') => {
                    // Only `//` starts a comment; a lone `/` is an error.
                    let (line, column) = (self.line, self.column);
                    self.bump();
                    if self.chars.peek() == Some(&'/') {
                        self.skip_line();
                        continue;
                    }
                    return Err(Error::parse(line, column, "unexpected character `/`"));
                }
                _ => {}
            }
            let (line, column) = (self.line, self.column);
            let Some(c) = self.bump() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    line,
                    column,
                });
                return Ok(tokens);
            };
            let kind = match c {
                '(' => TokenKind::LParen,
                ')' => TokenKind::RParen,
                ',' => TokenKind::Comma,
                '.' => TokenKind::Dot,
                ':' => {
                    if self.chars.peek() == Some(&'-') {
                        self.bump();
                        TokenKind::ColonDash
                    } else {
                        return Err(Error::parse(line, column, "expected `:-`"));
                    }
                }
                '?' => {
                    if self.chars.peek() == Some(&'-') {
                        self.bump();
                        TokenKind::QuestionDash
                    } else {
                        return Err(Error::parse(line, column, "expected `?-`"));
                    }
                }
                '<' => {
                    if self.chars.peek() == Some(&'=') {
                        self.bump();
                        TokenKind::Le
                    } else {
                        TokenKind::Lt
                    }
                }
                '>' => {
                    if self.chars.peek() == Some(&'=') {
                        self.bump();
                        TokenKind::Ge
                    } else {
                        TokenKind::Gt
                    }
                }
                '=' => TokenKind::EqSign,
                '!' => {
                    if self.chars.peek() == Some(&'=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        return Err(Error::parse(line, column, "expected `!=`"));
                    }
                }
                '-' => {
                    // A negative integer literal.
                    match self.chars.peek() {
                        Some(d) if d.is_ascii_digit() => self.lex_int(line, column, true)?,
                        _ => {
                            return Err(Error::parse(
                                line,
                                column,
                                "`-` must start an integer literal",
                            ))
                        }
                    }
                }
                d if d.is_ascii_digit() => {
                    let mut text = String::new();
                    text.push(d);
                    self.lex_int_digits(text, line, column, false)?
                }
                '"' => {
                    let mut text = String::new();
                    loop {
                        match self.bump() {
                            None => {
                                return Err(Error::parse(line, column, "unterminated string"))
                            }
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                Some('n') => text.push('\n'),
                                Some('t') => text.push('\t'),
                                Some(c @ ('"' | '\\')) => text.push(c),
                                Some(c) => {
                                    return Err(Error::parse(
                                        line,
                                        column,
                                        format!("unknown escape `\\{c}` in string"),
                                    ))
                                }
                                None => {
                                    return Err(Error::parse(line, column, "unterminated string"))
                                }
                            },
                            Some(c) => text.push(c),
                        }
                    }
                    TokenKind::Str(text)
                }
                a if a.is_alphabetic() || a == '_' => {
                    let mut text = String::new();
                    text.push(a);
                    while let Some(&n) = self.chars.peek() {
                        if n.is_alphanumeric() || n == '_' {
                            text.push(n);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    if a.is_uppercase() || a == '_' {
                        TokenKind::UpperIdent(text)
                    } else {
                        TokenKind::Ident(text)
                    }
                }
                other => {
                    return Err(Error::parse(
                        line,
                        column,
                        format!("unexpected character `{other}`"),
                    ))
                }
            };
            tokens.push(Token { kind, line, column });
        }
    }

    fn lex_int(&mut self, line: u32, column: u32, negative: bool) -> Result<TokenKind> {
        self.lex_int_digits(String::new(), line, column, negative)
    }

    fn lex_int_digits(
        &mut self,
        mut text: String,
        line: u32,
        column: u32,
        negative: bool,
    ) -> Result<TokenKind> {
        while let Some(&n) = self.chars.peek() {
            if n.is_ascii_digit() {
                text.push(n);
                self.bump();
            } else {
                break;
            }
        }
        let value: i64 = text
            .parse()
            .map_err(|_| Error::parse(line, column, format!("integer `{text}` out of range")))?;
        Ok(TokenKind::Int(if negative { -value } else { value }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_a_rule() {
        assert_eq!(
            kinds("anc(X,Y) :- par(X,Y)."),
            vec![
                TokenKind::Ident("anc".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("Y".into()),
                TokenKind::RParen,
                TokenKind::ColonDash,
                TokenKind::Ident("par".into()),
                TokenKind::LParen,
                TokenKind::UpperIdent("X".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("Y".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_integers() {
        assert_eq!(
            kinds("p(1, -2, 30)."),
            vec![
                TokenKind::Ident("p".into()),
                TokenKind::LParen,
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(-2),
                TokenKind::Comma,
                TokenKind::Int(30),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        let src = "% a comment\n  p(X). // trailing\n% done";
        let k = kinds(src);
        assert_eq!(k.len(), 6); // p ( X ) . EOF
        assert_eq!(k[0], TokenKind::Ident("p".into()));
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#"p("hello world", "a\"b", "tab\there")."#),
            vec![
                TokenKind::Ident("p".into()),
                TokenKind::LParen,
                TokenKind::Str("hello world".into()),
                TokenKind::Comma,
                TokenKind::Str("a\"b".into()),
                TokenKind::Comma,
                TokenKind::Str("tab\there".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_string_is_rejected() {
        assert!(tokenize("p(\"abc").is_err());
        assert!(tokenize("p(\"abc\\").is_err());
        assert!(tokenize(r#"p("bad \q escape")"#).is_err());
    }

    #[test]
    fn lexes_comparison_operators() {
        assert_eq!(
            kinds("X < Y <= 3 > Z >= 0 = W != V"),
            vec![
                TokenKind::UpperIdent("X".into()),
                TokenKind::Lt,
                TokenKind::UpperIdent("Y".into()),
                TokenKind::Le,
                TokenKind::Int(3),
                TokenKind::Gt,
                TokenKind::UpperIdent("Z".into()),
                TokenKind::Ge,
                TokenKind::Int(0),
                TokenKind::EqSign,
                TokenKind::UpperIdent("W".into()),
                TokenKind::Ne,
                TokenKind::UpperIdent("V".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lone_bang_is_rejected() {
        assert!(tokenize("p(X) :- q(X), X ! Y.").is_err());
    }

    #[test]
    fn underscore_starts_a_variable() {
        assert_eq!(kinds("_x")[0], TokenKind::UpperIdent("_x".into()));
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("p(X).\nq(Y).").unwrap();
        let q = toks.iter().find(|t| t.kind == TokenKind::Ident("q".into())).unwrap();
        assert_eq!((q.line, q.column), (2, 1));
    }

    #[test]
    fn error_on_stray_colon() {
        let err = tokenize("p :").unwrap_err();
        assert!(err.to_string().contains("expected `:-`"));
    }

    #[test]
    fn error_on_unknown_character() {
        assert!(tokenize("p(X) ? q(X)").is_err());
    }

    #[test]
    fn lexes_query_arrow() {
        assert_eq!(
            kinds("?- anc(ann, Y)."),
            vec![
                TokenKind::QuestionDash,
                TokenKind::Ident("anc".into()),
                TokenKind::LParen,
                TokenKind::Ident("ann".into()),
                TokenKind::Comma,
                TokenKind::UpperIdent("Y".into()),
                TokenKind::RParen,
                TokenKind::Dot,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn error_on_lone_slash() {
        assert!(tokenize("p / q").is_err());
    }

    #[test]
    fn error_on_lone_minus() {
        assert!(tokenize("p(-)").is_err());
    }

    #[test]
    fn huge_integer_is_rejected() {
        assert!(tokenize("p(99999999999999999999999)").is_err());
    }
}
