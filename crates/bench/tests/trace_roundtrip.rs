//! End-to-end: a traced run's Chrome export must satisfy the CI checker.
//!
//! This is the same path the trace-smoke CI job drives through the
//! binaries (`pdatalog --trace-out` → `trace_check`), exercised
//! in-process: execute a traced run on both transports, export the
//! journal, and hold the export to `check_chrome_trace`'s invariants.

use gst_bench::tracecheck::check_chrome_trace;
use gst_core::prelude::example3_hash_partition;
use gst_frontend::LinearSirup;
use gst_runtime::{FaultPlan, RuntimeConfig};
use gst_workloads::{linear_ancestor, random_digraph};

fn traced_config() -> RuntimeConfig {
    RuntimeConfig {
        trace: true,
        ..RuntimeConfig::default()
    }
}

#[test]
fn threaded_export_passes_the_checker() {
    let fx = linear_ancestor();
    let db = fx.database(&random_digraph(80, 240, 13));
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme.execute(&traced_config()).unwrap();
    let export = outcome.journal.chrome_trace();
    let summary = check_chrome_trace(&export, Some(4), true)
        .expect("threaded export must be checker-clean");
    assert_eq!(summary.workers, 4);
    assert!(summary.spans > 0, "at least one round span per run");
}

#[test]
fn sim_export_under_faults_passes_the_checker() {
    let fx = linear_ancestor();
    let db = fx.database(&random_digraph(80, 240, 13));
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme
        .run_simulated_with(21, FaultPlan::chaos(), &traced_config())
        .unwrap();
    let export = outcome.journal.chrome_trace();
    check_chrome_trace(&export, Some(4), true)
        .expect("faulted sim export must still be checker-clean");
}
