//! Differential tests for the skew-aware partition and the morsel-parallel
//! join executor (ROADMAP item 4).
//!
//! Both features must be invisible in the result. The morsel executor
//! chunks a semi-naive delta and fans the chunks across scoped threads,
//! but merges per-chunk outputs in chunk order before dedup — so models,
//! firings, and round counts must be bit-identical to the sequential path
//! for *every* chunk geometry. The skew-aware partition reroutes hot keys
//! and replicates their complementary fragments (§6 `R_i`), which changes
//! communication but must never change the least model, on any transport.

use gst_core::prelude::{
    decode_constraint, example3_hash_partition, skew_aware_hash_partition, SkewPolicy,
};
use gst_eval::{seminaive_eval, FixpointEngine, MorselConfig};
use gst_frontend::LinearSirup;
use gst_runtime::{
    FaultPlan, InProcessLauncher, NetConfig, NetCoordinator, RuntimeConfig, Transport,
};
use gst_storage::Relation;
use gst_workloads::{chain, linear_ancestor, random_digraph, star, zipf_digraph};
use std::sync::Arc;

/// Seeded workload suite: the skew stressors plus uniform shapes, so a
/// morsel bug that only bites on balanced or on degenerate inputs still
/// surfaces.
fn workloads() -> Vec<(&'static str, Relation)> {
    vec![
        ("zipf", zipf_digraph(300, 240, 30, 42)),
        ("star", star(64)),
        ("chain", chain(48)),
        ("random-7", random_digraph(60, 180, 7)),
        ("random-99", random_digraph(80, 200, 99)),
    ]
}

/// Layer 1 (property test, engine level): for every workload and every
/// morsel geometry — single-row chunks, odd chunks, power-of-two chunks,
/// one whole-delta chunk — the morsel engine computes the same model,
/// the same firing count, and the same round count as the sequential
/// engine. The single-chunk geometry must decline the parallel path
/// (nothing to fan out); the small-chunk geometries must actually take it
/// on the workloads big enough to clear the row floor.
#[test]
fn morsel_chunking_is_bit_identical_to_sequential() {
    let fx = linear_ancestor();
    let anc = fx.output_id();
    for (wname, data) in &workloads() {
        let db = Arc::new(fx.database(data));

        let mut seq = FixpointEngine::new(&fx.program, db.clone(), &[]).unwrap();
        seq.bootstrap().unwrap();
        seq.run_to_fixpoint().unwrap();
        let reference = seq.relation(anc).unwrap().sorted();
        let ref_firings = seq.stats().firings;
        let ref_rounds = seq.stats().rounds;

        let geometries = [
            ("chunk-1", 1usize, 1usize),
            ("chunk-7", 7, 1),
            ("chunk-64", 64, 1),
            ("whole-delta", usize::MAX, 1),
            ("default-floor", 256, 512),
        ];
        for (gname, chunk_rows, min_rows) in geometries {
            for threads in [2usize, 4] {
                let mut eng = FixpointEngine::new(&fx.program, db.clone(), &[]).unwrap();
                eng.set_morsels(MorselConfig {
                    threads,
                    chunk_rows,
                    min_rows,
                });
                eng.bootstrap().unwrap();
                eng.run_to_fixpoint().unwrap();
                let label = format!("{wname}/{gname}/threads={threads}");
                assert_eq!(
                    eng.relation(anc).unwrap().sorted(),
                    reference,
                    "{label}: morsel model differs from sequential"
                );
                assert_eq!(
                    eng.stats().firings, ref_firings,
                    "{label}: morsel firings differ from sequential"
                );
                assert_eq!(
                    eng.stats().rounds, ref_rounds,
                    "{label}: morsel round count differs from sequential"
                );
                if gname == "whole-delta" {
                    assert_eq!(
                        eng.stats().morsel_runs, 0,
                        "{label}: a single whole-delta chunk has nothing to fan out"
                    );
                }
                if gname == "chunk-1" && *wname != "chain" {
                    // Chain deltas are one row per round — legitimately
                    // below the 2-row floor. Everything else must have
                    // exercised the parallel path for real.
                    assert!(
                        eng.stats().morsel_runs > 0,
                        "{label}: morsel path never engaged (vacuous test)"
                    );
                }
            }
        }
    }
}

/// Layer 2 (transports): with `morsel_threads` raised, the inline N=1
/// fast path and the threaded N=4 transport pool exactly the sequential
/// least model and the same processing-firing total as their
/// single-threaded runs — and on the workload whose hot delta clears the
/// default 512-row floor the counters prove the parallel path ran.
#[test]
fn morsel_transport_runs_match_sequential_engine() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let anc = fx.output_id();
    let mut morsel_cfg = RuntimeConfig::default();
    morsel_cfg.worker.morsel_threads = 4;
    let plain_cfg = RuntimeConfig::default();

    for (wname, data) in &workloads() {
        let db = fx.database(data);
        let oracle = seminaive_eval(&fx.program, &db).unwrap();
        let reference = oracle.relation(anc).sorted();
        for n in [1usize, 4] {
            let scheme = example3_hash_partition(&sirup, n, &db).unwrap();
            let plain = scheme.execute(&plain_cfg).unwrap();
            let morsel = scheme.execute(&morsel_cfg).unwrap();
            let label = format!("{wname}/N={n}");
            assert_eq!(
                morsel.relation(anc).sorted(),
                reference,
                "{label}: morsel-threaded model differs from the oracle"
            );
            assert_eq!(
                morsel.stats.total_processing_firings(),
                plain.stats.total_processing_firings(),
                "{label}: morsel threads changed the firing total"
            );
        }
    }

    // Non-vacuity: a hub delta of ~580 rows clears the default 512-row
    // floor on the single worker that owns it (N=1 inline fast path).
    let big = zipf_digraph(1200, 960, 30, 42);
    let db = fx.database(&big);
    let scheme = example3_hash_partition(&sirup, 1, &db).unwrap();
    let outcome = scheme.execute(&morsel_cfg).unwrap();
    let runs: u64 = outcome.stats.workers.iter().map(|w| w.eval.morsel_runs).sum();
    let chunks: u64 = outcome.stats.workers.iter().map(|w| w.eval.morsel_chunks).sum();
    assert!(runs > 0, "zipf-1200/N=1: morsel path never engaged");
    assert!(chunks >= 2 * runs, "zipf-1200/N=1: each morsel run must split >= 2 chunks");
}

/// Layer 3 (skew-aware correctness): the skew-aware partition — hot keys
/// split by the secondary hash, complementary fragments replicated — pins
/// the sequential least model bit-identically on all three transports
/// (threaded, deterministic simulation, TCP loopback), composed with
/// morsel threads, and non-vacuously: the skewed workloads must actually
/// split at least one hot key.
#[test]
fn skew_aware_models_bit_identical_on_all_transports() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let anc = fx.output_id();
    let mut config = RuntimeConfig::default();
    config.worker.morsel_threads = 4;

    for (wname, data) in &workloads() {
        let db = fx.database(data);
        let oracle = seminaive_eval(&fx.program, &db).unwrap();
        let reference = oracle.relation(anc).sorted();
        for n in [2usize, 4] {
            let scheme = skew_aware_hash_partition(&sirup, n, &db, &SkewPolicy::default()).unwrap();
            if matches!(*wname, "zipf" | "star") {
                assert!(
                    scheme.hot_keys_split >= 1,
                    "{wname}/N={n}: skewed workload split no hot key (vacuous test)"
                );
            }

            let threaded = scheme.execute(&config).unwrap();
            assert_eq!(
                threaded.relation(anc).sorted(),
                reference,
                "{wname}/N={n}: threaded skew-aware model differs from the oracle"
            );

            let sim = scheme
                .run_simulated_with(42, FaultPlan::default(), &config)
                .unwrap();
            assert_eq!(
                sim.relation(anc).sorted(),
                reference,
                "{wname}/N={n}: simulated skew-aware model differs from the oracle"
            );

            let net = NetCoordinator::new(
                Arc::new(InProcessLauncher {
                    decoder: Some(decode_constraint),
                }),
                NetConfig::default(),
            );
            let net_outcome = net.execute(scheme.workers.clone(), &config).unwrap();
            assert_eq!(
                net_outcome.relation(anc).sorted(),
                reference,
                "{wname}/N={n}: tcp-loopback skew-aware model differs from the oracle"
            );
        }
    }
}
