//! One function per reproduced artifact. See DESIGN.md §4 for the index
//! and EXPERIMENTS.md for recorded paper-vs-measured outcomes.

use std::sync::Arc;
use std::time::Instant;

use gst_core::dataflow::{zero_comm_choice, DataflowGraph};
use gst_core::discriminator::{
    BitFn, BitVector, Constant, DiscriminatorRef, HashMod, Linear, Mixed,
};
use gst_core::network::derive_network;
use gst_core::prelude::{
    choose, example1_wolfson, example2_valduriez, example3_hash_partition, rewrite_general,
    rewrite_generalized, rewrite_no_comm, skew_aware_hash_partition, CostModel,
    GeneralizedConfig, NoCommConfig, RuleChoice, SchemeProfile, SkewPolicy,
};
use gst_core::schemes::{BaseDistribution, CompiledScheme};
use gst_eval::seminaive_eval;
use gst_frontend::{LinearSirup, Program, Variable};
use gst_runtime::{ExecutionOutcome, FaultPlan, RuntimeConfig};
use gst_storage::{round_robin_fragment, Relation};
use gst_workloads::{
    chain, chain_sirup, even_odd, example6_sirup, grid, layered, linear_ancestor,
    nonlinear_ancestor, random_digraph,
};

fn var(p: &Program, name: &str) -> Variable {
    Variable(p.interner.get(name).unwrap())
}

/// A rendered figure plus whether it matches the paper's drawing.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// Figure title.
    pub title: String,
    /// Rendered body (multi-line).
    pub body: String,
    /// Whether the computed artifact equals the paper's.
    pub matches_paper: bool,
}

/// **F1 — Figure 1**: the dataflow graph of `p(U,V,W) :- p(V,W,Z), q(U,Z)`
/// must be the chain `1 → 2 → 3`.
pub fn figure1() -> FigureResult {
    let fx = chain_sirup();
    let s = LinearSirup::from_program(&fx.program).unwrap();
    let g = DataflowGraph::of(&s);
    FigureResult {
        title: "Figure 1 — dataflow graph of p(U,V,W) :- p(V,W,Z), q(U,Z)".into(),
        matches_paper: g.display() == "1 → 2 → 3",
        body: g.display(),
    }
}

/// **F2 — Figure 2 / Example 5**: ancestor's dataflow graph is a cycle
/// (self-loop on position 2), so Theorem 3 yields `v(r) = ⟨Y⟩` and a
/// communication-free execution.
pub fn figure2() -> FigureResult {
    let fx = linear_ancestor();
    let s = LinearSirup::from_program(&fx.program).unwrap();
    let g = DataflowGraph::of(&s);
    let choice = zero_comm_choice(&s).unwrap();
    let v_r_name = choice.v_r[0].name(&fx.program.interner);
    let body = format!(
        "{}   (cycle on position 2)\nTheorem 3 choice: v(r) = v(e) = ⟨{}⟩",
        g.display(),
        v_r_name
    );
    FigureResult {
        title: "Figure 2 — dataflow graph of anc(X,Y) :- par(X,Z), anc(Z,Y)".into(),
        matches_paper: g.has_cycle() && v_r_name == "Y",
        body,
    }
}

/// **F3 — Figure 3 / Example 6**: the minimal network for
/// `p(X,Y) :- p(Y,Z), r(X,Z)` under `h(a,b) = (g(a),g(b))`. The paper
/// derives: no channel `(00)→(01)` or `(00)→(11)`, but `(00)→(10)`
/// exists; symmetry gives the rest.
pub fn figure3() -> FigureResult {
    let fx = example6_sirup();
    let s = LinearSirup::from_program(&fx.program).unwrap();
    let h = BitVector::new(BitFn::new(1), 2);
    let net = derive_network(
        &s,
        &[var(&fx.program, "Y"), var(&fx.program, "Z")],
        &[var(&fx.program, "X"), var(&fx.program, "Y")],
        &h,
    )
    .unwrap();
    let expect: std::collections::BTreeSet<(usize, usize)> =
        [(0, 2), (1, 0), (1, 2), (2, 1), (2, 3), (3, 1)].into_iter().collect();
    FigureResult {
        title: "Figure 3 — minimal network of Example 6, h(a,b) = (g(a), g(b))".into(),
        matches_paper: net.edges == expect,
        body: net.display(),
    }
}

/// **F4 — Figure 4 / Example 7**: the minimal network of the chain sirup
/// under the linear function `h = g(a₁) − g(a₂) + g(a₃)` over
/// `P = {−1,0,1,2}`, derived by solving the paper's equations (4)–(5)
/// over `{0,1}⁴`.
pub fn figure4() -> FigureResult {
    let fx = chain_sirup();
    let s = LinearSirup::from_program(&fx.program).unwrap();
    let h = Linear::new(BitFn::new(1), vec![1, -1, 1]);
    let net = derive_network(
        &s,
        &[var(&fx.program, "V"), var(&fx.program, "W"), var(&fx.program, "Z")],
        &[var(&fx.program, "U"), var(&fx.program, "V"), var(&fx.program, "W")],
        &h,
    )
    .unwrap();
    // Independent re-derivation of the expected edge set from the
    // equations x1−x2+x3 = v, x2−x3+x4 = u.
    let mut expect = std::collections::BTreeSet::new();
    let idx = |v: i64| (v + 1) as usize; // values −1,0,1,2 → 0..3
    for bits in 0..16u32 {
        let x = |k: u32| ((bits >> k) & 1) as i64;
        let v = x(0) - x(1) + x(2);
        let u = x(1) - x(2) + x(3);
        if u != v {
            expect.insert((idx(u), idx(v)));
        }
    }
    FigureResult {
        title: "Figure 4 — minimal network of Example 7, h = g(a1)−g(a2)+g(a3), \
                P = {−1,0,1,2}"
            .into(),
        matches_paper: net.edges == expect,
        body: net.display(),
    }
}

/// One row of the scheme-comparison experiment (E1/E2/E3).
#[derive(Debug, Clone)]
pub struct SchemeRow {
    /// Scheme label.
    pub scheme: String,
    /// Tuples crossing distinct-processor channels.
    pub comm_tuples: u64,
    /// Data messages (batches).
    pub messages: u64,
    /// Processing-rule firings across workers.
    pub firings: u64,
    /// Base tuples stored across workers.
    pub base_tuples: u64,
    /// Result equals the sequential least model.
    pub correct: bool,
}

/// Context + rows of the §4 comparison.
#[derive(Debug, Clone)]
pub struct SchemeComparison {
    /// Human description of the workload.
    pub workload: String,
    /// Sequential baseline firings.
    pub sequential_firings: u64,
    /// One row per example algorithm, in paper order 1, 3, 2.
    pub rows: Vec<SchemeRow>,
}

/// **E1/E2/E3 — §4**: run the three derived algorithms on one workload
/// and measure communication, redundancy and storage.
pub fn compare_examples(nodes: u64, edges: u64, n: usize, seed: u64) -> SchemeComparison {
    let fx = linear_ancestor();
    let data = random_digraph(nodes, edges, seed);
    let db = fx.database(&data);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let anc = fx.output_id();

    let run = |scheme: &CompiledScheme| -> SchemeRow {
        let outcome = scheme.run().unwrap();
        SchemeRow {
            scheme: scheme.kind.to_string(),
            comm_tuples: outcome.stats.total_tuples_sent(),
            messages: outcome.stats.total_messages(),
            firings: outcome.stats.total_processing_firings(),
            base_tuples: scheme.workers.iter().map(|w| w.edb.total_tuples() as u64).sum(),
            correct: outcome.relation(anc).set_eq(&seq.relation(anc)),
        }
    };

    let e1 = example1_wolfson(&sirup, n, &db).unwrap();
    let e3 = example3_hash_partition(&sirup, n, &db).unwrap();
    let frag = round_robin_fragment(&data, n).unwrap();
    let e2 = example2_valduriez(&sirup, frag, &db).unwrap();

    SchemeComparison {
        workload: format!(
            "random digraph: {nodes} nodes, {} edges, |anc| = {}, {n} processors, seed {seed}",
            data.len(),
            seq.relation(anc).len()
        ),
        sequential_firings: seq.stats.firings,
        rows: vec![run(&e1), run(&e3), run(&e2)],
    }
}

/// One seed of the crash-recovery experiment.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Simulation seed.
    pub seed: u64,
    /// Which worker the fault plan crashed.
    pub crashed_worker: usize,
    /// Supervisor restarts performed (1 expected).
    pub restarts: u64,
    /// Replay-log retransmissions during recovery.
    pub replayed_batches: u64,
    /// Stale pre-epoch deliveries discarded (including stale tokens).
    pub stale_dropped: u64,
    /// Least model identical to the fault-free sequential oracle.
    pub correct: bool,
}

/// **R1 — crash recovery**: under a chaotic network plus one recoverable
/// mid-run crash per seed, the supervised runtime must restart the dead
/// worker, replay its lost traffic, repair the termination-detection
/// ring, and still compute the exact sequential least model (DESIGN.md
/// §7's end-to-end claim).
pub fn recovery_experiment(nodes: u64, edges: u64, n: usize, seeds: std::ops::Range<u64>) -> Vec<RecoveryRow> {
    let fx = linear_ancestor();
    let data = random_digraph(nodes, edges, 42);
    let db = fx.database(&data);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let anc = fx.output_id();
    let scheme = example3_hash_partition(&sirup, n, &db).unwrap();

    seeds
        .map(|seed| {
            let worker = (seed as usize) % n;
            let plan = FaultPlan {
                crash: Some(gst_runtime::CrashSpec {
                    worker,
                    at_time: 40 + (seed % 60),
                    recover: true,
                }),
                ..FaultPlan::chaos()
            };
            let outcome = scheme
                .run_simulated(seed, plan)
                .expect("recoverable crash must not fail the run");
            RecoveryRow {
                seed,
                crashed_worker: worker,
                restarts: outcome.stats.restarts,
                replayed_batches: outcome.stats.total_replayed_batches(),
                stale_dropped: outcome.stats.total_stale_dropped(),
                correct: outcome.relation(anc).set_eq(&seq.relation(anc)),
            }
        })
        .collect()
}

/// One point of the §6 trade-off sweep.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Keep-local probability.
    pub alpha: f64,
    /// Tuples sent between distinct processors.
    pub comm_tuples: u64,
    /// Processing firings across workers.
    pub firings: u64,
    /// Firings beyond the sequential count.
    pub redundancy: u64,
    /// Result correctness.
    pub correct: bool,
}

/// **S1 — §6**: sweep the keep-local probability α of the generalized
/// scheme from the non-redundant extreme (α=0) to the zero-communication
/// extreme (α=1).
pub fn tradeoff_sweep(rows: u64, cols: u64, n: usize, alphas: &[f64]) -> Vec<TradeoffPoint> {
    let fx = linear_ancestor();
    let data = grid(rows, cols);
    let db = fx.database(&data);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let anc = fx.output_id();
    let base_h: DiscriminatorRef = Arc::new(HashMod::new(n, 23));

    alphas
        .iter()
        .map(|&alpha| {
            let h_locals: Vec<DiscriminatorRef> = (0..n)
                .map(|i| Arc::new(Mixed::new(i, base_h.clone(), alpha, 31)) as DiscriminatorRef)
                .collect();
            let cfg = GeneralizedConfig {
                v_r: vec![var(&fx.program, "Z")],
                v_e: vec![var(&fx.program, "X")],
                h_prime: base_h.clone(),
                h_locals,
            };
            let outcome = rewrite_generalized(&sirup, &cfg, &db).unwrap().run().unwrap();
            let firings = outcome.stats.total_processing_firings();
            TradeoffPoint {
                alpha,
                comm_tuples: outcome.stats.total_tuples_sent(),
                firings,
                redundancy: firings.saturating_sub(seq.stats.firings),
                correct: outcome.relation(anc).set_eq(&seq.relation(anc)),
            }
        })
        .collect()
}

/// One row of the non-redundancy table (T2).
#[derive(Debug, Clone)]
pub struct NonRedundancyRow {
    /// Program name.
    pub program: String,
    /// Dataset name.
    pub dataset: String,
    /// Processors.
    pub n: usize,
    /// Sequential semi-naive firings.
    pub sequential: u64,
    /// Parallel processing firings (summed).
    pub parallel: u64,
    /// `parallel ≤ sequential`.
    pub holds: bool,
}

/// **T2 — Theorems 2 and 6**: firing counts, parallel vs sequential,
/// across programs × datasets × processor counts.
pub fn nonredundancy_table() -> Vec<NonRedundancyRow> {
    let mut rows = Vec::new();
    let datasets: Vec<(&str, Relation)> = vec![
        ("chain-30", chain(30)),
        ("grid-6x6", grid(6, 6)),
        ("layered", layered(5, 5, 2, 7)),
        ("random", random_digraph(25, 60, 3)),
    ];

    // Linear ancestor through Q_i (Example 3 choice).
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    for (name, data) in &datasets {
        let db = fx.database(data);
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        for n in [2usize, 4, 8] {
            let outcome = example3_hash_partition(&sirup, n, &db).unwrap().run().unwrap();
            let parallel = outcome.stats.total_processing_firings();
            rows.push(NonRedundancyRow {
                program: "linear ancestor (§3 Q_i)".into(),
                dataset: (*name).into(),
                n,
                sequential: seq.stats.firings,
                parallel,
                holds: parallel <= seq.stats.firings,
            });
        }
    }

    // Non-linear ancestor through T_i (Example 8 choices).
    let fx = nonlinear_ancestor();
    for (name, data) in &datasets {
        let db = fx.database(data);
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        for n in [2usize, 4] {
            let h: DiscriminatorRef = Arc::new(HashMod::new(n, 13));
            let choices = vec![
                RuleChoice {
                    v: vec![var(&fx.program, "Y")],
                    h: h.clone(),
                },
                RuleChoice {
                    v: vec![var(&fx.program, "Z")],
                    h,
                },
            ];
            let outcome = rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared)
                .unwrap()
                .run()
                .unwrap();
            let parallel = outcome.stats.total_processing_firings();
            rows.push(NonRedundancyRow {
                program: "non-linear ancestor (§7 T_i)".into(),
                dataset: (*name).into(),
                n,
                sequential: seq.stats.firings,
                parallel,
                holds: parallel <= seq.stats.firings,
            });
        }
    }
    rows
}

/// One row of the S2 general-scheme experiment.
#[derive(Debug, Clone)]
pub struct GeneralRow {
    /// Program name.
    pub program: String,
    /// Output sizes per derived predicate.
    pub output_sizes: Vec<(String, usize)>,
    /// Tuples sent.
    pub comm_tuples: u64,
    /// Correct vs sequential.
    pub correct: bool,
    /// Theorem 6 holds.
    pub non_redundant: bool,
}

/// **S2 — §7**: the general scheme on Example 8 (non-linear ancestor) and
/// mutually recursive even/odd.
pub fn general_scheme_experiments(n: usize) -> Vec<GeneralRow> {
    let mut rows = Vec::new();

    // Example 8.
    let fx = nonlinear_ancestor();
    let db = fx.database(&random_digraph(30, 70, 17));
    let h: DiscriminatorRef = Arc::new(HashMod::new(n, 13));
    let choices = vec![
        RuleChoice {
            v: vec![var(&fx.program, "Y")],
            h: h.clone(),
        },
        RuleChoice {
            v: vec![var(&fx.program, "Z")],
            h: h.clone(),
        },
    ];
    let outcome = rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared)
        .unwrap()
        .run()
        .unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let anc = fx.output_id();
    rows.push(GeneralRow {
        program: "Example 8: non-linear ancestor".into(),
        output_sizes: vec![("anc".into(), outcome.relation(anc).len())],
        comm_tuples: outcome.stats.total_tuples_sent(),
        correct: outcome.relation(anc).set_eq(&seq.relation(anc)),
        non_redundant: outcome.stats.total_processing_firings() <= seq.stats.firings,
    });

    // Even/odd mutual recursion.
    let fx = even_odd();
    let succ: Relation = (0..40i64).map(|k| gst_common::ituple![k, k + 1]).collect();
    let zero: Relation = [gst_common::ituple![0]].into_iter().collect();
    let db = fx.database_multi(&[zero, succ]);
    let h: DiscriminatorRef = Arc::new(HashMod::new(n, 29));
    let choices: Vec<RuleChoice> = [
        vec![var(&fx.program, "X")],
        vec![var(&fx.program, "Y")],
        vec![var(&fx.program, "Y")],
    ]
    .into_iter()
    .map(|v| RuleChoice { v, h: h.clone() })
    .collect();
    let outcome = rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared)
        .unwrap()
        .run()
        .unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let even = fx.output_id();
    let odd = (fx.program.interner.get("odd").unwrap(), 1);
    rows.push(GeneralRow {
        program: "mutual recursion: even/odd".into(),
        output_sizes: vec![
            ("even".into(), outcome.relation(even).len()),
            ("odd".into(), outcome.relation(odd).len()),
        ],
        comm_tuples: outcome.stats.total_tuples_sent(),
        correct: outcome.relation(even).set_eq(&seq.relation(even))
            && outcome.relation(odd).set_eq(&seq.relation(odd)),
        non_redundant: outcome.stats.total_processing_firings() <= seq.stats.firings,
    });
    rows
}

/// One row of the speedup experiment.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Worker count.
    pub n: usize,
    /// Real multi-threaded wall time, milliseconds (limited by the
    /// machine's physical cores).
    pub wall_ms: f64,
    /// Modeled wall time on an ideal `n`-processor machine: the workers
    /// of a communication-free scheme are fully independent, so each is
    /// timed in isolation and the model wall is their maximum.
    pub simulated_ms: f64,
    /// Sequential time / simulated wall (the paper's load-sharing claim).
    pub simulated_speedup: f64,
    /// Load balance: max worker time / mean worker time (1.0 = perfect).
    pub balance: f64,
}

/// **P1**: scaling of the zero-communication scheme on a wide layered
/// workload. Returns `(sequential_ms, available_cores, rows)`.
///
/// The paper assumes a multiprocessor; on machines with fewer cores than
/// workers, real wall-clock cannot speed up, so the experiment *also*
/// simulates the idealized architecture: Example 1's workers share no
/// data and exchange no messages, so running each worker's engine alone
/// and taking the slowest is exactly the parallel makespan (documented in
/// DESIGN.md as a hardware substitution). Meaningful numbers need
/// `--release`.
pub fn speedup_curve(
    layers: u64,
    width: u64,
    fanout: u64,
    ns: &[usize],
) -> (f64, usize, Vec<SpeedupRow>) {
    let fx = linear_ancestor();
    let data = layered(layers, width, fanout, 99);
    let db = fx.database(&data);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();

    let t0 = Instant::now();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;
    let anc = fx.output_id();
    let reference = seq.relation(anc);

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut config = RuntimeConfig::default();
    config.worker.pool_results = false; // pooling measured separately (§3 step 5)

    let rows = ns
        .iter()
        .map(|&n| {
            let scheme = example1_wolfson(&sirup, n, &db).unwrap();

            // Real threads (bounded by physical cores).
            let t0 = Instant::now();
            let outcome = scheme.execute(&config).unwrap();
            let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert!(outcome.stats.communication_free());

            // Ideal machine: time each independent worker in isolation.
            let mut worker_ms = Vec::with_capacity(n);
            let mut check = gst_storage::Relation::new(anc.1);
            for w in &scheme.workers {
                let t0 = Instant::now();
                let mut engine = gst_eval::FixpointEngine::new(
                    &w.program.program,
                    w.edb.clone(),
                    &w.program.extra_idb(),
                )
                .unwrap();
                engine.run_to_fixpoint().unwrap();
                worker_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                for (local, _global) in &w.program.pooling {
                    check
                        .absorb(engine.relation(*local).expect("pooled relation"))
                        .unwrap();
                }
            }
            assert!(check.set_eq(&reference), "simulated run must be correct");
            let simulated_ms = worker_ms.iter().cloned().fold(0.0f64, f64::max);
            let mean = worker_ms.iter().sum::<f64>() / n as f64;
            SpeedupRow {
                n,
                wall_ms,
                simulated_ms,
                simulated_speedup: seq_ms / simulated_ms,
                balance: simulated_ms / mean,
            }
        })
        .collect();
    (seq_ms, cores, rows)
}

/// **P2 — §8**: profile the candidate schemes once, then show which one a
/// cost-model compiler picks as the architecture's communication and
/// storage costs vary. Returns `(profiles, decisions)`.
pub fn strategy_decisions() -> (Vec<SchemeProfile>, Vec<(f64, f64, String)>) {
    let fx = linear_ancestor();
    let data = random_digraph(40, 100, 21);
    let db = fx.database(&data);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();

    let profile = |name: &str, scheme: &CompiledScheme, outcome: &ExecutionOutcome| {
        SchemeProfile::from_run(name, scheme, outcome)
    };
    let e1 = example1_wolfson(&sirup, 4, &db).unwrap();
    let o1 = e1.run().unwrap();
    let e3 = example3_hash_partition(&sirup, 4, &db).unwrap();
    let o3 = e3.run().unwrap();
    let frag = round_robin_fragment(&data, 4).unwrap();
    let e2 = example2_valduriez(&sirup, frag, &db).unwrap();
    let o2 = e2.run().unwrap();
    // The no-comm redundant scheme as a fourth candidate.
    let cfg = NoCommConfig {
        v_e: vec![var(&fx.program, "X")],
        h_prime: Arc::new(HashMod::new(4, 11)),
    };
    let nc = rewrite_no_comm(&sirup, &cfg, &db).unwrap();
    let onc = nc.run().unwrap();

    let profiles = vec![
        profile("example1 (zero-comm)", &e1, &o1),
        profile("example3 (hash p2p)", &e3, &o3),
        profile("example2 (broadcast)", &e2, &o2),
        profile("no-comm redundant", &nc, &onc),
    ];

    let mut decisions = Vec::new();
    for &(comm, storage) in &[
        (0.01, 0.0),
        (0.01, 10.0),
        (1.0, 10.0),
        (100.0, 10.0),
        (100.0, 0.0),
    ] {
        let model = CostModel::with_comm_ratio(comm).with_storage_cost(storage);
        let best = choose(&profiles, &model).unwrap();
        decisions.push((comm, storage, best.name.clone()));
    }
    (profiles, decisions)
}

/// One row of the load-balance experiment.
#[derive(Debug, Clone)]
pub struct LoadBalanceRow {
    /// Scheme + workload label.
    pub label: String,
    /// Processing firings per worker.
    pub per_worker: Vec<u64>,
    /// Skew: max worker firings / mean worker firings (1.0 = perfect).
    pub skew: f64,
    /// Wire bytes shipped per worker (sum over its outgoing links).
    pub bytes_per_worker: Vec<u64>,
    /// Skew of bytes shipped: max / mean (1.0 = perfect; 0.0 when the
    /// scheme ships nothing — Example 1 and no-comm).
    pub bytes_skew: f64,
}

/// **L1 — §8 future work**: load balancing and processor utilization.
/// The paper defers these "detailed performance studies"; this experiment
/// measures how evenly the discriminating functions spread work, and how
/// badly a degenerate choice can skew it (a star graph discriminated on
/// its hub sends *all* work to one processor).
pub fn load_balance(n: usize) -> Vec<LoadBalanceRow> {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let mut rows = Vec::new();

    let mut push = |label: String, outcome: &ExecutionOutcome| {
        let per_worker: Vec<u64> = outcome
            .stats
            .workers
            .iter()
            .map(|w| w.processing_firings)
            .collect();
        let max = *per_worker.iter().max().unwrap() as f64;
        let mean = per_worker.iter().sum::<u64>() as f64 / per_worker.len() as f64;
        let bytes_per_worker: Vec<u64> = outcome
            .stats
            .workers
            .iter()
            .map(|w| w.sent_bytes_to.iter().sum())
            .collect();
        let bmax = *bytes_per_worker.iter().max().unwrap() as f64;
        let bmean =
            bytes_per_worker.iter().sum::<u64>() as f64 / bytes_per_worker.len() as f64;
        rows.push(LoadBalanceRow {
            label,
            skew: if mean > 0.0 { max / mean } else { 1.0 },
            per_worker,
            bytes_skew: if bmean > 0.0 { bmax / bmean } else { 0.0 },
            bytes_per_worker,
        });
    };

    for (wname, data) in [
        ("grid-8x8", grid(8, 8)),
        ("star-64", gst_workloads::star(64)),
        ("zipf-300", gst_workloads::zipf_digraph(300, 240, 30, 42)),
        ("chain-64", chain(64)),
    ] {
        let db = fx.database(&data);
        let e1 = example1_wolfson(&sirup, n, &db).unwrap().run().unwrap();
        push(format!("example1 / {wname}"), &e1);
        let e3 = example3_hash_partition(&sirup, n, &db).unwrap().run().unwrap();
        push(format!("example3 / {wname}"), &e3);
        let sk = skew_aware_hash_partition(&sirup, n, &db, &SkewPolicy::default())
            .unwrap()
            .run()
            .unwrap();
        push(format!("skew-aware / {wname}"), &sk);
        // Degenerate: split the exit substitutions on X — on a star every
        // edge shares the hub as X, so one processor gets everything.
        let cfg = NoCommConfig {
            v_e: vec![var(&fx.program, "X")],
            h_prime: Arc::new(HashMod::new(n, 11)),
        };
        let nc = rewrite_no_comm(&sirup, &cfg, &db).unwrap().run().unwrap();
        push(format!("nocomm(v_e=X) / {wname}"), &nc);
    }
    rows
}

/// One row of the communication-scaling experiment (E5).
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Number of edges in the input.
    pub edges: u64,
    /// Size of the computed closure.
    pub closure: u64,
    /// Tuples sent by Example 1 / Example 3 / Example 2.
    pub comm: (u64, u64, u64),
}

/// **E5**: how communication grows with the answer. The paper's
/// qualitative orders (Ex1 = 0; Ex3 routes each tuple at most once per
/// hop; Ex2 broadcasts) become growth curves: Ex3 stays ≈ proportional
/// to the closure, Ex2 ≈ (n−1)× larger.
pub fn communication_scaling(n: usize, sizes: &[u64]) -> Vec<ScalingRow> {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    sizes
        .iter()
        .map(|&nodes| {
            let data = random_digraph(nodes, nodes * 5 / 2, 7 + nodes);
            let db = fx.database(&data);
            let seq = seminaive_eval(&fx.program, &db).unwrap();
            let closure = seq.relation(fx.output_id()).len() as u64;
            let c1 = example1_wolfson(&sirup, n, &db)
                .unwrap()
                .run_synchronous()
                .unwrap()
                .stats
                .total_tuples_sent();
            let c3 = example3_hash_partition(&sirup, n, &db)
                .unwrap()
                .run_synchronous()
                .unwrap()
                .stats
                .total_tuples_sent();
            let c2 = example2_valduriez(
                &sirup,
                round_robin_fragment(&data, n).unwrap(),
                &db,
            )
            .unwrap()
            .run_synchronous()
            .unwrap()
            .stats
            .total_tuples_sent();
            ScalingRow {
                edges: data.len() as u64,
                closure,
                comm: (c1, c3, c2),
            }
        })
        .collect()
}

/// One row of the machine-model simulation (P3).
#[derive(Debug, Clone)]
pub struct SimulatedRow {
    /// Scheme label.
    pub scheme: String,
    /// Worker count.
    pub n: usize,
    /// Predicted wall µs per machine model: (shared-memory, LAN, WAN).
    pub predicted_us: (f64, f64, f64),
}

/// **P3 — §8, quantified**: replay deterministic round traces of the
/// three §4 schemes under three machine models (shared memory, LAN
/// cluster, WAN). The winner flips with the architecture — the paper's
/// closing claim, in predicted microseconds.
pub fn simulate_architectures(nodes: u64, edges: u64, seed: u64, ns: &[usize]) -> Vec<SimulatedRow> {
    use gst_runtime::{execute_synchronous_traced, simulate_bsp, MachineModel};

    let fx = linear_ancestor();
    let data = random_digraph(nodes, edges, seed);
    let db = fx.database(&data);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();

    let mut rows = Vec::new();
    for &n in ns {
        let schemes: Vec<(&str, CompiledScheme)> = vec![
            ("example1 (zero-comm)", example1_wolfson(&sirup, n, &db).unwrap()),
            (
                "example3 (hash p2p)",
                example3_hash_partition(&sirup, n, &db).unwrap(),
            ),
            (
                "example2 (broadcast)",
                example2_valduriez(&sirup, round_robin_fragment(&data, n).unwrap(), &db)
                    .unwrap(),
            ),
        ];
        for (name, scheme) in schemes {
            let (_, trace) = execute_synchronous_traced(&scheme.workers).unwrap();
            rows.push(SimulatedRow {
                scheme: name.into(),
                n,
                predicted_us: (
                    simulate_bsp(&trace, &MachineModel::shared_memory()),
                    simulate_bsp(&trace, &MachineModel::lan_cluster()),
                    simulate_bsp(&trace, &MachineModel::wan()),
                ),
            });
        }
    }
    rows
}

/// Degenerate-config §6 check used by the harness: with `h_i ≡ i` the
/// generalized scheme measures exactly zero communication.
pub fn generalized_constant_is_communication_free(n: usize) -> bool {
    let fx = linear_ancestor();
    let db = fx.database(&random_digraph(20, 40, 4));
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let h_locals: Vec<DiscriminatorRef> = (0..n)
        .map(|i| Arc::new(Constant::new(n, i)) as DiscriminatorRef)
        .collect();
    let cfg = GeneralizedConfig {
        v_r: vec![var(&fx.program, "Z")],
        v_e: vec![var(&fx.program, "X")],
        h_prime: Arc::new(HashMod::new(n, 17)),
        h_locals,
    };
    let outcome = rewrite_generalized(&sirup, &cfg, &db).unwrap().run().unwrap();
    outcome.stats.communication_free()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figures_match_the_paper() {
        assert!(figure1().matches_paper, "{}", figure1().body);
        assert!(figure2().matches_paper, "{}", figure2().body);
        assert!(figure3().matches_paper, "{}", figure3().body);
        assert!(figure4().matches_paper, "{}", figure4().body);
    }

    #[test]
    fn scheme_comparison_reproduces_the_ordering() {
        let cmp = compare_examples(30, 70, 4, 5);
        assert_eq!(cmp.rows.len(), 3);
        assert!(cmp.rows.iter().all(|r| r.correct));
        // Paper order in rows: Example 1, Example 3, Example 2.
        assert_eq!(cmp.rows[0].comm_tuples, 0);
        assert!(cmp.rows[1].comm_tuples <= cmp.rows[2].comm_tuples);
        // Non-redundancy everywhere.
        assert!(cmp.rows.iter().all(|r| r.firings <= cmp.sequential_firings));
        // Storage: Ex1 = n·|base| ≥ Ex3 ≥ Ex2 = |base|.
        assert!(cmp.rows[0].base_tuples >= cmp.rows[1].base_tuples);
        assert!(cmp.rows[1].base_tuples >= cmp.rows[2].base_tuples);
    }

    #[test]
    fn tradeoff_endpoints_are_the_two_schemes() {
        let pts = tradeoff_sweep(5, 5, 4, &[0.0, 1.0]);
        assert!(pts.iter().all(|p| p.correct));
        assert_eq!(pts[0].redundancy, 0, "α=0 is non-redundant");
        assert_eq!(pts[1].comm_tuples, 0, "α=1 is communication-free");
        assert!(pts[0].comm_tuples > 0);
    }

    #[test]
    fn nonredundancy_rows_all_hold() {
        let rows = nonredundancy_table();
        assert!(rows.len() >= 16);
        assert!(rows.iter().all(|r| r.holds), "{rows:#?}");
    }

    #[test]
    fn general_scheme_rows_hold() {
        let rows = general_scheme_experiments(3);
        assert!(rows.iter().all(|r| r.correct && r.non_redundant));
    }

    #[test]
    fn constant_generalized_scheme_is_comm_free() {
        assert!(generalized_constant_is_communication_free(3));
    }

    #[test]
    fn strategy_decisions_vary_with_architecture() {
        let (profiles, decisions) = strategy_decisions();
        assert_eq!(profiles.len(), 4);
        let distinct: std::collections::HashSet<&str> =
            decisions.iter().map(|(_, _, name)| name.as_str()).collect();
        assert!(
            distinct.len() >= 2,
            "different architectures should pick different schemes: {decisions:?}"
        );
    }

    #[test]
    fn communication_scaling_preserves_the_ordering() {
        let rows = communication_scaling(4, &[20, 40]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.comm.0, 0, "Example 1 never communicates");
            assert!(r.comm.1 <= r.comm.2, "Ex3 ≤ Ex2 at every size: {r:?}");
        }
        // Communication grows with the closure.
        assert!(rows[1].closure > rows[0].closure);
        assert!(rows[1].comm.2 > rows[0].comm.2);
    }

    #[test]
    fn simulated_architectures_flip_the_winner() {
        let rows = simulate_architectures(40, 100, 21, &[4]);
        assert_eq!(rows.len(), 3);
        let best_by = |pick: fn(&SimulatedRow) -> f64| -> &str {
            rows.iter()
                .min_by(|a, b| pick(a).partial_cmp(&pick(b)).unwrap())
                .map(|r| r.scheme.as_str())
                .unwrap()
        };
        // WAN latency punishes chatter: the zero-communication scheme
        // must win there.
        assert_eq!(best_by(|r| r.predicted_us.2), "example1 (zero-comm)");
        // Broadcast must never beat point-to-point on bandwidth-priced
        // networks.
        let lan = |name: &str| {
            rows.iter()
                .find(|r| r.scheme == name)
                .unwrap()
                .predicted_us
                .1
        };
        assert!(lan("example3 (hash p2p)") <= lan("example2 (broadcast)"));
    }

    #[test]
    fn load_balance_detects_star_skew() {
        let rows = load_balance(4);
        assert_eq!(rows.len(), 16);
        let star_nocomm = rows
            .iter()
            .find(|r| r.label == "nocomm(v_e=X) / star-64")
            .unwrap();
        // All 64 edges share hub 0 as X: one processor owns everything.
        assert!(
            star_nocomm.skew > 3.9,
            "expected total skew on the star hub: {star_nocomm:?}"
        );
        let star_e1 = rows.iter().find(|r| r.label == "example1 / star-64").unwrap();
        assert!(
            star_e1.skew < star_nocomm.skew,
            "discriminating on Y must spread the star's leaves"
        );
    }

    #[test]
    fn skew_aware_beats_plain_hash_on_skewed_workloads() {
        let rows = load_balance(4);
        for wname in ["star-64", "zipf-300"] {
            let plain = rows
                .iter()
                .find(|r| r.label == format!("example3 / {wname}"))
                .unwrap();
            let skewed = rows
                .iter()
                .find(|r| r.label == format!("skew-aware / {wname}"))
                .unwrap();
            assert!(
                skewed.skew < plain.skew,
                "{wname}: skew-aware {:.3} must beat HashMod {:.3}",
                skewed.skew,
                plain.skew
            );
        }
        // Bytes-skew is populated for the communicating schemes.
        assert!(rows
            .iter()
            .filter(|r| r.label.starts_with("example3"))
            .all(|r| r.bytes_per_worker.len() == 4));
    }

    #[test]
    fn speedup_runs_and_is_correct() {
        // Small instance: we assert execution and shape, not timing.
        let (_seq_ms, cores, rows) = speedup_curve(3, 6, 2, &[1, 2]);
        assert!(cores >= 1);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.wall_ms > 0.0 && r.simulated_ms > 0.0));
        assert!(rows.iter().all(|r| r.balance >= 1.0));
    }
}
