//! String interning.
//!
//! Datalog constants and predicate names repeat enormously (a million-edge
//! `par` relation mentions `par` once per fact in source form). The
//! interner maps each distinct string to a dense [`SymbolId`] so that the
//! rest of the system moves 4-byte ids instead of heap strings, and
//! equality/hashing of values is integer-sized.
//!
//! The interner is shared: the parser, the workload generators and all
//! worker threads of a parallel run must agree on the id of a symbol, so an
//! [`Interner`] is cheaply cloneable (an `Arc` internally) and
//! thread-safe. Reads vastly outnumber writes after load, hence the
//! `RwLock`.

use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::fxhash::FxHashMap;

/// A dense identifier for an interned string.
///
/// Ordering of ids follows interning order, which is deterministic for a
/// deterministic input sequence; do not rely on it for anything semantic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[derive(Default)]
struct Inner {
    map: FxHashMap<Arc<str>, SymbolId>,
    strings: Vec<Arc<str>>,
}

/// A thread-safe, cheaply cloneable string interner.
#[derive(Clone, Default)]
pub struct Interner {
    inner: Arc<RwLock<Inner>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared read access. Lock poisoning is ignored: the map is only ever
    /// grown, so a panic in another thread cannot leave it inconsistent.
    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Intern `s`, returning its stable id. Idempotent.
    pub fn intern(&self, s: &str) -> SymbolId {
        if let Some(&id) = self.read().map.get(s) {
            return id;
        }
        let mut inner = self.write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = inner.map.get(s) {
            return id;
        }
        let id = SymbolId(
            u32::try_from(inner.strings.len()).expect("interner overflow: more than 2^32 symbols"),
        );
        let arc: Arc<str> = Arc::from(s);
        inner.strings.push(Arc::clone(&arc));
        inner.map.insert(arc, id);
        id
    }

    /// Look up an id without interning. Returns `None` for unknown strings.
    pub fn get(&self, s: &str) -> Option<SymbolId> {
        self.read().map.get(s).copied()
    }

    /// Resolve an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: SymbolId) -> Arc<str> {
        Arc::clone(
            self.read()
                .strings
                .get(id.index())
                .expect("SymbolId from foreign interner"),
        )
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.read().strings.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if `other` shares storage with `self` (clones of one interner).
    pub fn same_instance(&self, other: &Interner) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("anc");
        let b = i.intern("anc");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered_by_first_use() {
        let i = Interner::new();
        assert_eq!(i.intern("a"), SymbolId(0));
        assert_eq!(i.intern("b"), SymbolId(1));
        assert_eq!(i.intern("a"), SymbolId(0));
        assert_eq!(i.intern("c"), SymbolId(2));
    }

    #[test]
    fn resolve_round_trips() {
        let i = Interner::new();
        let id = i.intern("par");
        assert_eq!(&*i.resolve(id), "par");
    }

    #[test]
    fn get_does_not_intern() {
        let i = Interner::new();
        assert_eq!(i.get("missing"), None);
        assert!(i.is_empty());
        let id = i.intern("present");
        assert_eq!(i.get("present"), Some(id));
    }

    #[test]
    fn clones_share_storage() {
        let i = Interner::new();
        let j = i.clone();
        let id = i.intern("x");
        assert_eq!(j.get("x"), Some(id));
        assert!(i.same_instance(&j));
        assert!(!i.same_instance(&Interner::new()));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = Interner::new();
        let names: Vec<String> = (0..256).map(|k| format!("sym{}", k % 64)).collect();
        std::thread::scope(|scope| {
            for chunk in names.chunks(64) {
                let i = i.clone();
                scope.spawn(move || {
                    for n in chunk {
                        i.intern(n);
                    }
                });
            }
        });
        assert_eq!(i.len(), 64);
        // Every name resolves back to itself.
        for k in 0..64 {
            let n = format!("sym{k}");
            let id = i.get(&n).unwrap();
            assert_eq!(&*i.resolve(id), n.as_str());
        }
    }
}
