//! Evaluation statistics.
//!
//! Definition 4 of the paper counts *successful ground substitutions* —
//! complete variable assignments making every body atom true. Our executor
//! fires its emit callback exactly once per successful ground substitution
//! of the plan it runs, so `firings` here is the quantity Theorems 2 and 6
//! reason about. `duplicates` counts firings whose head tuple was already
//! known (wasted work — the redundancy the §6 trade-off spends).

use gst_common::Histogram;

/// How the engine attributes time to rules and morsel chunks.
///
/// `Wall` records wall-clock microseconds — the right unit for threaded
/// and TCP runs. `Ticks` records deterministic *work proxies* (firings
/// per rule execution, tuples per morsel chunk) so the simulated
/// transport's profiles are bit-identical across same-seed reruns while
/// still ranking rules and chunks by actual work done. `Off` (the
/// default) records nothing and costs one branch per rule execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TimeMode {
    /// No time attribution (default).
    #[default]
    Off,
    /// Wall-clock microseconds.
    Wall,
    /// Deterministic work proxies (firings / tuples).
    Ticks,
}

/// One row of the per-round time series: what a single semi-naive
/// advance admitted. `submitted - fresh` is the round's duplicate work —
/// the §6 trade-off, observable round by round instead of only as a
/// final aggregate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundSample {
    /// Round index (matches `rounds` counting; bootstrap is round 0).
    pub round: u64,
    /// Tuples submitted to derived relations this round.
    pub submitted: u64,
    /// Tuples that were actually new — the next round's delta size.
    pub fresh: u64,
}

/// Counters accumulated by a fixpoint engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Completed semi-naive rounds (bootstrap counts as round 0).
    pub rounds: u64,
    /// Successful ground substitutions, total across rules.
    pub firings: u64,
    /// Distinct tuples added across all derived relations.
    pub derived: u64,
    /// Firings whose head tuple was already present when its round ended.
    pub duplicates: u64,
    /// Firings per rule, indexed by the rule's position in the program.
    pub firings_by_rule: Vec<u64>,
    /// Time attributed per rule, same indexing as `firings_by_rule`.
    /// Unit depends on the engine's [`TimeMode`]: microseconds under
    /// `Wall`, firings under `Ticks`, all zeros under `Off`.
    pub time_by_rule: Vec<u64>,
    /// Rule executions that ran through the morsel-parallel executor.
    pub morsel_runs: u64,
    /// Total morsel chunks claimed across all morsel-parallel executions.
    pub morsel_chunks: u64,
    /// Per-round delta sizes, one sample per completed round.
    pub per_round: Vec<RoundSample>,
    /// Morsel chunk service times ([`TimeMode`] units; empty when
    /// profiling is off or the morsel path never engaged).
    pub chunk_service: Histogram,
}

impl EvalStats {
    /// Create counters for a program with `rule_count` rules.
    pub fn new(rule_count: usize) -> Self {
        EvalStats {
            firings_by_rule: vec![0; rule_count],
            time_by_rule: vec![0; rule_count],
            ..Default::default()
        }
    }

    /// Record `n` firings of rule `rule_index`.
    pub fn record_firings(&mut self, rule_index: usize, n: u64) {
        self.firings += n;
        if let Some(slot) = self.firings_by_rule.get_mut(rule_index) {
            *slot += n;
        }
    }

    /// Attribute `t` time units ([`TimeMode`]-dependent) to rule
    /// `rule_index`. Out-of-range indices are ignored, mirroring
    /// [`EvalStats::record_firings`].
    pub fn record_rule_time(&mut self, rule_index: usize, t: u64) {
        if let Some(slot) = self.time_by_rule.get_mut(rule_index) {
            *slot += t;
        }
    }

    /// Total time attributed across all rules (the profiler's `compute`
    /// phase as seen from inside the engine).
    pub fn rule_time_total(&self) -> u64 {
        self.time_by_rule.iter().sum()
    }

    /// Record a morsel-parallel execution that split a delta scan into
    /// `chunks` morsels. A `chunks` of 0 means the executor declined and
    /// fell back to the sequential path — not counted.
    pub fn record_morsels(&mut self, chunks: u64) {
        if chunks > 0 {
            self.morsel_runs += 1;
            self.morsel_chunks += chunks;
        }
    }

    /// Record the outcome of an advance: `fresh` new tuples out of
    /// `submitted` submissions.
    pub fn record_advance(&mut self, submitted: u64, fresh: u64) {
        self.derived += fresh;
        self.duplicates += submitted - fresh;
    }

    /// Close the current round: record its time-series sample and bump
    /// the round counter. `submitted`/`fresh` are the totals this round's
    /// advance saw across all derived relations.
    pub fn end_round(&mut self, submitted: u64, fresh: u64) {
        self.per_round.push(RoundSample {
            round: self.rounds,
            submitted,
            fresh,
        });
        self.rounds += 1;
    }

    /// Total firings over a subset of rules (e.g. only the paper's
    /// *processing* rules, excluding send/receive bookkeeping).
    pub fn firings_for_rules(&self, rules: &[usize]) -> u64 {
        rules
            .iter()
            .map(|&r| self.firings_by_rule.get(r).copied().unwrap_or(0))
            .sum()
    }

    /// Merge another engine's counters into this one (used to aggregate
    /// per-processor statistics into a parallel-run total).
    pub fn merge(&mut self, other: &EvalStats) {
        self.rounds = self.rounds.max(other.rounds);
        self.firings += other.firings;
        self.derived += other.derived;
        self.duplicates += other.duplicates;
        self.morsel_runs += other.morsel_runs;
        self.morsel_chunks += other.morsel_chunks;
        if self.firings_by_rule.len() < other.firings_by_rule.len() {
            self.firings_by_rule.resize(other.firings_by_rule.len(), 0);
        }
        for (i, &n) in other.firings_by_rule.iter().enumerate() {
            self.firings_by_rule[i] += n;
        }
        if self.time_by_rule.len() < other.time_by_rule.len() {
            self.time_by_rule.resize(other.time_by_rule.len(), 0);
        }
        for (i, &t) in other.time_by_rule.iter().enumerate() {
            self.time_by_rule[i] += t;
        }
        self.chunk_service.merge(&other.chunk_service);
        // Per-round samples combine index-wise: round r of the aggregate
        // is the sum over engines of each one's round r.
        if self.per_round.len() < other.per_round.len() {
            self.per_round
                .resize_with(other.per_round.len(), Default::default);
        }
        for (i, sample) in other.per_round.iter().enumerate() {
            let slot = &mut self.per_round[i];
            slot.round = i as u64;
            slot.submitted += sample.submitted;
            slot.fresh += sample.fresh;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_firings_totals_and_indexes() {
        let mut s = EvalStats::new(3);
        s.record_firings(0, 5);
        s.record_firings(2, 7);
        s.record_firings(0, 1);
        assert_eq!(s.firings, 13);
        assert_eq!(s.firings_by_rule, vec![6, 0, 7]);
        assert_eq!(s.firings_for_rules(&[0]), 6);
        assert_eq!(s.firings_for_rules(&[0, 2]), 13);
    }

    #[test]
    fn record_advance_tracks_duplicates() {
        let mut s = EvalStats::new(1);
        s.record_advance(10, 7);
        assert_eq!(s.derived, 7);
        assert_eq!(s.duplicates, 3);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = EvalStats::new(2);
        a.rounds = 4;
        a.record_firings(0, 2);
        let mut b = EvalStats::new(3);
        b.rounds = 9;
        b.record_firings(2, 5);
        b.record_advance(5, 5);
        a.merge(&b);
        assert_eq!(a.rounds, 9);
        assert_eq!(a.firings, 7);
        assert_eq!(a.derived, 5);
        assert_eq!(a.firings_by_rule, vec![2, 0, 5]);
    }

    #[test]
    fn end_round_builds_the_time_series() {
        let mut s = EvalStats::new(1);
        s.end_round(10, 7);
        s.end_round(4, 0);
        assert_eq!(s.rounds, 2);
        assert_eq!(
            s.per_round,
            vec![
                RoundSample { round: 0, submitted: 10, fresh: 7 },
                RoundSample { round: 1, submitted: 4, fresh: 0 },
            ]
        );
    }

    #[test]
    fn merge_combines_rounds_index_wise() {
        let mut a = EvalStats::new(1);
        a.end_round(5, 3);
        let mut b = EvalStats::new(1);
        b.end_round(2, 2);
        b.end_round(8, 1);
        a.merge(&b);
        assert_eq!(
            a.per_round,
            vec![
                RoundSample { round: 0, submitted: 7, fresh: 5 },
                RoundSample { round: 1, submitted: 8, fresh: 1 },
            ]
        );
    }

    #[test]
    fn out_of_range_rule_index_is_ignored_in_per_rule_but_counted_total() {
        let mut s = EvalStats::new(1);
        s.record_firings(5, 3);
        assert_eq!(s.firings, 3);
        assert_eq!(s.firings_by_rule, vec![0]);
    }
}
