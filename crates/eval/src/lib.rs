//! Bottom-up Datalog evaluation: rule→plan compilation, a join executor,
//! and naive / semi-naive fixpoint engines.
//!
//! The paper assumes "the bottom-up evaluation of Datalog programs is done
//! using semi-naive evaluation" (§2). This crate provides that engine in a
//! reusable, round-at-a-time form ([`FixpointEngine`]) so the parallel
//! runtime can interleave evaluation rounds with the paper's send/receive
//! steps, plus one-shot drivers ([`seminaive_eval`], [`naive_eval`]) for
//! sequential baselines.
//!
//! Firing statistics are first-class: Theorems 2 and 6 of the paper bound
//! the *number of successful ground substitutions* in the parallel
//! execution by the sequential count, so [`EvalStats`] counts every rule
//! firing and every duplicate, per rule, making the non-redundancy
//! theorems executable assertions.

#![warn(missing_docs)]

pub mod engine;
pub mod exec;
pub mod plan;
pub mod stats;

pub use engine::{fire_once, naive_eval, seminaive_eval, seminaive_eval_with, EvalResult, FixpointEngine};
pub use exec::{run_plan_morsels, run_plan_morsels_profiled, MorselConfig, MorselPool};
pub use plan::{compile_rule, compile_rule_with, AtomSource, PlanOptions, PlanStep, RulePlan};
pub use stats::{EvalStats, RoundSample, TimeMode};
