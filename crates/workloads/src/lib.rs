//! Deterministic workload generators: graphs and a Datalog program corpus.
//!
//! The 1990 paper predates public benchmark datasets, so experiments use
//! the graph shapes the transitive-closure literature of that era used —
//! chains, cycles, trees, layered DAGs and seeded random digraphs — plus
//! the programs the paper itself names: linear ancestor (its running
//! example, §4), non-linear ancestor (Example 8), the arity-3 chain sirup
//! of Examples 4/7, the two-bit program of Example 6, and same-generation.
//! All generators are seeded and reproducible.

#![warn(missing_docs)]

pub mod graphs;
pub mod programs;

pub use graphs::*;
pub use programs::*;
