//! Storage layer: relations, hash indexes, semi-naive deltas, the database
//! catalog, and horizontal fragmentation.
//!
//! Everything here is single-threaded and owned; the parallel runtime gives
//! each worker its own `Database` of fragments, mirroring the paper's
//! architecture where relations `t_out^i`, `t_in^i` are local to processor
//! `i` and base relations are either shared (read-only, behind an `Arc` at
//! the runtime layer) or fragmented.

#![warn(missing_docs)]

pub mod database;
pub mod delta;
pub mod index;
pub mod partition;
pub mod relation;

pub use database::Database;
pub use delta::DeltaRelation;
pub use index::{hash_key, postings_in_range, HashIndex};
pub use partition::{hash_fragment, replicated_fragments, round_robin_fragment, Fragmentation};
pub use relation::Relation;
