//! Regenerate every figure and experiment of the paper.
//!
//! ```text
//! cargo run --release -p gst-bench --bin harness            # everything
//! cargo run --release -p gst-bench --bin harness -- f3 s1   # a subset
//! ```
//!
//! Experiment ids (see DESIGN.md §4): f1 f2 f3 f4 t1 t2 e4 e5 s1 s2 p1 p2 p3 l1 r1.

use gst_bench::json::{count, s, Json};
use gst_bench::table::Table;
use gst_bench::*;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--json <path>`: also write a machine-readable report.
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|k| {
            let path = args.get(k + 1).cloned().unwrap_or_else(|| {
                eprintln!("--json needs a path");
                std::process::exit(2);
            });
            args.drain(k..=k + 1);
            path
        });
    let mut report: Vec<(String, Json)> = Vec::new();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id || a == "all");

    for (id, fig) in [
        ("f1", want("f1").then(figure1)),
        ("f2", want("f2").then(figure2)),
        ("f3", want("f3").then(figure3)),
        ("f4", want("f4").then(figure4)),
    ] {
        if let Some(figure) = fig {
            print_figure(&figure);
            report.push((
                id.to_string(),
                Json::obj(vec![
                    ("title", s(figure.title.clone())),
                    ("matches_paper", Json::Bool(figure.matches_paper)),
                    ("body", s(figure.body.clone())),
                ]),
            ));
        }
    }

    if want("t1") {
        banner("T1 — Theorems 1/4/5: parallel ≡ sequential least model");
        // T1 is asserted exhaustively by `cargo test` (tests/correctness.rs);
        // here we run one spot check per scheme for the record.
        let cmp = compare_examples(40, 100, 4, 42);
        let ok = cmp.rows.iter().all(|r| r.correct);
        println!(
            "{} — every §4 scheme equals the sequential least model on\n{}\n",
            if ok { "HOLDS" } else { "VIOLATED" },
            cmp.workload
        );
    }

    if want("t2") {
        banner("T2 — Theorems 2/6: semi-naive non-redundancy");
        let rows = nonredundancy_table();
        let mut t = Table::new(vec!["program", "dataset", "n", "sequential", "parallel", "holds"]);
        for r in &rows {
            t.row(vec![
                r.program.clone(),
                r.dataset.clone(),
                r.n.to_string(),
                r.sequential.to_string(),
                r.parallel.to_string(),
                r.holds.to_string(),
            ]);
        }
        println!("{}\n", t.render());
        println!(
            "all {} rows satisfy parallel ≤ sequential: {}\n",
            rows.len(),
            rows.iter().all(|r| r.holds)
        );
        report.push((
            "t2".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("program", s(r.program.clone())),
                            ("dataset", s(r.dataset.clone())),
                            ("n", count(r.n as u64)),
                            ("sequential", count(r.sequential)),
                            ("parallel", count(r.parallel)),
                            ("holds", Json::Bool(r.holds)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if want("e4") {
        banner("E1/E2/E3 — §4: the three derived algorithms");
        let cmp = compare_examples(60, 150, 4, 42);
        println!("{}", cmp.workload);
        println!("sequential baseline: {} firings\n", cmp.sequential_firings);
        let mut t = Table::new(vec![
            "scheme",
            "comm tuples",
            "messages",
            "firings",
            "base tuples",
            "correct",
        ]);
        for r in &cmp.rows {
            t.row(vec![
                r.scheme.clone(),
                r.comm_tuples.to_string(),
                r.messages.to_string(),
                r.firings.to_string(),
                r.base_tuples.to_string(),
                r.correct.to_string(),
            ]);
        }
        println!("{}\n", t.render());
        println!(
            "paper §4.3 ordering (communication): Ex1 {} ≤ Ex3 {} ≤ Ex2 {}\n",
            cmp.rows[0].comm_tuples, cmp.rows[1].comm_tuples, cmp.rows[2].comm_tuples
        );
        report.push((
            "e4".into(),
            Json::Arr(
                cmp.rows
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("scheme", s(r.scheme.clone())),
                            ("comm_tuples", count(r.comm_tuples)),
                            ("firings", count(r.firings)),
                            ("base_tuples", count(r.base_tuples)),
                            ("correct", Json::Bool(r.correct)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if want("s1") {
        banner("S1 — §6: redundancy ↔ communication spectrum");
        let pts = tradeoff_sweep(8, 8, 4, &[0.0, 0.25, 0.5, 0.75, 1.0]);
        let mut t = Table::new(vec!["α", "comm tuples", "firings", "redundancy", "correct"]);
        for p in &pts {
            t.row(vec![
                format!("{:.2}", p.alpha),
                p.comm_tuples.to_string(),
                p.firings.to_string(),
                p.redundancy.to_string(),
                p.correct.to_string(),
            ]);
        }
        println!("{}\n", t.render());
        println!(
            "endpoints: α=0 non-redundant (§3); α=1 zero-communication ([Wolfson 88]); \
             constant-h_i check: communication-free = {}\n",
            generalized_constant_is_communication_free(4)
        );
        report.push((
            "s1".into(),
            Json::Arr(
                pts.iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("alpha", gst_bench::json::num(p.alpha)),
                            ("comm_tuples", count(p.comm_tuples)),
                            ("firings", count(p.firings)),
                            ("redundancy", count(p.redundancy)),
                            ("correct", Json::Bool(p.correct)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if want("s2") {
        banner("S2 — §7: the general scheme beyond linear sirups");
        let rows = general_scheme_experiments(4);
        let mut t = Table::new(vec!["program", "outputs", "comm tuples", "correct", "Thm 6"]);
        for r in &rows {
            let outputs = r
                .output_sizes
                .iter()
                .map(|(n, s)| format!("|{n}|={s}"))
                .collect::<Vec<_>>()
                .join(", ");
            t.row(vec![
                r.program.clone(),
                outputs,
                r.comm_tuples.to_string(),
                r.correct.to_string(),
                r.non_redundant.to_string(),
            ]);
        }
        println!("{}\n", t.render());
    }

    if want("p1") {
        banner("P1 — speedup of the zero-communication scheme (Example 1)");
        if cfg!(debug_assertions) {
            println!("(debug build: timings indicative only; use --release)\n");
        }
        let (seq_ms, cores, rows) = speedup_curve(6, 220, 3, &[1, 2, 4, 8]);
        println!(
            "sequential semi-naive: {seq_ms:.1} ms; physical cores available: {cores}\n\
             (simulated = per-worker engines timed in isolation — exact for a\n\
             communication-free scheme; real wall is bounded by physical cores)"
        );
        let mut t = Table::new(vec![
            "workers",
            "real wall ms",
            "simulated ms",
            "simulated speedup",
            "balance",
        ]);
        for r in &rows {
            t.row(vec![
                r.n.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.1}", r.simulated_ms),
                format!("{:.2}×", r.simulated_speedup),
                format!("{:.2}", r.balance),
            ]);
        }
        println!("{}\n", t.render());
    }

    if want("e5") {
        banner("E5 — communication growth with answer size");
        let rows = communication_scaling(4, &[20, 40, 80, 160]);
        let mut t = Table::new(vec!["|par|", "|anc|", "Ex1 comm", "Ex3 comm", "Ex2 comm"]);
        for r in &rows {
            t.row(vec![
                r.edges.to_string(),
                r.closure.to_string(),
                r.comm.0.to_string(),
                r.comm.1.to_string(),
                r.comm.2.to_string(),
            ]);
        }
        println!("{}\n", t.render());
    }

    if want("p3") {
        banner("P3 — §8 quantified: predicted wall time per architecture");
        let rows = simulate_architectures(60, 150, 42, &[2, 4, 8]);
        let mut t = Table::new(vec![
            "scheme",
            "n",
            "shared-mem (ms)",
            "LAN (ms)",
            "WAN (ms)",
        ]);
        for r in &rows {
            t.row(vec![
                r.scheme.clone(),
                r.n.to_string(),
                format!("{:.2}", r.predicted_us.0 / 1e3),
                format!("{:.2}", r.predicted_us.1 / 1e3),
                format!("{:.2}", r.predicted_us.2 / 1e3),
            ]);
        }
        println!("{}\n", t.render());
        println!(
            "deterministic round traces replayed under three machine models — the\n\
             winning scheme flips with the architecture, exactly §8's point.\n"
        );
    }

    if want("l1") {
        banner("L1 — load balance / processor utilization (§8 future work)");
        let rows = load_balance(4);
        let mut t = Table::new(vec![
            "scheme / workload",
            "per-worker firings",
            "skew (max/mean)",
            "bytes skew",
        ]);
        for r in &rows {
            t.row(vec![
                r.label.clone(),
                format!("{:?}", r.per_worker),
                format!("{:.2}", r.skew),
                if r.bytes_skew > 0.0 {
                    format!("{:.2}", r.bytes_skew)
                } else {
                    "-".into()
                },
            ]);
        }
        println!("{}\n", t.render());
        println!(
            "hash discrimination balances bushy workloads; degenerate choices (the\n\
             star's hub as v(e)) concentrate all firings on one processor; the\n\
             skew-aware partition splits hot keys to rebalance star/zipf.\n"
        );
    }

    if want("r1") {
        banner("R1 — crash recovery: restart + replay + ring repair (DESIGN.md §7)");
        let rows = recovery_experiment(40, 100, 4, 0..6);
        let mut t = Table::new(vec![
            "seed",
            "crashed",
            "restarts",
            "replayed",
            "stale dropped",
            "correct",
        ]);
        for r in &rows {
            t.row(vec![
                r.seed.to_string(),
                format!("w{}", r.crashed_worker),
                r.restarts.to_string(),
                r.replayed_batches.to_string(),
                r.stale_dropped.to_string(),
                r.correct.to_string(),
            ]);
        }
        println!("{}\n", t.render());
        let all_correct = rows.iter().all(|r| r.correct);
        let all_restarted = rows.iter().all(|r| r.restarts >= 1);
        println!(
            "every seed recovered ({all_restarted}) and matched the sequential \
             least model ({all_correct})\n"
        );
        report.push((
            "r1".into(),
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("seed", count(r.seed)),
                            ("crashed_worker", count(r.crashed_worker as u64)),
                            ("restarts", count(r.restarts)),
                            ("replayed_batches", count(r.replayed_batches)),
                            ("stale_dropped", count(r.stale_dropped)),
                            ("correct", Json::Bool(r.correct)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }

    if want("p2") {
        banner("P2 — §8: architecture-dependent scheme selection");
        let (profiles, decisions) = strategy_decisions();
        let mut t = Table::new(vec!["candidate", "firings", "tuples sent", "base tuples"]);
        for p in &profiles {
            t.row(vec![
                p.name.clone(),
                p.firings.to_string(),
                p.tuples_sent.to_string(),
                p.base_tuples.to_string(),
            ]);
        }
        println!("{}\n", t.render());
        let mut t = Table::new(vec!["comm cost", "storage cost", "compiler picks"]);
        for (comm, storage, name) in &decisions {
            t.row(vec![comm.to_string(), storage.to_string(), name.clone()]);
        }
        println!("{}\n", t.render());
    }
    if let Some(path) = json_path {
        // Reports conventionally land under the gitignored `out/`
        // directory (`--json out/harness_report.json`); create it.
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("cannot create {}: {e}", parent.display());
                    std::process::exit(2);
                }
            }
        }
        let body = Json::Obj(report).render();
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote JSON report to {path}");
    }
}

fn banner(title: &str) {
    println!("{}", "=".repeat(title.chars().count().min(78)));
    println!("{title}");
    println!("{}", "=".repeat(title.chars().count().min(78)));
}

fn print_figure(figure: &FigureResult) {
    banner(&figure.title);
    println!("{}", figure.body);
    println!(
        "matches the paper's figure: {}\n",
        if figure.matches_paper { "YES" } else { "NO" }
    );
}
