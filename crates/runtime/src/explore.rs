//! Schedule exploration: sweep seeds, shrink failures.
//!
//! One simulated run checks one schedule. The claims worth testing —
//! "the parallel evaluation computes the sequential least model under
//! *any* schedule the transport permits" — quantify over schedules, so
//! [`sweep_seeds`] runs a whole seed range of [`SimTransport`] schedules
//! against an expected model and collects every seed that diverges.
//!
//! A failing seed under a rich fault plan is a needle in a haystack of
//! noise: most of the injected faults are irrelevant to the bug.
//! [`shrink_failure`] greedily disables fault dimensions (crash → stalls
//! → drops → duplication → delay spread) while the failure reproduces,
//! ending with a minimal plan and its full [`SimTrace`] — the replayable,
//! human-readable counterexample. This is the classic property-testing
//! shrink loop, applied to fault plans instead of data.

use std::ops::Range;

use gst_common::FxHashMap;
use gst_eval::plan::RelationId;
use gst_storage::Relation;

use crate::coordinator::RuntimeConfig;
use crate::fault::FaultPlan;
use crate::sim::{SimTrace, SimTransport};
use crate::spec::WorkerSpec;

/// The expected least model: predicate → relation, as computed by a
/// trusted oracle (sequential semi-naive or the synchronous executor).
pub type ExpectedModel = FxHashMap<RelationId, Relation>;

/// One seed that did not reproduce the expected model.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// What went wrong: a runtime error, or a description of the model
    /// mismatch.
    pub reason: String,
}

/// The result of a seed sweep.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// How many seeds ran.
    pub seeds_run: u64,
    /// Every failing seed, in sweep order.
    pub failures: Vec<SeedFailure>,
}

impl SweepReport {
    /// True when every seed agreed with the expected model.
    pub fn all_passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run one simulated schedule and compare against the oracle. `None`
/// means the run agreed; `Some(reason)` describes the divergence.
pub fn check_seed(
    specs: &[WorkerSpec],
    config: &RuntimeConfig,
    plan: &FaultPlan,
    seed: u64,
    expected: &ExpectedModel,
) -> Option<String> {
    use crate::transport::Transport;
    let sim = SimTransport::with_faults(seed, plan.clone());
    match sim.execute(specs.to_vec(), config) {
        Err(e) => Some(format!("run failed: {e}")),
        Ok(outcome) => {
            for (&pred, want) in expected {
                let got = outcome.relation(pred);
                if !got.set_eq(want) {
                    return Some(format!(
                        "model mismatch on {pred:?}: got {} tuples, want {}",
                        got.len(),
                        want.len()
                    ));
                }
            }
            None
        }
    }
}

/// Run every seed in `seeds` under `plan`, comparing each run's pooled
/// relations against `expected`.
pub fn sweep_seeds(
    specs: &[WorkerSpec],
    config: &RuntimeConfig,
    plan: &FaultPlan,
    seeds: Range<u64>,
    expected: &ExpectedModel,
) -> SweepReport {
    let mut failures = Vec::new();
    let mut seeds_run = 0;
    for seed in seeds {
        seeds_run += 1;
        if let Some(reason) = check_seed(specs, config, plan, seed, expected) {
            failures.push(SeedFailure { seed, reason });
        }
    }
    SweepReport { seeds_run, failures }
}

/// A shrunk counterexample: the minimal fault plan that still fails, and
/// the replayable trace of the failing run.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The failing seed (unchanged by shrinking).
    pub seed: u64,
    /// The minimal plan that still reproduces the failure.
    pub plan: FaultPlan,
    /// Why the minimal run fails.
    pub reason: String,
    /// The failing run's full schedule.
    pub trace: SimTrace,
}

/// Greedily minimize the fault plan of a failing seed, keeping only the
/// dimensions the failure actually needs, then re-run for the trace.
///
/// Returns `None` if `seed` does not fail under `plan` in the first place
/// (nothing to shrink).
pub fn shrink_failure(
    specs: &[WorkerSpec],
    config: &RuntimeConfig,
    plan: &FaultPlan,
    seed: u64,
    expected: &ExpectedModel,
) -> Option<Shrunk> {
    check_seed(specs, config, plan, seed, expected)?;
    let mut current = plan.clone();

    // Candidate simplifications, most-drastic first. Each is retried after
    // any other succeeds, because disabling one fault can change which
    // random draws the others consume.
    let simplify: Vec<fn(&FaultPlan) -> FaultPlan> = vec![
        |p| FaultPlan { crash: None, ..p.clone() },
        |p| FaultPlan { stall_prob: 0.0, stall_ticks: 0, ..p.clone() },
        |p| FaultPlan { drop_prob: 0.0, drop_redeliver_after: 0, ..p.clone() },
        |p| FaultPlan { dup_prob: 0.0, ..p.clone() },
        |p| FaultPlan { max_delay: p.min_delay, ..p.clone() },
        |p| FaultPlan { min_delay: 1, max_delay: 1, ..p.clone() },
    ];

    let mut progress = true;
    while progress {
        progress = false;
        for f in &simplify {
            let candidate = f(&current);
            if candidate == current {
                continue;
            }
            if check_seed(specs, config, &candidate, seed, expected).is_some() {
                current = candidate;
                progress = true;
            }
        }
    }

    let sim = SimTransport::with_faults(seed, current.clone());
    let (result, trace) = sim.run_traced(specs.to_vec(), config);
    let reason = match result {
        Err(e) => format!("run failed: {e}"),
        Ok(outcome) => {
            // Reconstruct the mismatch message for the report.
            expected
                .iter()
                .find_map(|(&pred, want)| {
                    let got = outcome.relation(pred);
                    (!got.set_eq(want)).then(|| {
                        format!(
                            "model mismatch on {pred:?}: got {} tuples, want {}",
                            got.len(),
                            want.len()
                        )
                    })
                })
                .unwrap_or_else(|| "failure did not reproduce on the final re-run".into())
        }
    };
    Some(Shrunk {
        seed,
        plan: current,
        reason,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelOut, ProcessorProgram};
    use gst_common::{ituple, Interner};
    use gst_storage::Database;
    use std::sync::Arc;

    /// A two-worker pipeline whose expected answer we know exactly.
    fn pipeline() -> (Vec<WorkerSpec>, ExpectedModel) {
        let interner = Interner::new();
        let unit0 = gst_frontend::parser::parse_program_with(
            "out0(X) :- e(X).\nship0(X) :- out0(X).",
            &interner,
        )
        .unwrap();
        let unit1 = gst_frontend::parser::parse_program_with("out1(X) :- inbox1(X).", &interner)
            .unwrap();
        let e = (interner.intern("e"), 1);
        let ship0 = (interner.get("ship0").unwrap(), 1);
        let inbox1 = (interner.intern("inbox1"), 1);
        let out1 = (interner.get("out1").unwrap(), 1);
        let answer = (interner.intern("answer"), 1);
        let mut db0 = Database::new(interner.clone());
        db0.insert(e, ituple![1]).unwrap();
        db0.insert(e, ituple![2]).unwrap();
        let specs = vec![
            WorkerSpec {
                program: ProcessorProgram {
                    processor: 0,
                    program: unit0.program,
                    outgoing: vec![ChannelOut { channel: ship0, dest: 1, inbox: inbox1 }],
                    inboxes: vec![],
                    processing_rules: vec![0],
                    pooling: vec![],
                    local_idb: vec![],
                    retract_channels: vec![],
                },
                edb: Arc::new(db0),
                session: None,
            },
            WorkerSpec {
                program: ProcessorProgram {
                    processor: 1,
                    program: unit1.program,
                    outgoing: vec![],
                    inboxes: vec![inbox1],
                    processing_rules: vec![0],
                    pooling: vec![(out1, answer)],
                    local_idb: vec![],
                    retract_channels: vec![],
                },
                edb: Arc::new(Database::new(interner.clone())),
                session: None,
            },
        ];
        let mut expected = ExpectedModel::default();
        expected.insert(answer, [ituple![1], ituple![2]].into_iter().collect());
        (specs, expected)
    }

    #[test]
    fn clean_sweep_passes() {
        let (specs, expected) = pipeline();
        let report = sweep_seeds(
            &specs,
            &RuntimeConfig::default(),
            &FaultPlan::chaos(),
            0..20,
            &expected,
        );
        assert_eq!(report.seeds_run, 20);
        assert!(report.all_passed(), "failures: {:?}", report.failures);
    }

    #[test]
    fn crash_plans_fail_and_shrink_to_the_crash() {
        let (specs, expected) = pipeline();
        let config = RuntimeConfig::default();
        let plan = FaultPlan::with_crash(1, 1);
        let report = sweep_seeds(&specs, &config, &plan, 0..5, &expected);
        assert_eq!(report.failures.len(), 5, "a crashed sink always fails");

        let seed = report.failures[0].seed;
        let shrunk = shrink_failure(&specs, &config, &plan, seed, &expected).unwrap();
        // Everything except the crash is noise; shrinking must strip it.
        assert!(shrunk.plan.crash.is_some(), "the crash is load-bearing");
        assert_eq!(shrunk.plan.dup_prob, 0.0);
        assert_eq!(shrunk.plan.drop_prob, 0.0);
        assert_eq!(shrunk.plan.stall_prob, 0.0);
        assert_eq!(shrunk.plan.max_delay, shrunk.plan.min_delay);
        assert!(shrunk.reason.contains("idle") || shrunk.reason.contains("failed"));
        assert!(!shrunk.trace.events.is_empty(), "trace is replayable evidence");
    }

    #[test]
    fn shrink_returns_none_for_passing_seeds() {
        let (specs, expected) = pipeline();
        let shrunk = shrink_failure(
            &specs,
            &RuntimeConfig::default(),
            &FaultPlan::none(),
            0,
            &expected,
        );
        assert!(shrunk.is_none());
    }
}
