//! Shared machinery for the rewriting schemes: predicate naming, rule
//! assembly, validation, and distribution of base relations to workers.

use std::sync::Arc;

use gst_common::{Error, Interner, Result, SymbolId, Tuple};
use gst_eval::plan::RelationId;
use gst_frontend::ast::{Atom, Literal, Rule, Term};
use gst_frontend::{Program, Variable};
use gst_runtime::ProcessorProgram;
use gst_storage::{Database, Relation};

/// Generates the per-processor predicate names of the rewritten programs.
///
/// Names use characters outside the surface grammar (`@`) so rewritten
/// predicates can never collide with source-program predicates.
#[derive(Debug, Clone)]
pub struct Namer {
    interner: Interner,
}

impl Namer {
    /// A namer over the program's interner.
    pub fn new(interner: Interner) -> Self {
        Namer { interner }
    }

    fn base_name(&self, pred: RelationId) -> String {
        self.interner.resolve(pred.0).to_string()
    }

    /// `t_out^i` of the paper.
    pub fn out(&self, pred: RelationId, i: usize) -> RelationId {
        let name = format!("{}@out{}", self.base_name(pred), i);
        (self.interner.intern(&name), pred.1)
    }

    /// `t_in^i` of the paper.
    pub fn input(&self, pred: RelationId, i: usize) -> RelationId {
        let name = format!("{}@in{}", self.base_name(pred), i);
        (self.interner.intern(&name), pred.1)
    }

    /// The channel predicate `t_ij`.
    pub fn channel(&self, pred: RelationId, i: usize, j: usize) -> RelationId {
        let name = format!("{}@ch{}_{}", self.base_name(pred), i, j);
        (self.interner.intern(&name), pred.1)
    }

    /// The shared broadcast channel `t_i*`: one predicate feeding every
    /// other processor, so the runtime encodes its delta once and
    /// multicasts the payload (instead of one `t_ij` per destination,
    /// which would re-encode identical bytes `n-1` times).
    pub fn broadcast(&self, pred: RelationId, i: usize) -> RelationId {
        let name = format!("{}@bc{}", self.base_name(pred), i);
        (self.interner.intern(&name), pred.1)
    }

    /// `t^i` of the communication-free scheme ([Wolfson 88] / §6).
    pub fn local(&self, pred: RelationId, i: usize) -> RelationId {
        let name = format!("{}@loc{}", self.base_name(pred), i);
        (self.interner.intern(&name), pred.1)
    }

    /// A sequence of fresh distinct variables `W̄` "not appearing in the
    /// original program" (paper, receiving step).
    pub fn fresh_vars(&self, count: usize) -> Vec<Term> {
        (0..count)
            .map(|k| Term::Var(Variable(self.interner.intern(&format!("W@{k}")))))
            .collect()
    }
}

/// Check that every variable of `vars` occurs in at least one body atom
/// of `rule` — the paper's §3 requirement on discriminating sequences.
pub fn validate_sequence(rule: &Rule, vars: &[Variable], which: &str) -> Result<()> {
    if vars.is_empty() {
        return Err(Error::Discriminator(format!(
            "the discriminating sequence {which} must not be empty"
        )));
    }
    let body_vars: Vec<Variable> = rule
        .body_atoms()
        .flat_map(|a| a.variables().collect::<Vec<_>>())
        .collect();
    for v in vars {
        if !body_vars.contains(v) {
            return Err(Error::Discriminator(format!(
                "discriminating variable of {which} does not appear in any body atom \
                 (paper §3: the selection could not be pushed into the joins)"
            )));
        }
    }
    Ok(())
}

/// Whether a conditional send is possible: the sending rule can evaluate
/// `h(v(r)) = j` on an outgoing tuple only if every `v(r)` variable is
/// bound by the tuple pattern — i.e. occurs in `pattern` — and `h` is
/// locally evaluable. Otherwise the scheme broadcasts (Example 2).
pub fn can_route(pattern: &[Term], vars: &[Variable], locally_evaluable: bool) -> bool {
    locally_evaluable
        && vars.iter().all(|v| {
            pattern
                .iter()
                .any(|t| matches!(t, Term::Var(tv) if tv == v))
        })
}

/// How base relations reach the workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseDistribution {
    /// Every worker shares one copy of the full EDB (paper: relations
    /// "shared or replicated" — Example 1's requirement).
    Shared,
    /// Each worker stores only the fragment its rules can actually touch,
    /// computed from the discriminating constraints pushed into its rules
    /// (paper §3: `b_k^i :- b_k, h(v(r)) = i`; §7's `D_in^i`). A base
    /// atom not covered by a constraint forces the full relation.
    MinimalFragments,
}

/// Materialize each worker's extensional database.
pub fn worker_databases(
    global: &Database,
    programs: &[ProcessorProgram],
    distribution: BaseDistribution,
) -> Result<Vec<Arc<Database>>> {
    match distribution {
        BaseDistribution::Shared => {
            let shared = Arc::new(global.clone());
            Ok(programs.iter().map(|_| Arc::clone(&shared)).collect())
        }
        BaseDistribution::MinimalFragments => programs
            .iter()
            .map(|pp| Ok(Arc::new(fragment_database(global, pp)?)))
            .collect(),
    }
}

/// Compute the fragment of the global EDB that worker `pp` needs: for
/// every base atom of every rule, the tuples passing some constraint of
/// that rule whose variables the atom binds — or the full relation if any
/// rule reads the atom unconstrained.
///
/// An atom that binds only a leading *prefix* of a constraint's variables
/// still fragments, via [`Constraint::may_hold_prefix`]: a tuple is kept
/// exactly when some extension of the prefix could satisfy the constraint.
/// For a plain hash function the prefix narrows nothing and the worker
/// keeps the whole relation (the old behaviour); for a skew-aware function
/// over an extended discriminating sequence this is precisely §6's `R_i`
/// replication — a hot key's complementary base fragment lands at every
/// worker of its split set, a cold key's at exactly one.
fn fragment_database(global: &Database, pp: &ProcessorProgram) -> Result<Database> {
    let derived: Vec<RelationId> = pp
        .program
        .derived_predicates()
        .into_iter()
        .map(|p| (p.name, p.arity))
        .chain(pp.inboxes.iter().copied())
        .collect();

    let mut out = Database::new(global.interner().clone());
    // needed[pred] = None ⇒ full relation; Some(set) ⇒ union of σs.
    let mut needed: gst_common::FxHashMap<RelationId, Option<Relation>> =
        gst_common::FxHashMap::default();

    for rule in &pp.program.rules {
        let constraints: Vec<&gst_frontend::ast::ConstraintRef> = rule
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Constraint(c) => Some(c),
                Literal::Atom(_) => None,
            })
            .collect();
        for atom in rule.body_atoms() {
            let id: RelationId = (atom.predicate, atom.terms.len());
            if derived.contains(&id) {
                continue;
            }
            let Some(relation) = global.relation(id) else {
                continue; // no data: nothing to distribute
            };
            // How many leading constraint variables the atom binds: a full
            // cover decides exactly, a non-empty prefix may still narrow
            // (skew-aware functions), zero tells us nothing.
            let bound_prefix = |c: &gst_frontend::ast::ConstraintRef| {
                c.variables()
                    .iter()
                    .take_while(|v| {
                        atom.terms
                            .iter()
                            .any(|t| matches!(t, Term::Var(tv) if tv == *v))
                    })
                    .count()
            };
            // Prefer a full cover over a prefix, a longer prefix over a
            // shorter one, and the earliest constraint on ties (matching
            // the pre-prefix behaviour of taking the first full cover).
            let mut covering: Option<(&gst_frontend::ast::ConstraintRef, usize)> = None;
            for c in &constraints {
                let m = bound_prefix(c);
                if m == 0 {
                    continue;
                }
                let rank = (m == c.variables().len(), m);
                let current = covering.map(|(bc, bm)| (bm == bc.variables().len(), bm));
                if current.is_none_or(|best| rank > best) {
                    covering = Some((c, m));
                }
            }
            match covering {
                None => {
                    needed.insert(id, None); // full
                }
                Some((c, m)) => {
                    // Positions of each bound constraint variable in the atom.
                    let positions: Vec<usize> = c
                        .variables()
                        .iter()
                        .take(m)
                        .map(|v| {
                            atom.terms
                                .iter()
                                .position(|t| matches!(t, Term::Var(tv) if tv == v))
                                .expect("prefix variable is bound")
                        })
                        .collect();
                    let entry = needed
                        .entry(id)
                        .or_insert_with(|| Some(Relation::new(id.1)));
                    if let Some(fragment) = entry {
                        for t in relation.iter() {
                            let ground: Vec<gst_common::Value> =
                                positions.iter().map(|&p| t.get(p)).collect();
                            if c.may_hold_prefix(&ground) {
                                fragment.insert_unchecked(t.clone());
                            }
                        }
                    }
                }
            }
        }
    }

    for (id, fragment) in needed {
        match fragment {
            None => {
                let full = global
                    .relation(id)
                    .cloned()
                    .unwrap_or_else(|| Relation::new(id.1));
                out.put_relation(id, full)?;
            }
            Some(fragment) => {
                // Union with anything already placed (a pred may be both
                // fully and partially required across rules; full wins
                // because `None` overwrote the map entry).
                let mut existing = out.relation_or_empty(id);
                existing.absorb(&fragment)?;
                out.put_relation(id, existing)?;
            }
        }
    }
    Ok(out)
}

/// Build an atom quickly.
pub fn atom(pred: RelationId, terms: Vec<Term>) -> Atom {
    debug_assert_eq!(pred.1, terms.len());
    Atom::new(pred.0, terms)
}

/// Construct a program over an existing interner.
pub fn program(rules: Vec<Rule>, interner: &Interner) -> Program {
    Program::new(rules, interner.clone())
}

/// Resolve a predicate name for error messages.
pub fn pred_name(interner: &Interner, pred: RelationId) -> String {
    format!("{}/{}", interner.resolve(pred.0), pred.1)
}

/// Helper: the `SymbolId` part of a frontend predicate.
pub fn rel_id(p: gst_frontend::Predicate) -> RelationId {
    (p.name, p.arity)
}

/// A tuple of the values bound to `vars` read from `pattern` positions of
/// `t` (used by tests to cross-check constraint evaluation).
pub fn project_by_vars(t: &Tuple, pattern: &[Term], vars: &[Variable]) -> Option<Vec<gst_common::Value>> {
    vars.iter()
        .map(|v| {
            pattern
                .iter()
                .position(|term| matches!(term, Term::Var(tv) if tv == v))
                .map(|p| t.get(p))
        })
        .collect()
}

/// Stable symbol lookup for tests.
pub fn sym(interner: &Interner, name: &str) -> SymbolId {
    interner.get(name).expect("symbol interned")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;
    use gst_frontend::parse_program;

    #[test]
    fn namer_is_stable_and_distinct() {
        let interner = Interner::new();
        let t = (interner.intern("anc"), 2);
        let n = Namer::new(interner.clone());
        assert_eq!(n.out(t, 0), n.out(t, 0));
        assert_ne!(n.out(t, 0), n.out(t, 1));
        assert_ne!(n.out(t, 0), n.input(t, 0));
        assert_ne!(n.channel(t, 0, 1), n.channel(t, 1, 0));
        assert_eq!(interner.resolve(n.out(t, 3).0).as_ref(), "anc@out3");
    }

    #[test]
    fn fresh_vars_are_distinct() {
        let n = Namer::new(Interner::new());
        let vars = n.fresh_vars(3);
        assert_eq!(vars.len(), 3);
        assert_ne!(vars[0], vars[1]);
    }

    #[test]
    fn validate_sequence_accepts_body_vars() {
        let p = parse_program("t(X,Y) :- e(X,Z), t(Z,Y).").unwrap().program;
        let z = Variable(p.interner.get("Z").unwrap());
        let w = Variable(p.interner.intern("Qq"));
        assert!(validate_sequence(&p.rules[0], &[z], "v(r)").is_ok());
        assert!(validate_sequence(&p.rules[0], &[z, w], "v(r)").is_err());
        assert!(validate_sequence(&p.rules[0], &[], "v(r)").is_err());
    }

    #[test]
    fn can_route_requires_pattern_and_evaluability() {
        let interner = Interner::new();
        let z = Variable(interner.intern("Z"));
        let y = Variable(interner.intern("Y"));
        let x = Variable(interner.intern("X"));
        let pattern = vec![Term::Var(z), Term::Var(y)];
        assert!(can_route(&pattern, &[z], true));
        assert!(can_route(&pattern, &[z, y], true));
        assert!(!can_route(&pattern, &[x], true));
        assert!(!can_route(&pattern, &[z], false));
    }

    #[test]
    fn shared_distribution_aliases_one_database() {
        let unit = parse_program("t(X) :- e(X).\ne(1).").unwrap();
        let mut db = Database::new(unit.program.interner.clone());
        db.load_facts(unit.facts.clone()).unwrap();
        let pp = ProcessorProgram {
            processor: 0,
            program: unit.program.clone(),
            outgoing: vec![],
            inboxes: vec![],
            processing_rules: vec![0],
            pooling: vec![],
            local_idb: vec![],
            retract_channels: vec![],
        };
        let dbs = worker_databases(&db, &[pp.clone(), { let mut q = pp; q.processor = 1; q }], BaseDistribution::Shared)
            .unwrap();
        assert!(Arc::ptr_eq(&dbs[0], &dbs[1]));
    }

    #[test]
    fn minimal_fragments_full_when_unconstrained() {
        let unit = parse_program("t(X,Y) :- e(X,Y).").unwrap();
        let mut db = Database::new(unit.program.interner.clone());
        let e = (unit.program.interner.get("e").unwrap(), 2);
        db.insert(e, ituple![1, 2]).unwrap();
        db.insert(e, ituple![3, 4]).unwrap();
        let pp = ProcessorProgram {
            processor: 0,
            program: unit.program.clone(),
            outgoing: vec![],
            inboxes: vec![],
            processing_rules: vec![0],
            pooling: vec![],
            local_idb: vec![],
            retract_channels: vec![],
        };
        let dbs = worker_databases(&db, &[pp], BaseDistribution::MinimalFragments).unwrap();
        assert_eq!(dbs[0].relation(e).unwrap().len(), 2);
    }

    #[test]
    fn minimal_fragments_apply_constraints() {
        use crate::discriminator::{DiscConstraint, HashMod};
        let unit = parse_program("t(X,Y) :- e(X,Y).").unwrap();
        let mut program = unit.program.clone();
        let interner = program.interner.clone();
        let e = (interner.get("e").unwrap(), 2);
        let y = Variable(interner.get("Y").unwrap());
        let h: crate::discriminator::DiscriminatorRef = Arc::new(HashMod::new(2, 1));

        let mut db = Database::new(interner.clone());
        for k in 0..40i64 {
            db.insert(e, ituple![k, k + 1]).unwrap();
        }

        let mut programs = Vec::new();
        for i in 0..2usize {
            let mut rules = program.rules.clone();
            rules[0]
                .body
                .push(Literal::Constraint(DiscConstraint::literal(
                    vec![y],
                    h.clone(),
                    i,
                )));
            programs.push(ProcessorProgram {
                processor: i,
                program: Program::new(rules, interner.clone()),
                outgoing: vec![],
                inboxes: vec![],
                processing_rules: vec![0],
                pooling: vec![],
                local_idb: vec![],
                retract_channels: vec![],
            });
        }
        program.rules.clear();

        let dbs = worker_databases(&db, &programs, BaseDistribution::MinimalFragments).unwrap();
        let n0 = dbs[0].relation(e).map(Relation::len).unwrap_or(0);
        let n1 = dbs[1].relation(e).map(Relation::len).unwrap_or(0);
        assert_eq!(n0 + n1, 40, "fragments partition the relation");
        assert!(n0 > 0 && n1 > 0, "both sides populated: {n0}/{n1}");
        // Every tuple in fragment i satisfies h(Y)=i.
        for (i, dbw) in dbs.iter().enumerate() {
            for t in dbw.relation(e).unwrap().iter() {
                assert_eq!(h.assign(&[t.get(1)]), i);
            }
        }
    }

    #[test]
    fn project_by_vars_reads_positions() {
        let interner = Interner::new();
        let x = Variable(interner.intern("X"));
        let y = Variable(interner.intern("Y"));
        let pattern = vec![Term::Var(x), Term::Var(y)];
        let t = ituple![7, 9];
        assert_eq!(
            project_by_vars(&t, &pattern, &[y, x]),
            Some(vec![gst_common::Value::Int(9), gst_common::Value::Int(7)])
        );
        let z = Variable(interner.intern("Z"));
        assert_eq!(project_by_vars(&t, &pattern, &[z]), None);
    }
}
