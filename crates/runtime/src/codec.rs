//! Wire format for tuple batches.
//!
//! The paper's abstract channels carry tuples; a real message-passing
//! deployment serializes them. Workers encode every cross-processor batch
//! through this codec so the measured communication cost can be reported
//! in *bytes on the wire*, not just tuple counts — the unit a §8 cost
//! model for a cluster actually charges.
//!
//! Layout (little-endian):
//!
//! ```text
//! batch   := inbox_sym: u32 | arity: u16 | count: u32 | count × tuple
//! tuple   := arity × value
//! value   := tag: u8 (0 = Int, 1 = Sym) | Int: i64 | Sym: u32
//! ```
//!
//! Symbol ids are stable across workers because every processor program
//! shares one interner; a multi-machine deployment would ship the symbol
//! table once up front the same way.
//!
//! Malformed input never panics: every decode failure is a typed
//! [`Error::Runtime`] naming the corruption, so a fault-injected or
//! truncated delivery surfaces as a worker error the coordinator reports.

use gst_common::{Error, Result, SymbolId, Tuple, Value};
use gst_eval::plan::RelationId;

use crate::message::Payload;

const TAG_INT: u8 = 0;
const TAG_SYM: u8 = 1;
const HEADER_LEN: usize = 10;

/// Serialize a batch destined for `inbox`.
///
/// # Errors
/// Rejects tuples whose arity differs from the inbox's — a misconfigured
/// channel (caught at the sender, where the diagnostic is actionable).
pub fn encode_batch(inbox: RelationId, tuples: &[Tuple]) -> Result<Payload> {
    let arity = inbox.1;
    // Worst case per value: 1 tag + 8 payload.
    let mut buf = Vec::with_capacity(HEADER_LEN + tuples.len() * arity * 9);
    buf.extend_from_slice(&inbox.0 .0.to_le_bytes());
    buf.extend_from_slice(&(arity as u16).to_le_bytes());
    buf.extend_from_slice(&(tuples.len() as u32).to_le_bytes());
    for t in tuples {
        if t.arity() != arity {
            return Err(Error::Runtime(format!(
                "channel misconfigured: tuple arity {} does not match inbox arity {arity}",
                t.arity()
            )));
        }
        for &v in t.as_slice() {
            match v {
                Value::Int(n) => {
                    buf.push(TAG_INT);
                    buf.extend_from_slice(&n.to_le_bytes());
                }
                Value::Sym(s) => {
                    buf.push(TAG_SYM);
                    buf.extend_from_slice(&s.0.to_le_bytes());
                }
            }
        }
    }
    Ok(Payload::new(buf))
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take<const N: usize>(&mut self) -> Option<[u8; N]> {
        let end = self.pos.checked_add(N)?;
        let chunk = self.bytes.get(self.pos..end)?;
        self.pos = end;
        chunk.try_into().ok()
    }

    fn get_u8(&mut self) -> Option<u8> {
        self.take::<1>().map(|b| b[0])
    }

    fn get_u16_le(&mut self) -> Option<u16> {
        self.take::<2>().map(u16::from_le_bytes)
    }

    fn get_u32_le(&mut self) -> Option<u32> {
        self.take::<4>().map(u32::from_le_bytes)
    }

    fn get_i64_le(&mut self) -> Option<i64> {
        self.take::<8>().map(i64::from_le_bytes)
    }
}

/// The inbox a batch is addressed to, read from the header alone — lets
/// a receiver pick the destination buffer before decoding the body.
///
/// # Errors
/// Returns [`Error::Runtime`] if the header is truncated.
pub fn decode_inbox(bytes: &[u8]) -> Result<RelationId> {
    if bytes.len() < HEADER_LEN {
        return Err(Error::Runtime("corrupt tuple batch: truncated header".into()));
    }
    let sym = SymbolId(u32::from_le_bytes(bytes[0..4].try_into().expect("len checked")));
    let arity = u16::from_le_bytes(bytes[4..6].try_into().expect("len checked")) as usize;
    Ok((sym, arity))
}

/// Deserialize a batch, appending its tuples to `out` — the zero-copy
/// receive path: the transport hands the destination's pending buffer
/// directly, so decoded tuples land where the engine will drain them
/// without an intermediate `Vec`.
///
/// # Errors
/// Returns [`Error::Runtime`] (never panics) for truncated headers,
/// truncated values, unknown value tags, or trailing bytes. On error
/// `out` may retain a partial prefix; callers that need atomicity should
/// truncate back to the pre-call length.
pub fn decode_batch_into(bytes: &[u8], out: &mut Vec<Tuple>) -> Result<(RelationId, usize)> {
    let corrupt = |what: &str| Error::Runtime(format!("corrupt tuple batch: {what}"));
    let mut cur = Cursor::new(bytes);
    if cur.remaining() < HEADER_LEN {
        return Err(corrupt("truncated header"));
    }
    let sym = SymbolId(cur.get_u32_le().expect("checked header length"));
    let arity = cur.get_u16_le().expect("checked header length") as usize;
    let count = cur.get_u32_le().expect("checked header length") as usize;
    // An adversarial count cannot force a huge allocation: arity-0 tuples
    // occupy no payload bytes, so their count is bounded explicitly; for
    // positive arity the preallocation is capped by what the remaining
    // bytes could possibly hold.
    let plausible = match cur.remaining().checked_div(arity) {
        None => {
            if count > 1 << 16 {
                return Err(corrupt("implausible arity-0 tuple count"));
            }
            count
        }
        Some(fit) => count.min(fit + 1),
    };
    out.reserve(plausible);
    let mut values = Vec::with_capacity(arity);
    for _ in 0..count {
        values.clear();
        for _ in 0..arity {
            match cur.get_u8() {
                None => return Err(corrupt("truncated value tag")),
                Some(TAG_INT) => match cur.get_i64_le() {
                    Some(n) => values.push(Value::Int(n)),
                    None => return Err(corrupt("truncated Int")),
                },
                Some(TAG_SYM) => match cur.get_u32_le() {
                    Some(s) => values.push(Value::Sym(SymbolId(s))),
                    None => return Err(corrupt("truncated Sym")),
                },
                Some(tag) => return Err(corrupt(&format!("unknown value tag {tag}"))),
            }
        }
        out.push(Tuple::new(&values));
    }
    if cur.remaining() > 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok(((sym, arity), count))
}

/// Deserialize a batch; the inverse of [`encode_batch`].
///
/// # Errors
/// Returns [`Error::Runtime`] (never panics) for truncated headers,
/// truncated values, unknown value tags, or trailing bytes.
pub fn decode_batch(bytes: &[u8]) -> Result<(RelationId, Vec<Tuple>)> {
    let mut tuples = Vec::new();
    let (inbox, _) = decode_batch_into(bytes, &mut tuples)?;
    Ok((inbox, tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::{ituple, Interner};

    fn inbox(arity: usize) -> RelationId {
        let interner = Interner::new();
        (interner.intern("t@in0"), arity)
    }

    #[test]
    fn round_trips_int_tuples() {
        let id = inbox(2);
        let tuples = vec![ituple![1, -2], ituple![i64::MAX, i64::MIN]];
        let bytes = encode_batch(id, &tuples).unwrap();
        let (got_id, got) = decode_batch(&bytes).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(got, tuples);
    }

    #[test]
    fn round_trips_symbols_and_mixed() {
        let interner = Interner::new();
        let id = (interner.intern("sg@in3"), 2);
        let a = interner.intern("alice");
        let tuples = vec![
            Tuple::new(&[Value::Sym(a), Value::Int(7)]),
            Tuple::new(&[Value::Int(0), Value::Sym(SymbolId(0))]),
        ];
        let bytes = encode_batch(id, &tuples).unwrap();
        let (got_id, got) = decode_batch(&bytes).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(got, tuples);
    }

    #[test]
    fn empty_batch_and_zero_arity() {
        let id = inbox(0);
        let bytes = encode_batch(id, &[Tuple::unit()]).unwrap();
        let (_, got) = decode_batch(&bytes).unwrap();
        assert_eq!(got, vec![Tuple::unit()]);

        let id = inbox(3);
        let bytes = encode_batch(id, &[]).unwrap();
        let (_, got) = decode_batch(&bytes).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn wire_size_is_predictable() {
        let id = inbox(2);
        let tuples = vec![ituple![1, 2]; 10];
        let bytes = encode_batch(id, &tuples).unwrap();
        // header 10 + 10 tuples × 2 values × (1 tag + 8 payload).
        assert_eq!(bytes.len(), 10 + 10 * 2 * 9);
    }

    #[test]
    fn arity_mismatch_rejected_at_sender() {
        let id = inbox(2);
        let err = encode_batch(id, &[ituple![1]]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)), "typed error, not a panic");
        assert!(err.to_string().contains("arity"));
    }

    /// Every malformed-input class yields a typed `Error::Runtime` naming
    /// the corruption — never a panic, never a silent partial decode.
    #[test]
    fn corrupt_input_is_rejected_with_typed_errors() {
        // Empty input.
        let err = decode_batch(&[]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(err.to_string().contains("truncated header"));

        // Shorter than the fixed header.
        let err = decode_batch(&[1, 2, 3]).unwrap_err();
        assert!(err.to_string().contains("truncated header"));

        let id = inbox(1);
        let good = encode_batch(id, &[ituple![5]]).unwrap();

        // Truncated mid-value (payload cut two bytes short).
        let err = decode_batch(&good[..good.len() - 2]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(err.to_string().contains("truncated Int"));

        // Truncated right after the tag.
        let err = decode_batch(&good[..11]).unwrap_err();
        assert!(err.to_string().contains("truncated Int"));

        // Count promises a tuple the payload does not contain.
        let empty = encode_batch(id, &[]).unwrap();
        let mut lying = empty.to_vec();
        lying[6..10].copy_from_slice(&2u32.to_le_bytes());
        let err = decode_batch(&lying).unwrap_err();
        assert!(err.to_string().contains("truncated value tag"));

        // Unknown value tag.
        let mut bad = good.to_vec();
        bad[10] = 9;
        let err = decode_batch(&bad).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(err.to_string().contains("unknown value tag 9"));

        // Trailing garbage.
        let mut extended = good.to_vec();
        extended.push(0);
        let err = decode_batch(&extended).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"));
    }

    /// A truncated symbol payload is caught by the Sym branch.
    #[test]
    fn truncated_symbol_is_rejected() {
        let interner = Interner::new();
        let id = (interner.intern("s@in"), 1);
        let sym = interner.intern("bob");
        let good = encode_batch(id, &[Tuple::new(&[Value::Sym(sym)])]).unwrap();
        let err = decode_batch(&good[..good.len() - 1]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(err.to_string().contains("truncated Sym"));
    }

    /// An adversarial count field must not cause a huge preallocation or
    /// a panic — just a typed error.
    #[test]
    fn huge_count_is_rejected_cheaply() {
        let id = inbox(2);
        let good = encode_batch(id, &[ituple![1, 2]]).unwrap();
        let mut lying = good.to_vec();
        lying[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_batch(&lying).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
    }

    /// Wrong-arity header against the actual payload shape: decoding
    /// misaligns and is caught (either as a truncation or a bad tag).
    #[test]
    fn wrong_arity_header_is_rejected() {
        let id = inbox(2);
        let good = encode_batch(id, &[ituple![1, 2]]).unwrap();
        let mut wrong = good.to_vec();
        wrong[4..6].copy_from_slice(&3u16.to_le_bytes());
        let err = decode_batch(&wrong).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
    }
}
