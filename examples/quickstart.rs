//! Quickstart: parse a Datalog program, evaluate it sequentially, then in
//! parallel with the paper's non-redundant scheme, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use parallel_datalog::prelude::*;

fn main() -> Result<()> {
    // The paper's running example: ancestor over a parent relation.
    let source = "
        % rules
        anc(X,Y) :- par(X,Y).
        anc(X,Y) :- par(X,Z), anc(Z,Y).
        % facts
        par(adam, cain).   par(adam, abel). par(adam, seth).
        par(eve, cain).    par(eve, abel).  par(eve, seth).
        par(seth, enos).   par(enos, kenan).
        par(cain, enoch).  par(enoch, irad).
    ";
    let unit = parse_program(source)?;
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone())?;

    // Sequential semi-naive evaluation: the paper's baseline.
    let sequential = seminaive_eval(&unit.program, &db)?;
    let anc = (unit.program.interner.get("anc").unwrap(), 2);
    println!("== sequential semi-naive ==");
    println!(
        "anc has {} tuples, derived in {} rounds with {} rule firings",
        sequential.relation(anc).len(),
        sequential.stats.rounds,
        sequential.stats.firings
    );

    // Parallel: recognize the linear sirup, pick Example 3's hash
    // partition, run on 4 worker threads.
    let sirup = LinearSirup::from_program(&unit.program)?;
    let scheme = example3_hash_partition(&sirup, 4, &db)?;
    let outcome = scheme.run()?;

    println!("\n== parallel ({}) on {} processors ==", scheme.kind, scheme.processors());
    println!(
        "anc has {} tuples; {} tuples crossed channels; {} processing firings \
         (sequential: {})",
        outcome.relation(anc).len(),
        outcome.stats.total_tuples_sent(),
        outcome.stats.total_processing_firings(),
        sequential.stats.firings,
    );

    assert!(outcome.relation(anc).set_eq(&sequential.relation(anc)));
    assert!(outcome.stats.total_processing_firings() <= sequential.stats.firings);
    println!("\nparallel result equals the least model; Theorem 2 holds ✓");

    // Show the answer, names resolved.
    println!("\nanc = ");
    for t in outcome.relation(anc).sorted() {
        println!("  {}", t.display(&unit.program.interner));
    }
    Ok(())
}
