//! Structural validation of exported Chrome trace-event JSON.
//!
//! The CI trace-smoke job runs a traced execution, exports the journal
//! with `--trace-out`, and feeds the file to the `trace_check` binary,
//! which calls [`check_chrome_trace`]. The checker enforces the
//! invariants the viewer silently tolerates but that indicate a broken
//! producer: per-track monotone timestamps, balanced begin/end span
//! pairing, and (optionally) that every expected worker track is present
//! and reached termination.

use crate::json::Json;

/// What a validated trace contained, for the checker's one-line report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events (including metadata).
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Distinct worker tracks (`tid`s with at least one non-metadata event).
    pub workers: usize,
}

/// Validate Chrome trace-event JSON produced by `--trace-out`.
///
/// Checks, in order:
/// 1. the document parses and has a `traceEvents` array of objects;
/// 2. every non-metadata event carries numeric `ts`/`pid`/`tid` and a
///    `name`, and timestamps never go backwards within a `(pid, tid)`
///    track (array order is emission order);
/// 3. `B`/`E` events pair up stack-wise per track — every span that
///    opens closes, with matching names, and nothing closes twice;
/// 4. at least one `round` span exists (a run that derived nothing
///    still begins round 0 somewhere);
/// 5. with `expect_workers = Some(n)`: tracks `0..n` are all present and
///    each recorded a `terminated` instant;
/// 6. with `require_sends`: at least one `send` instant exists (used by
///    CI on schemes that are known to communicate).
pub fn check_chrome_trace(
    text: &str,
    expect_workers: Option<usize>,
    require_sends: bool,
) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    // Per-(pid, tid) track state: last timestamp and the open-span stack.
    let mut tracks: Vec<((i64, i64), f64, Vec<String>)> = Vec::new();
    let mut spans = 0usize;
    let mut rounds = 0usize;
    let mut sends = 0usize;
    let mut terminated: Vec<i64> = Vec::new();
    let mut worker_tids: Vec<i64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing pid"))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing tid"))? as i64;

        if !worker_tids.contains(&tid) {
            worker_tids.push(tid);
        }
        let track = match tracks.iter_mut().find(|(key, _, _)| *key == (pid, tid)) {
            Some(t) => t,
            None => {
                tracks.push(((pid, tid), f64::NEG_INFINITY, Vec::new()));
                tracks.last_mut().unwrap()
            }
        };
        if ts < track.1 {
            return Err(format!(
                "event {i} ({name}): ts {ts} goes backwards on track pid={pid} tid={tid} (prev {})",
                track.1
            ));
        }
        track.1 = ts;

        match ph {
            "B" => track.2.push(name.to_string()),
            "E" => match track.2.pop() {
                Some(open) if open == name => {
                    spans += 1;
                    if name == "round" {
                        rounds += 1;
                    }
                }
                Some(open) => {
                    return Err(format!(
                        "event {i}: span end {name:?} does not match open span {open:?} on tid={tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: span end {name:?} with no open span on tid={tid}"
                    ))
                }
            },
            "i" => {
                if name == "send" {
                    sends += 1;
                }
                if name == "terminated" && !terminated.contains(&tid) {
                    terminated.push(tid);
                }
            }
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
    }

    for ((pid, tid), _, stack) in &tracks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed span {open:?} on track pid={pid} tid={tid}"
            ));
        }
    }
    if rounds == 0 {
        return Err("no completed round span in trace".into());
    }
    if let Some(n) = expect_workers {
        for tid in 0..n as i64 {
            if !worker_tids.contains(&tid) {
                return Err(format!("worker track tid={tid} missing (expected {n})"));
            }
            if !terminated.contains(&tid) {
                return Err(format!("worker tid={tid} never recorded termination"));
            }
        }
    }
    if require_sends && sends == 0 {
        return Err("no send events in trace (expected communication)".into());
    }

    Ok(TraceSummary {
        events: events.len(),
        spans,
        workers: worker_tids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(events: &str) -> String {
        format!("{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\"}}")
    }

    const GOOD: &str = r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"worker 0"}},
        {"name":"round","ph":"B","ts":1,"pid":0,"tid":0},
        {"name":"send","ph":"i","ts":2,"pid":0,"tid":0,"s":"t"},
        {"name":"round","ph":"E","ts":3,"pid":0,"tid":0},
        {"name":"terminated","ph":"i","ts":4,"pid":0,"tid":0,"s":"t"}"#;

    #[test]
    fn accepts_a_well_formed_trace() {
        let summary = check_chrome_trace(&wrap(GOOD), Some(1), true).unwrap();
        assert_eq!(summary, TraceSummary { events: 5, spans: 1, workers: 1 });
    }

    #[test]
    fn rejects_backward_timestamps() {
        let text = wrap(
            r#"{"name":"round","ph":"B","ts":5,"pid":0,"tid":0},
               {"name":"round","ph":"E","ts":4,"pid":0,"tid":0}"#,
        );
        let err = check_chrome_trace(&text, None, false).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn timestamps_are_monotone_per_track_not_globally() {
        let text = wrap(
            r#"{"name":"round","ph":"B","ts":10,"pid":0,"tid":0},
               {"name":"round","ph":"B","ts":1,"pid":0,"tid":1},
               {"name":"round","ph":"E","ts":11,"pid":0,"tid":0},
               {"name":"round","ph":"E","ts":2,"pid":0,"tid":1}"#,
        );
        assert!(check_chrome_trace(&text, None, false).is_ok());
    }

    #[test]
    fn rejects_unclosed_and_mismatched_spans() {
        let open = wrap(r#"{"name":"round","ph":"B","ts":1,"pid":0,"tid":0}"#);
        assert!(check_chrome_trace(&open, None, false)
            .unwrap_err()
            .contains("unclosed span"));

        let stray = wrap(r#"{"name":"round","ph":"E","ts":1,"pid":0,"tid":0}"#);
        assert!(check_chrome_trace(&stray, None, false)
            .unwrap_err()
            .contains("no open span"));
    }

    #[test]
    fn rejects_missing_worker_or_termination() {
        let err = check_chrome_trace(&wrap(GOOD), Some(2), false).unwrap_err();
        assert!(err.contains("tid=1 missing"), "{err}");
    }

    #[test]
    fn rejects_silent_traces_when_sends_required() {
        let text = wrap(
            r#"{"name":"round","ph":"B","ts":1,"pid":0,"tid":0},
               {"name":"round","ph":"E","ts":2,"pid":0,"tid":0}"#,
        );
        let err = check_chrome_trace(&text, None, true).unwrap_err();
        assert!(err.contains("no send events"), "{err}");
    }

    #[test]
    fn rejects_traces_without_rounds() {
        let text = wrap(r#"{"name":"idle","ph":"i","ts":1,"pid":0,"tid":0,"s":"t"}"#);
        let err = check_chrome_trace(&text, None, false).unwrap_err();
        assert!(err.contains("no completed round"), "{err}");
    }
}
