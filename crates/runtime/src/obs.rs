//! Unified tracing and metrics: the per-worker event journal.
//!
//! The paper's claims are *dynamic* — Theorem 2's non-redundancy is a
//! property of every round, Example 1/Theorem 3's zero communication is a
//! property of every send that never happens, and the §6 trade-off is a
//! curve traced out round by round. End-of-run aggregates
//! ([`crate::stats::ParallelStats`]) can verify the totals; this module
//! records *when* things happened, so stragglers, skewed channels, replay
//! storms and idle gaps become visible.
//!
//! The design is one event model with two producers and three consumers:
//!
//! * **Producers** — every [`crate::worker::WorkerCore`] owns a
//!   [`TraceSink`] (a plain event buffer, disabled by default: one branch
//!   per emission when off) and stamps events against either a wall clock
//!   (threaded transport, microseconds since the run started) or the
//!   virtual clock (simulation, ticks). The transports add their own
//!   events — deliveries, stalls, crashes, restarts — so the
//!   [`crate::sim::TraceEvent`] schedule and the worker's view land in one
//!   [`Journal`].
//! * **Consumers** — a human-readable listing (`Display`, the sim trace
//!   format generalized to both transports), a Chrome trace-event JSON
//!   export ([`Journal::chrome_trace`], loadable in Perfetto or
//!   `chrome://tracing`: one track per worker, rounds as spans, everything
//!   else as instants), and the validators the test suite and the CI
//!   checker run ([`Journal::validate`]).
//!
//! Determinism: a simulated journal contains only virtual times and
//! counters — two runs with the same seed, specs and fault plan produce
//! bit-identical journals, which `tests/trace.rs` asserts.

use std::time::Instant;

use crate::message::MessageKind;

/// What the timestamps of a [`Journal`] mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimeBase {
    /// Microseconds since the run's shared wall-clock origin
    /// (threaded transport).
    #[default]
    WallMicros,
    /// Virtual ticks of the simulation clock (deterministic).
    VirtualTicks,
}

/// One journal entry: when, who, what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Timestamp in the journal's [`TimeBase`].
    pub time: u64,
    /// The processor the event belongs to (the receiving side for
    /// deliveries).
    pub worker: usize,
    /// What happened.
    pub kind: ObsKind,
}

/// The span and event taxonomy (DESIGN.md §9).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObsKind {
    /// A semi-naive round produced fresh tuples and its processing step
    /// begins. Always paired with a [`ObsKind::RoundEnd`] of the same
    /// round on the same worker.
    RoundBegin {
        /// Engine round index (count of completed advances).
        round: u64,
    },
    /// The round's processing step finished.
    RoundEnd {
        /// Engine round index, matching the open [`ObsKind::RoundBegin`].
        round: u64,
        /// Fresh tuples the round's advance admitted (the delta size).
        fresh: u64,
        /// Rule firings the processing step performed.
        firings: u64,
    },
    /// A channel relation's round delta was encoded for the wire — once
    /// per channel, however many destinations share the payload `Arc`
    /// (single-encode multicast).
    BatchEncoded {
        /// The channel relation's predicate symbol (raw interner id).
        channel: u32,
        /// Tuples in the batch.
        tuples: u64,
        /// Wire bytes of the columnar encoding.
        bytes: u64,
        /// Bytes the row-oriented format would have spent on the same
        /// batch — the reference of the compression ratio.
        raw_bytes: u64,
    },
    /// A batch of channel tuples left for another processor.
    BatchSent {
        /// Destination processor.
        to: usize,
        /// Tuples in the batch.
        tuples: u64,
        /// Wire bytes of the encoded batch.
        bytes: u64,
        /// Link sequence number.
        seq: u64,
    },
    /// A batch was decoded and injected into an inbox predicate.
    BatchReceived {
        /// Sending processor.
        from: usize,
        /// Tuples in the batch.
        tuples: u64,
        /// Wire bytes of the encoded batch.
        bytes: u64,
        /// Link sequence number.
        seq: u64,
        /// True when the link sequence number was already absorbed
        /// (transport duplicate; injected but not counted).
        duplicate: bool,
    },
    /// A compacted replay-log snapshot was absorbed during recovery.
    SnapshotReceived {
        /// Sending processor.
        from: usize,
        /// Per-inbox payloads in the snapshot.
        payloads: u64,
        /// Sequence watermark the snapshot stands in for.
        upto: u64,
    },
    /// A Safra termination token was forwarded around the ring.
    TokenSent {
        /// Next processor on the ring.
        to: usize,
        /// Accumulated message-count sum the token carries.
        count: i64,
        /// True if the token was black (termination cannot be concluded
        /// this probe).
        black: bool,
    },
    /// A stale (pre-recovery-epoch) token was discarded.
    TokenDropped,
    /// Replay-log retransmission toward a recovering peer.
    ReplaySent {
        /// The recovering processor.
        to: usize,
        /// Messages retransmitted (snapshot plus retained batches).
        messages: u64,
    },
    /// The worker repaired into a new recovery epoch.
    EpochRepair {
        /// The epoch entered.
        epoch: u64,
    },
    /// The worker went passive with an empty queue (emitted once per
    /// transition, not per poll).
    IdleWait,
    /// The worker accepted the global termination decision.
    Terminated,
    /// Transport: an envelope reached the worker's queue.
    Delivered {
        /// Sending processor.
        from: usize,
        /// Message kind delivered.
        kind: MessageKind,
        /// Link sequence number.
        seq: u64,
        /// True for a fault-injected duplicate copy.
        duplicate: bool,
    },
    /// Transport: the fault plan stalled the worker.
    Stalled {
        /// Virtual time at which it resumes.
        until: u64,
    },
    /// Transport: the worker (incarnation) died.
    Crashed,
    /// Transport: the supervisor restarted the worker.
    Restarted {
        /// The recovery epoch the fleet moves to.
        epoch: u64,
    },
}

impl ObsKind {
    /// The Chrome trace-event name for this kind (also the stable label
    /// the CI checker greps for).
    fn name(&self) -> &'static str {
        match self {
            ObsKind::RoundBegin { .. } | ObsKind::RoundEnd { .. } => "round",
            ObsKind::BatchEncoded { .. } => "encode",
            ObsKind::BatchSent { .. } => "send",
            ObsKind::BatchReceived { .. } => "recv",
            ObsKind::SnapshotReceived { .. } => "snapshot-recv",
            ObsKind::TokenSent { .. } => "token",
            ObsKind::TokenDropped => "token-drop",
            ObsKind::ReplaySent { .. } => "replay",
            ObsKind::EpochRepair { .. } => "repair",
            ObsKind::IdleWait => "idle",
            ObsKind::Terminated => "terminated",
            ObsKind::Delivered { .. } => "deliver",
            ObsKind::Stalled { .. } => "stall",
            ObsKind::Crashed => "crash",
            ObsKind::Restarted { .. } => "restart",
        }
    }
}

/// The clock a sink stamps events with.
#[derive(Debug, Clone)]
enum Clock {
    /// Microseconds elapsed since a shared origin.
    Wall(Instant),
    /// The simulation's virtual time, pushed in before every step.
    Virtual(u64),
}

#[derive(Debug, Clone)]
struct SinkInner {
    worker: usize,
    clock: Clock,
    events: Vec<ObsEvent>,
}

/// A per-worker event buffer. Disabled by default: [`TraceSink::emit`] is
/// a single `Option` branch, so an untraced run pays near nothing.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Box<SinkInner>>);

impl TraceSink {
    /// A sink that records nothing (the default).
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// A recording sink stamping wall-clock microseconds since `origin`
    /// (shared by the whole fleet so tracks align).
    pub fn wall(worker: usize, origin: Instant) -> Self {
        TraceSink(Some(Box::new(SinkInner {
            worker,
            clock: Clock::Wall(origin),
            events: Vec::new(),
        })))
    }

    /// A recording sink stamping the simulation's virtual clock; the
    /// event loop pushes the current tick in via
    /// [`TraceSink::set_virtual_now`] before each step.
    pub fn virtual_clock(worker: usize) -> Self {
        TraceSink(Some(Box::new(SinkInner {
            worker,
            clock: Clock::Virtual(0),
            events: Vec::new(),
        })))
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Advance a virtual-clock sink to `now`. No-op for disabled or
    /// wall-clock sinks.
    #[inline]
    pub fn set_virtual_now(&mut self, now: u64) {
        if let Some(inner) = &mut self.0 {
            if let Clock::Virtual(t) = &mut inner.clock {
                *t = now;
            }
        }
    }

    /// Record one event at the current time. No-op when disabled.
    #[inline]
    pub fn emit(&mut self, kind: ObsKind) {
        if let Some(inner) = &mut self.0 {
            let time = match inner.clock {
                Clock::Wall(origin) => origin.elapsed().as_micros() as u64,
                Clock::Virtual(t) => t,
            };
            inner.events.push(ObsEvent {
                time,
                worker: inner.worker,
                kind,
            });
        }
    }

    /// Drain the recorded events (empty for a disabled sink).
    pub fn take_events(&mut self) -> Vec<ObsEvent> {
        match &mut self.0 {
            Some(inner) => std::mem::take(&mut inner.events),
            None => Vec::new(),
        }
    }
}

/// The merged event journal of one run — every worker's sink plus the
/// transport's own events, in global time order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Journal {
    /// What the timestamps mean.
    pub base: TimeBase,
    /// Events sorted by time (stable: equal-time events keep producer
    /// order — transport first, then workers by processor index).
    pub events: Vec<ObsEvent>,
}

impl Journal {
    /// Merge the transport's events and each worker's buffer into one
    /// time-ordered journal. The concatenation order (transport, then
    /// buffers in the order given) breaks timestamp ties deterministically.
    pub fn assemble(
        base: TimeBase,
        transport_events: Vec<ObsEvent>,
        worker_buffers: Vec<Vec<ObsEvent>>,
    ) -> Journal {
        let mut events = transport_events;
        for buffer in worker_buffers {
            events.extend(buffer);
        }
        events.sort_by_key(|e| e.time);
        Journal { base, events }
    }

    /// True when nothing was recorded (tracing disabled).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events belonging to `worker`, in journal order.
    pub fn worker_events(&self, worker: usize) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter().filter(move |e| e.worker == worker)
    }

    /// Well-formedness: timestamps globally non-decreasing, and on every
    /// worker each `RoundBegin` is closed by the matching `RoundEnd`
    /// before the next round opens, with none left open at the end.
    ///
    /// Crash-aware: a `Crashed` event force-closes whatever round its
    /// worker had open — the incarnation died mid-round and its buffered
    /// `RoundEnd` died with it, so the dangling span is the *expected*
    /// shape of a crash, not a malformed journal. The replacement
    /// incarnation restarts its round numbering, so the round after a
    /// `Restarted` may legally repeat an index the dead incarnation
    /// already used.
    pub fn validate(&self) -> std::result::Result<(), String> {
        let mut last_time = 0u64;
        for e in &self.events {
            if e.time < last_time {
                return Err(format!(
                    "time went backwards: {} after {last_time} (w{})",
                    e.time, e.worker
                ));
            }
            last_time = e.time;
        }
        let workers: std::collections::BTreeSet<usize> =
            self.events.iter().map(|e| e.worker).collect();
        for w in workers {
            let mut open: Option<u64> = None;
            for e in self.worker_events(w) {
                match &e.kind {
                    ObsKind::RoundBegin { round } => {
                        if let Some(prev) = open {
                            return Err(format!(
                                "w{w}: round {round} opened while round {prev} is open"
                            ));
                        }
                        open = Some(*round);
                    }
                    ObsKind::RoundEnd { round, .. } => match open.take() {
                        Some(prev) if prev == *round => {}
                        Some(prev) => {
                            return Err(format!(
                                "w{w}: round {round} closed while round {prev} is open"
                            ));
                        }
                        None => {
                            return Err(format!("w{w}: round {round} closed but never opened"));
                        }
                    },
                    ObsKind::Crashed => {
                        // The crash tore the incarnation down mid-round;
                        // its span is implicitly closed here.
                        open = None;
                    }
                    _ => {}
                }
            }
            if let Some(round) = open {
                return Err(format!("w{w}: round {round} never closed"));
            }
        }
        Ok(())
    }

    /// Export as Chrome trace-event JSON (the `{"traceEvents": [...]}`
    /// format Perfetto and `chrome://tracing` load). One process, one
    /// thread (track) per worker; rounds become `B`/`E` spans, everything
    /// else thread-scoped `i` instants. Timestamps are exported as
    /// microseconds; a virtual-tick journal maps one tick to one
    /// microsecond.
    pub fn chrome_trace(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        out.push_str(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"pdatalog\"}}",
        );
        let workers: std::collections::BTreeSet<usize> =
            self.events.iter().map(|e| e.worker).collect();
        for w in &workers {
            let _ = write!(
                out,
                ",{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{w},\
                 \"args\":{{\"name\":\"worker {w}\"}}}}"
            );
        }
        // Open round span per worker: a `Crashed` event must close its
        // worker's span (the incarnation's own `RoundEnd` died with it),
        // or the viewer misnests every later span on that track.
        let mut open_round: std::collections::BTreeMap<usize, u64> = Default::default();
        for e in &self.events {
            if matches!(e.kind, ObsKind::Crashed) {
                if let Some(round) = open_round.remove(&e.worker) {
                    let _ = write!(
                        out,
                        ",{{\"name\":\"round\",\"ph\":\"E\",\"ts\":{},\"pid\":0,\
                         \"tid\":{},\"args\":{{\"round\":{round},\"aborted\":true}}}}",
                        e.time, e.worker
                    );
                }
            }
            let name = e.kind.name();
            let (ph, args) = match &e.kind {
                ObsKind::RoundBegin { round } => {
                    open_round.insert(e.worker, *round);
                    ("B", format!("\"round\":{round}"))
                }
                ObsKind::RoundEnd { round, fresh, firings } => {
                    open_round.remove(&e.worker);
                    (
                        "E",
                        format!("\"round\":{round},\"fresh\":{fresh},\"firings\":{firings}"),
                    )
                }
                ObsKind::BatchEncoded { channel, tuples, bytes, raw_bytes } => (
                    "i",
                    format!(
                        "\"channel\":{channel},\"tuples\":{tuples},\"bytes\":{bytes},\
                         \"raw_bytes\":{raw_bytes}"
                    ),
                ),
                ObsKind::BatchSent { to, tuples, bytes, seq } => (
                    "i",
                    format!("\"to\":{to},\"tuples\":{tuples},\"bytes\":{bytes},\"seq\":{seq}"),
                ),
                ObsKind::BatchReceived { from, tuples, bytes, seq, duplicate } => (
                    "i",
                    format!(
                        "\"from\":{from},\"tuples\":{tuples},\"bytes\":{bytes},\
                         \"seq\":{seq},\"duplicate\":{duplicate}"
                    ),
                ),
                ObsKind::SnapshotReceived { from, payloads, upto } => (
                    "i",
                    format!("\"from\":{from},\"payloads\":{payloads},\"upto\":{upto}"),
                ),
                ObsKind::TokenSent { to, count, black } => (
                    "i",
                    format!("\"to\":{to},\"count\":{count},\"black\":{black}"),
                ),
                ObsKind::TokenDropped => ("i", String::new()),
                ObsKind::ReplaySent { to, messages } => {
                    ("i", format!("\"to\":{to},\"messages\":{messages}"))
                }
                ObsKind::EpochRepair { epoch } => ("i", format!("\"epoch\":{epoch}")),
                ObsKind::IdleWait => ("i", String::new()),
                ObsKind::Terminated => ("i", String::new()),
                ObsKind::Delivered { from, kind, seq, duplicate } => (
                    "i",
                    format!(
                        "\"from\":{from},\"kind\":\"{kind}\",\"seq\":{seq},\
                         \"duplicate\":{duplicate}"
                    ),
                ),
                ObsKind::Stalled { until } => ("i", format!("\"until\":{until}")),
                ObsKind::Crashed => ("i", String::new()),
                ObsKind::Restarted { epoch } => ("i", format!("\"epoch\":{epoch}")),
            };
            let scope = if ph == "i" { ",\"s\":\"t\"" } else { "" };
            let _ = write!(
                out,
                ",{{\"name\":\"{name}\",\"ph\":\"{ph}\"{scope},\"ts\":{},\"pid\":0,\
                 \"tid\":{},\"args\":{{{args}}}}}",
                e.time, e.worker
            );
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }
}

impl std::fmt::Display for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let unit = match self.base {
            TimeBase::WallMicros => "µs",
            TimeBase::VirtualTicks => "ticks",
        };
        for e in &self.events {
            write!(f, "[{:>8}] w{} ", e.time, e.worker)?;
            match &e.kind {
                ObsKind::RoundBegin { round } => writeln!(f, "round {round} begin"),
                ObsKind::RoundEnd { round, fresh, firings } => {
                    writeln!(f, "round {round} end (+{fresh} fresh, {firings} firings)")
                }
                ObsKind::BatchEncoded { channel, tuples, bytes, raw_bytes } => {
                    writeln!(f, "encode  ch{channel} {tuples} tuples {bytes} B (raw {raw_bytes} B)")
                }
                ObsKind::BatchSent { to, tuples, bytes, seq } => {
                    writeln!(f, "send    -> w{to} {tuples} tuples {bytes} B #{seq}")
                }
                ObsKind::BatchReceived { from, tuples, bytes, seq, duplicate } => {
                    let marker = if *duplicate { " (dup)" } else { "" };
                    writeln!(f, "recv    <- w{from} {tuples} tuples {bytes} B #{seq}{marker}")
                }
                ObsKind::SnapshotReceived { from, payloads, upto } => {
                    writeln!(f, "snapshot <- w{from} {payloads} payloads upto #{upto}")
                }
                ObsKind::TokenSent { to, count, black } => {
                    let color = if *black { "black" } else { "white" };
                    writeln!(f, "token   -> w{to} ({color}, count {count})")
                }
                ObsKind::TokenDropped => writeln!(f, "token dropped (stale epoch)"),
                ObsKind::ReplaySent { to, messages } => {
                    writeln!(f, "replay  -> w{to} {messages} messages")
                }
                ObsKind::EpochRepair { epoch } => writeln!(f, "repair into epoch {epoch}"),
                ObsKind::IdleWait => writeln!(f, "idle"),
                ObsKind::Terminated => writeln!(f, "terminated"),
                ObsKind::Delivered { from, kind, seq, duplicate } => {
                    let marker = if *duplicate { " (dup)" } else { "" };
                    writeln!(f, "deliver <- w{from} {kind} #{seq}{marker}")
                }
                ObsKind::Stalled { until } => writeln!(f, "stalled until {until}"),
                ObsKind::Crashed => writeln!(f, "crashed"),
                ObsKind::Restarted { epoch } => writeln!(f, "restarted (epoch {epoch})"),
            }?;
        }
        writeln!(f, "[{:>8}] end of journal ({} events, {unit})",
            self.events.last().map_or(0, |e| e.time),
            self.events.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, worker: usize, kind: ObsKind) -> ObsEvent {
        ObsEvent { time, worker, kind }
    }

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::disabled();
        assert!(!sink.enabled());
        sink.emit(ObsKind::IdleWait);
        sink.set_virtual_now(99);
        sink.emit(ObsKind::Terminated);
        assert!(sink.take_events().is_empty());
    }

    #[test]
    fn virtual_sink_stamps_the_pushed_clock() {
        let mut sink = TraceSink::virtual_clock(3);
        sink.emit(ObsKind::RoundBegin { round: 1 });
        sink.set_virtual_now(42);
        sink.emit(ObsKind::RoundEnd { round: 1, fresh: 5, firings: 7 });
        let events = sink.take_events();
        assert_eq!(events[0].time, 0);
        assert_eq!(events[1].time, 42);
        assert!(events.iter().all(|e| e.worker == 3));
        assert!(sink.take_events().is_empty(), "take drains");
    }

    #[test]
    fn assemble_merges_sorted_with_stable_ties() {
        let transport = vec![ev(5, 1, ObsKind::Crashed)];
        let w0 = vec![
            ev(1, 0, ObsKind::RoundBegin { round: 1 }),
            ev(5, 0, ObsKind::RoundEnd { round: 1, fresh: 1, firings: 1 }),
        ];
        let journal = Journal::assemble(TimeBase::VirtualTicks, transport, vec![w0]);
        assert_eq!(journal.events.len(), 3);
        assert_eq!(journal.events[0].time, 1);
        // Stable sort: the transport event precedes the equal-time worker
        // event because it was concatenated first.
        assert!(matches!(journal.events[1].kind, ObsKind::Crashed));
        journal.validate().expect("well-formed");
    }

    #[test]
    fn validate_rejects_unclosed_round() {
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![ev(1, 0, ObsKind::RoundBegin { round: 1 })],
        };
        let err = journal.validate().unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn validate_rejects_mismatched_round_pairing() {
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![
                ev(1, 0, ObsKind::RoundBegin { round: 1 }),
                ev(2, 0, ObsKind::RoundEnd { round: 2, fresh: 0, firings: 0 }),
            ],
        };
        assert!(journal.validate().is_err());
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![ev(1, 0, ObsKind::RoundEnd { round: 1, fresh: 0, firings: 0 })],
        };
        let err = journal.validate().unwrap_err();
        assert!(err.contains("never opened"), "{err}");
    }

    #[test]
    fn validate_rejects_backward_time() {
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![ev(5, 0, ObsKind::IdleWait), ev(4, 1, ObsKind::IdleWait)],
        };
        let err = journal.validate().unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn round_pairing_is_per_worker() {
        // Worker 0's round may stay open across worker 1's whole round.
        let journal = Journal::assemble(
            TimeBase::VirtualTicks,
            Vec::new(),
            vec![
                vec![
                    ev(1, 0, ObsKind::RoundBegin { round: 1 }),
                    ev(9, 0, ObsKind::RoundEnd { round: 1, fresh: 2, firings: 2 }),
                ],
                vec![
                    ev(2, 1, ObsKind::RoundBegin { round: 1 }),
                    ev(3, 1, ObsKind::RoundEnd { round: 1, fresh: 1, firings: 1 }),
                ],
            ],
        );
        journal.validate().expect("interleaved per-worker rounds are fine");
    }

    #[test]
    fn validate_accepts_crash_mid_round() {
        // The incarnation died between RoundBegin and RoundEnd: its
        // buffered end event is gone, the supervisor's Crashed marker
        // stands in for it. The replacement restarts round numbering.
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![
                ev(1, 0, ObsKind::RoundBegin { round: 3 }),
                ev(2, 0, ObsKind::Crashed),
                ev(2, 0, ObsKind::Restarted { epoch: 1 }),
                ev(4, 0, ObsKind::RoundBegin { round: 0 }),
                ev(5, 0, ObsKind::RoundEnd { round: 0, fresh: 1, firings: 1 }),
            ],
        };
        journal.validate().expect("crash closes the dangling span");
    }

    #[test]
    fn validate_still_rejects_dangling_round_without_crash() {
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![
                ev(1, 0, ObsKind::RoundBegin { round: 3 }),
                ev(2, 0, ObsKind::Restarted { epoch: 1 }),
            ],
        };
        let err = journal.validate().unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn chrome_trace_closes_span_on_crash() {
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![
                ev(1, 0, ObsKind::RoundBegin { round: 3 }),
                ev(2, 0, ObsKind::Crashed),
                ev(3, 0, ObsKind::RoundBegin { round: 0 }),
                ev(4, 0, ObsKind::RoundEnd { round: 0, fresh: 1, firings: 1 }),
            ],
        };
        let json = journal.chrome_trace();
        assert!(json.contains("\"aborted\":true"), "{json}");
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count(),
            "crash-closed span keeps B/E balanced"
        );
    }

    #[test]
    fn chrome_trace_has_tracks_spans_and_metadata() {
        let journal = Journal::assemble(
            TimeBase::WallMicros,
            Vec::new(),
            vec![vec![
                ev(1, 0, ObsKind::RoundBegin { round: 1 }),
                ev(4, 0, ObsKind::RoundEnd { round: 1, fresh: 3, firings: 3 }),
                ev(5, 0, ObsKind::BatchSent { to: 1, tuples: 3, bytes: 60, seq: 0 }),
                ev(6, 0, ObsKind::Terminated),
            ]],
        );
        let json = journal.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"name\":\"terminated\""));
        assert_eq!(
            json.matches("\"ph\":\"B\"").count(),
            json.matches("\"ph\":\"E\"").count(),
            "every span opened is closed"
        );
    }

    #[test]
    fn display_lists_every_event() {
        let journal = Journal {
            base: TimeBase::VirtualTicks,
            events: vec![
                ev(1, 0, ObsKind::RoundBegin { round: 1 }),
                ev(2, 0, ObsKind::RoundEnd { round: 1, fresh: 1, firings: 1 }),
                ev(3, 0, ObsKind::TokenSent { to: 1, count: -1, black: true }),
                ev(4, 0, ObsKind::Terminated),
            ],
        };
        let text = journal.to_string();
        assert!(text.contains("round 1 begin"));
        assert!(text.contains("token   -> w1 (black, count -1)"));
        assert!(text.contains("terminated"));
        assert!(text.contains("end of journal (4 events, ticks)"));
    }
}
