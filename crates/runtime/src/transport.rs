//! The transport abstraction: how worker state machines get driven and
//! how their envelopes move.
//!
//! The paper's architecture assumes "a processor i in P may communicate
//! with every other processor j" over reliable channels, but deliberately
//! says nothing about *what* a processor is. This module keeps that
//! abstraction honest in code: a [`Transport`] executes a set of
//! [`WorkerSpec`]s to distributed termination and pools the answer, and
//! everything above it (schemes, CLI, experiments) is transport-agnostic.
//!
//! Two implementations exist:
//!
//! * [`ThreadedTransport`] — one OS thread per processor with blocking
//!   queues, supervised for crash recovery; real parallelism, schedule
//!   chosen by the OS;
//! * [`crate::sim::SimTransport`] — all processors interleaved on the
//!   calling thread under a virtual clock, schedule chosen by a seeded
//!   PRNG, with optional fault injection. Same [`crate::worker::WorkerCore`],
//!   adversarial schedules, bit-for-bit reproducible.
//!
//! ## Supervision (crash recovery)
//!
//! The threaded transport runs a supervisor loop on the coordinating
//! thread (see `DESIGN.md` §7). Every worker thread reports its exit —
//! finished, *fatal* error (spec/arity bug, watchdog expiry: the program
//! itself is wrong, restarting cannot help) or *recoverable* death
//! (panic, injected fail-point: the computation is fine, the incarnation
//! died). A recoverable death within the restart budget is answered by
//! rebuilding the worker from its retained spec under a bumped recovery
//! epoch and broadcasting `Recover` so the fleet repairs the termination
//! ring and replays the dead worker's inbound traffic. Anything else
//! broadcasts `Abort`, which tears the fleet down in milliseconds instead
//! of leaving healthy peers to idle into their watchdogs.

use std::collections::hash_map::Entry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use gst_common::{Error, FxHashMap, Result};
use gst_eval::plan::RelationId;
use gst_storage::Relation;

use crate::coordinator::RuntimeConfig;
use crate::message::{Envelope, Message};
use crate::obs::{Journal, ObsEvent, ObsKind, TimeBase, TraceSink};
use crate::spec::WorkerSpec;
use crate::stats::{ExecutionOutcome, ParallelStats, WorkerReport};
use crate::worker::{finish_core, watchdog_error, Outbox, PooledRelations, Step, WorkerCore};

/// Something that can run a fleet of processor programs to distributed
/// termination and pool the global answer.
pub trait Transport {
    /// Execute one [`WorkerSpec`] per processor and pool the results.
    ///
    /// `specs[i].program.processor` must equal `i` — the termination ring
    /// and the channel matrix are indexed by position.
    fn execute(&self, specs: Vec<WorkerSpec>, config: &RuntimeConfig) -> Result<ExecutionOutcome>;
}

/// Shared spec validation: positions match processor ids, channel
/// destinations exist.
pub(crate) fn validate_specs(specs: &[WorkerSpec]) -> Result<()> {
    if specs.is_empty() {
        return Err(Error::Runtime("no processors to execute".into()));
    }
    for (i, spec) in specs.iter().enumerate() {
        if spec.program.processor != i {
            return Err(Error::Runtime(format!(
                "worker at position {i} claims processor {}",
                spec.program.processor
            )));
        }
        for out in &spec.program.outgoing {
            if out.dest >= specs.len() {
                return Err(Error::Runtime(format!(
                    "processor {i} has a channel to nonexistent processor {}",
                    out.dest
                )));
            }
        }
    }
    Ok(())
}

/// Union one worker's pooled relations into the global answer. The first
/// shard per predicate arrives by move (no per-tuple cost).
pub(crate) fn pool_into(
    relations: &mut FxHashMap<RelationId, Relation>,
    pooled: PooledRelations,
) -> Result<()> {
    for (global, rel) in pooled {
        match relations.entry(global) {
            Entry::Vacant(slot) => {
                slot.insert(rel);
            }
            Entry::Occupied(mut slot) => {
                slot.get_mut().absorb_owned(rel)?;
            }
        }
    }
    Ok(())
}

/// What a finished worker hands back: its report, its share of the
/// pooled answer, and its journal buffer.
pub(crate) type WorkerResult = (WorkerReport, PooledRelations, Vec<ObsEvent>);

/// Assemble the final outcome from per-worker results (shared by both
/// transports). Worker journal buffers travel with their reports and are
/// merged — in processor order, after the transport's own events — into
/// one time-sorted [`Journal`].
pub(crate) fn assemble_outcome(
    results: Vec<WorkerResult>,
    wall_time: std::time::Duration,
    restarts: u64,
    base: TimeBase,
    transport_events: Vec<ObsEvent>,
) -> Result<ExecutionOutcome> {
    let mut reports: Vec<WorkerReport> = Vec::with_capacity(results.len());
    let mut relations: FxHashMap<RelationId, Relation> = FxHashMap::default();
    let mut buffers: Vec<(usize, Vec<ObsEvent>)> = Vec::with_capacity(results.len());
    for (report, pooled, events) in results {
        pool_into(&mut relations, pooled)?;
        buffers.push((report.processor, events));
        reports.push(report);
    }
    reports.sort_by_key(|r| r.processor);
    // Deterministic tie-breaking for the stable time sort: worker buffers
    // concatenate in processor order.
    buffers.sort_by_key(|(processor, _)| *processor);
    let journal = Journal::assemble(
        base,
        transport_events,
        buffers.into_iter().map(|(_, events)| events).collect(),
    );
    let channel_matrix: Vec<Vec<u64>> = reports.iter().map(|r| r.sent_tuples_to.clone()).collect();
    Ok(ExecutionOutcome {
        relations,
        stats: ParallelStats {
            workers: reports,
            channel_matrix,
            restarts,
            reconnects: 0,
            relay_bytes: 0,
            wall_time,
        },
        journal,
    })
}

/// True when the compiled scheme's minimal network graph has no live
/// channel: every outgoing entry is a self-loopback (`t_ii`). Theorem 3's
/// zero-communication case, and trivially any single-worker run.
pub(crate) fn network_is_silent(specs: &[WorkerSpec]) -> bool {
    specs.iter().all(|s| {
        s.program
            .outgoing
            .iter()
            .all(|out| out.dest == s.program.processor)
    })
}

/// Run one spec's local fixpoint with none of the distributed machinery —
/// no queues, no codec, no replay logs, no termination ring. Sound exactly
/// when the network is silent: with nothing to receive and nothing to
/// ship, local quiescence *is* the paper's termination condition, observed
/// directly. Self-loopback channels are folded in between inner fixpoints.
fn run_local(spec: &WorkerSpec, n: usize, config: &RuntimeConfig) -> Result<WorkerResult> {
    let t0 = Instant::now();
    // The shared construction path applies any update-session seed, so
    // the N=1 fast path maintains exactly the state a distributed run
    // would.
    let mut engine = spec.build_engine()?;
    engine.set_morsels(gst_eval::MorselConfig::with_threads(config.worker.morsel_threads));
    engine.bootstrap()?;
    let mut ship_from = vec![0usize; spec.program.outgoing.len()];
    loop {
        while engine.advance() > 0 {
            engine.process_round();
        }
        // Local loopbacks (t_ii) re-activate the engine; repeat until the
        // backlog stays empty.
        let mut looped = false;
        for (k, out) in spec.program.outgoing.iter().enumerate() {
            debug_assert_eq!(out.dest, spec.program.processor, "network must be silent");
            let from_row = ship_from[k];
            let backlog = engine.rows_from(out.channel, from_row).len();
            if backlog > 0 {
                ship_from[k] = from_row + backlog;
                engine.loopback_from(out.channel, out.inbox, from_row)?;
                looped = true;
            }
        }
        if !looped {
            break;
        }
    }
    let pooled: PooledRelations = if config.worker.pool_results {
        spec.program
            .pooling
            .iter()
            .filter_map(|(local, global)| engine.take_relation(*local).map(|rel| (*global, rel)))
            .collect()
    } else {
        Vec::new()
    };
    let pooled_tuples = pooled.iter().map(|(_, r)| r.len() as u64).sum();
    let eval = engine.stats().clone();
    let processing_firings = eval.firings_for_rules(&spec.program.processing_rules);
    let report = WorkerReport {
        processor: spec.program.processor,
        eval,
        processing_firings,
        sent_tuples_to: vec![0; n],
        sent_bytes_to: vec![0; n],
        sent_messages: 0,
        received_tuples: 0,
        received_bytes: 0,
        encode_calls: 0,
        encoded_bytes: 0,
        encoded_raw_bytes: 0,
        duplicate_batches: 0,
        replayed_batches: 0,
        stale_dropped: 0,
        retract_tuples_sent: 0,
        retract_tuples_received: 0,
        pooled_tuples,
        busy: t0.elapsed(),
        sent_per_round: Vec::new(),
        profile: None,
    };
    Ok((report, pooled, Vec::new()))
}

/// The zero-communication fast path: every worker runs [`run_local`] —
/// inline for a single processor, on scoped threads otherwise.
fn execute_silent(specs: &[WorkerSpec], config: &RuntimeConfig) -> Result<ExecutionOutcome> {
    let n = specs.len();
    let started = Instant::now();
    let results: Vec<WorkerResult> = if n == 1 {
        vec![run_local(&specs[0], n, config)?]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = specs
                .iter()
                .map(|spec| scope.spawn(move || run_local(spec, n, config)))
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|payload| {
                        Err(Error::Runtime(format!(
                            "worker panicked: {}",
                            panic_message(payload.as_ref())
                        )))
                    })
                })
                .collect::<Result<Vec<WorkerResult>>>()
        })?
    };
    assemble_outcome(
        results,
        started.elapsed(),
        0,
        TimeBase::WallMicros,
        Vec::new(),
    )
}

/// One OS thread per processor, unbounded queues, OS scheduling, a
/// supervisor for crash recovery — the deployment transport.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThreadedTransport;

/// The hot-swappable channel registry: `registry[i]` is the sender for
/// worker `i`'s *current* incarnation. The supervisor replaces a slot
/// when it restarts a worker; everyone else picks up the new queue on
/// their next send.
type Registry = Arc<Vec<Mutex<Sender<Envelope>>>>;

fn lock(slot: &Mutex<Sender<Envelope>>) -> MutexGuard<'_, Sender<Envelope>> {
    // A sender is never poisoned mid-operation (send returns a Result);
    // recover the guard rather than propagate a panic from another thread.
    slot.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Enqueue `env` to every worker's current incarnation. Sends to a worker
/// that already exited fail silently — its receiver is gone, and so is
/// its interest.
fn broadcast(registry: &Registry, env: &Envelope) {
    for slot in registry.iter() {
        let _ = lock(slot).send(env.clone());
    }
}

/// How a worker thread ended, as reported to the supervisor.
enum WorkerExit {
    /// Reached distributed termination.
    Finished(Box<WorkerResult>),
    /// An error restarting cannot cure: the spec, the data, or the fleet
    /// is wrong (arity/codec errors, watchdog expiry, teardown races).
    Fatal(Error),
    /// The incarnation died but the computation is intact (panic or
    /// injected fail-point): a restart plus replay recovers it.
    Recoverable(Error),
}

/// Outbox over the hot-swappable registry.
struct ThreadOutbox {
    senders: Registry,
}

impl Outbox for ThreadOutbox {
    fn send(&mut self, to: usize, env: Envelope) -> Result<()> {
        // A send to a dead peer is black-holed rather than failing the
        // sender: if the peer is being restarted, the replay log
        // re-delivers this batch; if the run is aborting, delivery no
        // longer matters. The supervisor owns failure handling.
        let _ = lock(&self.senders[to]).send(env);
        Ok(())
    }
}

/// The per-thread driver: drain the queue, step the core, block (bounded)
/// when idle, watchdog a starving worker, honor the fail-point.
fn run_threaded(
    spec: WorkerSpec,
    senders: Registry,
    rx: Receiver<Envelope>,
    config: RuntimeConfig,
    epoch: u64,
    fail_after: Option<u64>,
    trace_origin: Option<Instant>,
) -> WorkerExit {
    let n = senders.len();
    let mut core = match WorkerCore::with_epoch(spec, n, epoch) {
        Ok(core) => core,
        Err(e) => return WorkerExit::Fatal(e),
    };
    core.set_morsel_threads(config.worker.morsel_threads);
    if let Some(origin) = trace_origin {
        // All sinks share the run's origin so the tracks line up.
        core.set_sink(TraceSink::wall(core.id(), origin));
    }
    if config.worker.profile {
        core.set_profiler(crate::profile::Profiler::wall(), gst_eval::TimeMode::Wall);
    }
    let mut out = ThreadOutbox { senders };
    let mut idle_since: Option<Instant> = None;
    let mut steps = 0u64;
    loop {
        if fail_after == Some(steps) {
            return WorkerExit::Recoverable(Error::Runtime(format!(
                "injected fail-point crash at step {steps}"
            )));
        }
        steps += 1;
        while let Ok(env) = rx.try_recv() {
            core.enqueue(env);
        }
        match core.step(&mut out) {
            Err(e) => return WorkerExit::Fatal(e),
            Ok(Step::Done) => break,
            Ok(Step::Worked) => idle_since = None,
            Ok(Step::Idle) => {
                let since = *idle_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= config.worker.idle_watchdog {
                    return WorkerExit::Fatal(watchdog_error(core.id(), since.elapsed()));
                }
                match rx.recv_timeout(config.worker.idle_poll) {
                    Ok(env) => core.enqueue(env),
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => {
                        // The registry anchor is gone: the coordinator
                        // itself is unwinding. Distinct from the watchdog
                        // (which means a *peer* starved us).
                        return WorkerExit::Fatal(Error::Runtime(format!(
                            "processor {}: peer channels disconnected during teardown",
                            core.id()
                        )));
                    }
                }
            }
        }
    }
    WorkerExit::Finished(Box::new(finish_core(core, &config.worker)))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

impl Transport for ThreadedTransport {
    fn execute(&self, specs: Vec<WorkerSpec>, config: &RuntimeConfig) -> Result<ExecutionOutcome> {
        validate_specs(&specs)?;
        // A silent network needs none of the machinery below. Keep the
        // full path when tracing (the journal wants round/termination
        // events), when profiling (phase attribution lives in the worker
        // state machine), or when a fail-point asks for supervised
        // crashes.
        if network_is_silent(&specs)
            && !config.trace
            && !config.worker.profile
            && config.supervisor.fail_point.is_none()
        {
            return execute_silent(&specs, config);
        }
        let n = specs.len();
        let mut slots = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel::<Envelope>();
            slots.push(Mutex::new(tx));
            receivers.push(rx);
        }
        let registry: Registry = Arc::new(slots);
        // The registry doubles as the coordinator's sender anchor: a
        // worker blocked in recv_timeout sees Timeout (not Disconnected)
        // for as long as the supervisor lives.
        let (exit_tx, exit_rx) = channel::<(usize, WorkerExit)>();

        let started = Instant::now();
        let trace_origin = config.trace.then_some(started);
        let (results, total_restarts, first_error, transport_events) =
            std::thread::scope(|scope| {
            let spawn_worker =
                |id: usize, rx: Receiver<Envelope>, epoch: u64, fail_after: Option<u64>| {
                    let spec = specs[id].clone();
                    let registry = registry.clone();
                    let config = config.clone();
                    let exit_tx = exit_tx.clone();
                    scope.spawn(move || {
                        let exit = catch_unwind(AssertUnwindSafe(|| {
                            run_threaded(spec, registry, rx, config, epoch, fail_after, trace_origin)
                        }))
                        .unwrap_or_else(|payload| {
                            WorkerExit::Recoverable(Error::Runtime(format!(
                                "worker panicked: {}",
                                panic_message(payload.as_ref())
                            )))
                        });
                        let _ = exit_tx.send((id, exit));
                    });
                };

            for (id, rx) in receivers.into_iter().enumerate() {
                let fail_after = config
                    .supervisor
                    .fail_point
                    .filter(|f| f.worker == id)
                    .map(|f| f.after_steps);
                spawn_worker(id, rx, 0, fail_after);
            }

            // The supervisor loop: collect exits until every incarnation
            // is accounted for.
            let mut outstanding = n;
            let mut results: Vec<Option<Box<WorkerResult>>> = (0..n).map(|_| None).collect();
            // Transport-level journal entries (crash/restart): the thread
            // owning a crashed incarnation takes its buffer down with it,
            // so the supervisor records the lifecycle events itself.
            let mut transport_events: Vec<ObsEvent> = Vec::new();
            let mut restarts_used = vec![0u32; n];
            let mut total_restarts = 0u64;
            let mut epoch = 0u64;
            let mut aborting = false;
            let mut first_error: Option<Error> = None;
            while outstanding > 0 {
                let (id, exit) = exit_rx.recv().expect("supervisor retains an exit sender");
                outstanding -= 1;
                match exit {
                    WorkerExit::Finished(result) => {
                        results[id] = Some(result);
                    }
                    WorkerExit::Fatal(_) | WorkerExit::Recoverable(_) if aborting => {
                        // Teardown noise after the Abort broadcast; the
                        // first (causal) error is already recorded.
                    }
                    WorkerExit::Recoverable(_)
                        if restarts_used[id] < config.supervisor.max_restarts
                            && results.iter().all(Option::is_none) =>
                    {
                        restarts_used[id] += 1;
                        total_restarts += 1;
                        epoch += 1;
                        if config.trace {
                            let now = started.elapsed().as_micros() as u64;
                            transport_events.push(ObsEvent {
                                time: now,
                                worker: id,
                                kind: ObsKind::Crashed,
                            });
                            transport_events.push(ObsEvent {
                                time: now,
                                worker: id,
                                kind: ObsKind::Restarted { epoch },
                            });
                        }
                        let backoff = config.supervisor.restart_backoff * restarts_used[id];
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        let (tx, rx) = channel::<Envelope>();
                        *lock(&registry[id]) = tx;
                        // Broadcast *before* spawning: the Recover lands in
                        // every queue (including the fresh one) ahead of
                        // anything the new incarnation can send, so no
                        // worker sees epoch-`epoch` traffic before it has
                        // repaired into that epoch.
                        broadcast(
                            &registry,
                            &Envelope {
                                from: id,
                                seq: 0,
                                epoch,
                                ack: 0,
                                message: Message::Recover { epoch, restarted: id },
                            },
                        );
                        spawn_worker(id, rx, epoch, None);
                        outstanding += 1;
                    }
                    WorkerExit::Fatal(e) | WorkerExit::Recoverable(e) => {
                        // Fatal, restart budget exhausted, or a peer
                        // already terminated (replay is then impossible:
                        // finished workers answer no AckSync). Tear the
                        // fleet down fast instead of letting healthy
                        // workers idle into their watchdogs.
                        aborting = true;
                        broadcast(
                            &registry,
                            &Envelope {
                                from: id,
                                seq: 0,
                                epoch,
                                ack: 0,
                                message: Message::Abort { reason: e.to_string() },
                            },
                        );
                        first_error = Some(e);
                    }
                }
            }
            (results, total_restarts, first_error, transport_events)
        });
        let wall_time = started.elapsed();
        if let Some(err) = first_error {
            return Err(err);
        }
        let results: Vec<(WorkerReport, PooledRelations, Vec<ObsEvent>)> = results
            .into_iter()
            .map(|r| *r.expect("no error implies every worker finished"))
            .collect();
        assemble_outcome(
            results,
            wall_time,
            total_restarts,
            TimeBase::WallMicros,
            transport_events,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChannelOut, ProcessorProgram};
    use gst_common::{ituple, Interner};
    use gst_storage::Database;

    /// A single worker with a self-loopback channel: transitive closure
    /// where the frontier feeds back through `t_00`.
    fn loopback_spec(interner: &Interner) -> WorkerSpec {
        let unit = gst_frontend::parser::parse_program_with(
            "t(X,Y) :- e(X,Y).\n\
             t(X,Y) :- e(X,Z), inbox(Z,Y).\n\
             ship(Z,Y) :- t(Z,Y).",
            interner,
        )
        .unwrap();
        let e = (interner.intern("e"), 2);
        let ship = (interner.get("ship").unwrap(), 2);
        let inbox = (interner.intern("inbox"), 2);
        let t = (interner.get("t").unwrap(), 2);
        let answer = (interner.intern("answer"), 2);
        let mut db = Database::new(interner.clone());
        for k in 0..5i64 {
            db.insert(e, ituple![k, k + 1]).unwrap();
        }
        WorkerSpec {
            program: ProcessorProgram {
                processor: 0,
                program: unit.program,
                outgoing: vec![ChannelOut { channel: ship, dest: 0, inbox }],
                inboxes: vec![inbox],
                processing_rules: vec![0, 1],
                pooling: vec![(t, answer)],
                local_idb: vec![],
                retract_channels: vec![],
            },
            edb: Arc::new(db),
            session: None,
        }
    }

    #[test]
    fn silence_detection_accepts_self_loopbacks_only() {
        let interner = Interner::new();
        let spec = loopback_spec(&interner);
        assert!(network_is_silent(std::slice::from_ref(&spec)));
        let mut live = spec.clone();
        live.program.outgoing.push(ChannelOut {
            channel: (interner.intern("c"), 2),
            dest: 1,
            inbox: (interner.intern("i"), 2),
        });
        assert!(!network_is_silent(&[live]));
    }

    /// The zero-communication fast path computes the same least model and
    /// the same stats shape as the full machinery (forced here via
    /// tracing), on the same silent spec.
    #[test]
    fn silent_fast_path_matches_full_machinery() {
        let interner = Interner::new();
        let answer = (interner.intern("answer"), 2);
        let spec = loopback_spec(&interner);

        let fast = ThreadedTransport
            .execute(vec![spec.clone()], &RuntimeConfig::default())
            .unwrap();
        let traced_cfg = RuntimeConfig {
            trace: true,
            ..Default::default()
        };
        let full = ThreadedTransport.execute(vec![spec], &traced_cfg).unwrap();

        assert!(fast.relation(answer).set_eq(&full.relation(answer)));
        assert_eq!(fast.relation(answer).len(), 5 + 4 + 3 + 2 + 1);
        assert!(fast.stats.communication_free());
        assert!(full.stats.communication_free());
        assert_eq!(fast.stats.workers.len(), 1);
        assert_eq!(fast.stats.channel_matrix, full.stats.channel_matrix);
        assert_eq!(
            fast.stats.workers[0].pooled_tuples,
            full.stats.workers[0].pooled_tuples
        );
        assert_eq!(fast.stats.workers[0].encode_calls, 0, "nothing encoded");
        assert!(
            fast.journal.is_empty(),
            "the fast path records no journal; tracing keeps the full path"
        );
        assert!(!full.journal.is_empty());
    }
}
