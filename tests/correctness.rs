//! Theorem 1/4/5 (equivalence): for every input of base relations, the
//! parallel execution of every rewriting scheme computes the same least
//! model as the sequential evaluation of the source program.
//!
//! These tests sweep the scheme × program × dataset grid.

use std::sync::Arc;

use parallel_datalog::core::schemes::BaseDistribution;
use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{
    binary_tree, chain, cycle, grid, layered, linear_ancestor, nonlinear_ancestor,
    random_digraph, same_generation, same_generation_tree, star,
};

fn datasets() -> Vec<(&'static str, Relation)> {
    vec![
        ("chain", chain(18)),
        ("cycle", cycle(9)),
        ("tree", binary_tree(4)),
        ("star", star(12)),
        ("grid", grid(4, 5)),
        ("layered", layered(4, 4, 2, 3)),
        ("random", random_digraph(25, 55, 1)),
        ("dense-random", random_digraph(12, 60, 2)),
        ("empty", Relation::new(2)),
    ]
}

fn var(p: &Program, name: &str) -> Variable {
    Variable(p.interner.get(name).unwrap())
}

/// Theorem 1 on Q_i across datasets (Example 3's discriminating choice).
#[test]
fn theorem1_non_redundant_scheme_equals_sequential() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    for n in [1usize, 2, 5] {
        for (name, edges) in datasets() {
            let db = fx.database(&edges);
            let scheme = example3_hash_partition(&sirup, n, &db).unwrap();
            let outcome = scheme.run().unwrap();
            let seq = seminaive_eval(&fx.program, &db).unwrap();
            let anc = fx.output_id();
            assert!(
                outcome.relation(anc).set_eq(&seq.relation(anc)),
                "dataset {name}, n={n}"
            );
        }
    }
}

/// Theorem 1 via Example 1 (zero communication) across datasets.
#[test]
fn theorem1_zero_comm_scheme_equals_sequential() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    for (name, edges) in datasets() {
        let db = fx.database(&edges);
        let scheme = example1_wolfson(&sirup, 4, &db).unwrap();
        let outcome = scheme.run().unwrap();
        assert!(
            outcome.stats.communication_free(),
            "dataset {name}: Example 1 must never communicate"
        );
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)), "dataset {name}");
    }
}

/// Theorem 1 via Example 2 over adversarial fragmentations.
#[test]
fn theorem1_fragmented_broadcast_equals_sequential() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    for (name, edges) in datasets() {
        if edges.is_empty() {
            continue; // fragmentation of nothing is trivial
        }
        let db = fx.database(&edges);
        let frag = round_robin_fragment(&edges, 3).unwrap();
        let scheme = example2_valduriez(&sirup, frag, &db).unwrap();
        let outcome = scheme.run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)), "dataset {name}");
    }
}

/// Theorem 4: the generalized scheme is correct at arbitrary mixes of
/// per-processor routing functions.
#[test]
fn theorem4_generalized_scheme_equals_sequential() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let n = 3;
    let base_h: DiscriminatorRef = Arc::new(HashMod::new(n, 5));
    // A deliberately heterogeneous mix: one keeps local, one hashes, one
    // mixes 50/50.
    let h_locals: Vec<DiscriminatorRef> = vec![
        Arc::new(Constant::new(n, 0)),
        base_h.clone(),
        Arc::new(Mixed::new(2, base_h.clone(), 0.5, 9)),
    ];
    for (name, edges) in datasets() {
        let db = fx.database(&edges);
        let cfg = GeneralizedConfig {
            v_r: vec![var(&fx.program, "Z")],
            v_e: vec![var(&fx.program, "X")],
            h_prime: base_h.clone(),
            h_locals: h_locals.clone(),
        };
        let outcome = rewrite_generalized(&sirup, &cfg, &db).unwrap().run().unwrap();
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let anc = fx.output_id();
        assert!(outcome.relation(anc).set_eq(&seq.relation(anc)), "dataset {name}");
    }
}

/// Theorem 5: the general scheme on the non-linear program, both base
/// distributions.
#[test]
fn theorem5_general_scheme_equals_sequential() {
    let fx = nonlinear_ancestor();
    let h: DiscriminatorRef = Arc::new(HashMod::new(3, 13));
    let choices = vec![
        RuleChoice {
            v: vec![var(&fx.program, "Y")],
            h: h.clone(),
        },
        RuleChoice {
            v: vec![var(&fx.program, "Z")],
            h,
        },
    ];
    for dist in [BaseDistribution::Shared, BaseDistribution::MinimalFragments] {
        for (name, edges) in datasets() {
            let db = fx.database(&edges);
            let scheme = rewrite_general(&fx.program, &choices, &db, dist).unwrap();
            let outcome = scheme.run().unwrap();
            let seq = seminaive_eval(&fx.program, &db).unwrap();
            let anc = fx.output_id();
            assert!(
                outcome.relation(anc).set_eq(&seq.relation(anc)),
                "dataset {name}, dist {dist:?}"
            );
        }
    }
}

/// The linear and non-linear ancestor programs, and the sequential and
/// parallel engines, all agree on the same closure.
#[test]
fn four_way_agreement_on_transitive_closure() {
    let linear = linear_ancestor();
    let nonlinear = nonlinear_ancestor();
    let edges = random_digraph(20, 45, 77);

    let db_l = linear.database(&edges);
    let db_n = nonlinear.database(&edges);

    let seq_l = seminaive_eval(&linear.program, &db_l).unwrap();
    let seq_n = seminaive_eval(&nonlinear.program, &db_n).unwrap();
    let naive_l = naive_eval(&linear.program, &db_l).unwrap();

    let sirup = LinearSirup::from_program(&linear.program).unwrap();
    let par_l = example3_hash_partition(&sirup, 4, &db_l)
        .unwrap()
        .run()
        .unwrap();

    let anc_l = linear.output_id();
    let anc_n = nonlinear.output_id();
    let reference = seq_l.relation(anc_l);
    assert!(reference.set_eq(&seq_n.relation(anc_n)));
    assert!(reference.set_eq(&naive_l.relation(anc_l)));
    assert!(reference.set_eq(&par_l.relation(anc_l)));
}

/// Same-generation through the non-redundant scheme on real tree data.
#[test]
fn same_generation_parallel_is_correct() {
    let fx = same_generation();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let (up, down, flat) = same_generation_tree(5);
    let db = fx.database_multi(&[up, down, flat]);
    let h: DiscriminatorRef = Arc::new(HashMod::new(4, 3));
    let cfg = NonRedundantConfig {
        v_r: vec![var(&fx.program, "U")],
        v_e: vec![var(&fx.program, "X")],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let sg = fx.output_id();
    assert!(outcome.relation(sg).set_eq(&seq.relation(sg)));
    // All 16 leaves of the depth-5 tree are one generation: 16² pairs.
    assert!(outcome.relation(sg).len() >= 16 * 16);
}

/// The deterministic bulk-synchronous mode and the asynchronous runtime
/// are interchangeable: same least model, same total tuple traffic, for
/// every scheme family.
#[test]
fn synchronous_mode_matches_asynchronous() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let edges = random_digraph(24, 55, 31);
    let db = fx.database(&edges);
    let anc = fx.output_id();

    for scheme in [
        example1_wolfson(&sirup, 4, &db).unwrap(),
        example3_hash_partition(&sirup, 4, &db).unwrap(),
        example2_valduriez(&sirup, round_robin_fragment(&edges, 4).unwrap(), &db).unwrap(),
    ] {
        let sync = scheme.run_synchronous().unwrap();
        let asynchronous = scheme.run().unwrap();
        assert!(
            sync.relation(anc).set_eq(&asynchronous.relation(anc)),
            "{}: results differ between modes",
            scheme.kind
        );
        assert_eq!(
            sync.stats.total_tuples_sent(),
            asynchronous.stats.total_tuples_sent(),
            "{}: delta shipping must send each tuple once in both modes",
            scheme.kind
        );
        assert_eq!(
            sync.stats.total_processing_firings(),
            asynchronous.stats.total_processing_firings(),
            "{}: non-redundant firing counts are schedule-independent",
            scheme.kind
        );
    }
}

/// Synchronous mode on the §7 general scheme (non-linear program).
#[test]
fn synchronous_mode_on_general_scheme() {
    let fx = nonlinear_ancestor();
    let db = fx.database(&grid(4, 4));
    let h: DiscriminatorRef = Arc::new(HashMod::new(3, 13));
    let choices = vec![
        RuleChoice {
            v: vec![var(&fx.program, "Y")],
            h: h.clone(),
        },
        RuleChoice {
            v: vec![var(&fx.program, "Z")],
            h,
        },
    ];
    let scheme =
        rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
    let sync = scheme.run_synchronous().unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let anc = fx.output_id();
    assert!(sync.relation(anc).set_eq(&seq.relation(anc)));
    assert!(sync.stats.total_processing_firings() <= seq.stats.firings);
    // Byte accounting: wire bytes flow only where tuples flow.
    assert!((sync.stats.total_bytes_sent() > 0) == (sync.stats.total_tuples_sent() > 0));
}

/// Built-in comparison literals flow through the planner's constraint
/// pushdown (same machinery as the discriminating conditions) — in the
/// sequential engine and through a full parallel scheme.
#[test]
fn comparison_builtins_work_sequentially_and_in_parallel() {
    let unit = parse_program(
        "up(X,Y) :- e(X,Y), X < Y.\n\
         up(X,Y) :- e(X,Z), X < Z, up(Z,Y).\n\
         e(1,2). e(2,3). e(3,1). e(3,4). e(4,2).",
    )
    .unwrap();
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone()).unwrap();
    let up = (unit.program.interner.get("up").unwrap(), 2);

    let seq = seminaive_eval(&unit.program, &db).unwrap();
    // Monotone paths only: 1<2<3, 3<4 — but never through 3→1 or 4→2.
    let rel = seq.relation(up);
    assert!(rel.contains(&ituple![1, 2]));
    assert!(rel.contains(&ituple![1, 4])); // 1<2<3<4
    assert!(!rel.contains(&ituple![3, 1]));
    assert!(!rel.contains(&ituple![4, 2]));

    // Parallel via the §3 scheme: comparisons are copied verbatim into
    // the rewritten processing rules.
    let sirup = LinearSirup::from_program(&unit.program).unwrap();
    let var = |n: &str| Variable(unit.program.interner.get(n).unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(3, 5));
    let cfg = NonRedundantConfig {
        v_r: vec![var("Z")],
        v_e: vec![var("X")],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    assert!(outcome.relation(up).set_eq(&rel));
}

/// Inequality selects non-reflexive pairs; equality constrains joins.
#[test]
fn comparison_eq_and_ne_semantics() {
    let unit = parse_program(
        "sib(X,Y) :- par(P,X), par(P,Y), X != Y.\n\
         selfp(X) :- par(P,X), par(Q,X), P = Q.\n\
         par(1,10). par(1,11). par(2,20).",
    )
    .unwrap();
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone()).unwrap();
    let r = seminaive_eval(&unit.program, &db).unwrap();
    let sib = (unit.program.interner.get("sib").unwrap(), 2);
    let selfp = (unit.program.interner.get("selfp").unwrap(), 1);
    assert_eq!(r.relation(sib).len(), 2); // (10,11), (11,10)
    assert_eq!(r.relation(selfp).len(), 3); // each child, P = Q trivially
}

/// A sirup whose recursive body t-atom carries a constant: the sending
/// pattern `t_ij(Ȳ)` then filters to matching tuples — exactly what the
/// paper's literal rule says — and non-matching tuples still pool.
#[test]
fn constants_in_the_recursive_atom_pattern() {
    let unit = parse_program(
        "t(X,Y) :- s(X,Y).\n\
         t(X,Y) :- t(0,Z), e(Z,X,Y).\n\
         s(0,1). s(0,2). s(5,9).\n\
         e(1,0,3). e(2,7,8). e(3,0,4).",
    )
    .unwrap();
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone()).unwrap();
    let t_id = (unit.program.interner.get("t").unwrap(), 2);
    let seq = seminaive_eval(&unit.program, &db).unwrap();
    // Derivations: t(0,1) → e(1,0,3) → t(0,3) → e(3,0,4) → t(0,4);
    // t(0,2) → e(2,7,8) → t(7,8) — which cannot extend (first ≠ 0).
    assert!(seq.relation(t_id).contains(&ituple![0, 4]));
    assert!(seq.relation(t_id).contains(&ituple![7, 8]));
    assert!(seq.relation(t_id).contains(&ituple![5, 9]));

    let sirup = LinearSirup::from_program(&unit.program).unwrap();
    let var = |n: &str| Variable(unit.program.interner.get(n).unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(3, 2));
    let cfg = NonRedundantConfig {
        v_r: vec![var("Z")],
        v_e: vec![var("X")],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    assert!(outcome.relation(t_id).set_eq(&seq.relation(t_id)));
    assert!(outcome.stats.total_processing_firings() <= seq.stats.firings);
}

/// Rules without body variables cannot carry a discriminating sequence;
/// the general scheme reports that cleanly instead of panicking.
#[test]
fn zero_arity_programs_are_rejected_cleanly() {
    let unit = parse_program("go :- ready.\nstep(X) :- go, e(X).").unwrap();
    let h: DiscriminatorRef = Arc::new(HashMod::new(2, 1));
    // Rule 0 (`go :- ready`) has no variables at all.
    let choices = vec![
        RuleChoice { v: vec![], h: h.clone() },
        RuleChoice {
            v: vec![Variable(unit.program.interner.get("X").unwrap())],
            h,
        },
    ];
    let db = Database::new(unit.program.interner.clone());
    let err = rewrite_general(&unit.program, &choices, &db, BaseDistribution::Shared)
        .unwrap_err();
    assert!(err.to_string().contains("must not be empty"));
}

/// Repeated variables in the recursive atom (`t(Z,Z)`) make the send
/// pattern a filter; equivalence must still hold.
#[test]
fn repeated_variables_in_recursive_atom() {
    let unit = parse_program(
        "t(X,Y) :- s(X,Y).\n\
         t(X,Y) :- t(Z,Z), e(Z,X,Y).\n\
         s(1,1). s(2,3). s(4,4).\n\
         e(1,5,5). e(4,6,7). e(5,8,8). e(8,9,9).",
    )
    .unwrap();
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone()).unwrap();
    let t_id = (unit.program.interner.get("t").unwrap(), 2);
    let seq = seminaive_eval(&unit.program, &db).unwrap();
    // t(1,1) → t(5,5) → t(8,8) → t(9,9); t(4,4) → t(6,7) (dead end).
    assert!(seq.relation(t_id).contains(&ituple![9, 9]));
    assert!(seq.relation(t_id).contains(&ituple![6, 7]));

    let sirup = LinearSirup::from_program(&unit.program).unwrap();
    let var = |n: &str| Variable(unit.program.interner.get(n).unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(4, 9));
    let cfg = NonRedundantConfig {
        v_r: vec![var("Z")],
        v_e: vec![var("X")],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    assert!(outcome.relation(t_id).set_eq(&seq.relation(t_id)));
}
