//! `pdatalog` — command-line front end for the parallel-datalog library.
//!
//! ```text
//! pdatalog run <file.dl> [--workers N] [--scheme S] [--skew-aware] [--morsels T]
//!                        [--query ["goal(…)"] [--explain-rewrite]]
//!                        [--print PRED/ARITY] [--stats]
//!                        [--max-restarts N] [--watchdog-ms MS] [--restart-backoff-ms MS]
//!                        [--trace] [--trace-out FILE]
//!                        [--profile] [--profile-json FILE] [--metrics-out FILE]
//!                        [--updates FILE]
//!                        [--sim [--seed N] [--faults PLAN]]
//!                        [--net [--net-faults PLAN] [--net-kill W@N] ...]
//! pdatalog net-worker --connect HOST:PORT --index I ...
//! pdatalog analyze <file.dl>
//! pdatalog network <file.dl> [--bits | --linear c1,c2,...]
//! ```
//!
//! Schemes for `run`: `seq` (semi-naive, default), `naive`, `example1`
//! (zero communication), `example2` (fragmented + broadcast), `example3`
//! (hash partition), `nocomm` (redundant zero-comm), `general` (§7, works
//! for any program; discriminates each rule on its first body variable).
//!
//! `--query` turns the run into a demand-driven *point query*: the goal
//! (inline, or the file's `?- anc("ann", Y).` line) is rewritten with
//! magic sets (DESIGN.md §15) — adornments mark which arguments the
//! goal binds, magic predicates carry the demand tuples, and only the
//! part of the closure the query can reach is computed. The rewritten
//! program is ordinary Datalog, so it runs on every transport; under a
//! parallel scheme each generated rule discriminates on its magic
//! guard's columns, co-locating demand with the matching base-relation
//! fragments. Only the goal's answers print, under the original
//! predicate name. `--explain-rewrite` prints the rewritten program
//! (with provenance comments) instead of running it; `--stats` adds
//! `demand_ratio` — magic firings over a full-closure run's firings —
//! plus the firings/bytes avoided; `--profile` labels magic/adorned
//! rules in the hot-rule table (e.g. `anc^bf [magic r1]`).
//!
//! `--skew-aware` (with `--scheme example3`) samples EDB key frequencies
//! at compile time and splits hot keys across processors under the §6
//! `R_i` replication trade-off; `--morsels T` lets each worker fan large
//! semi-naive deltas across `T` threads (bit-identical results; see
//! DESIGN.md §13). `--stats` then also reports `hot_keys_split`,
//! `firing_skew` (max/mean per-worker firings) and morsel counters.
//!
//! `--trace` prints the unified event journal (rounds, sends, receives,
//! tokens, idles, recoveries) on stderr for any parallel run — threaded
//! or simulated. `--trace-out FILE` writes the same journal as Chrome
//! trace-event JSON, loadable in Perfetto or `chrome://tracing` (one
//! track per worker, rounds as spans). See DESIGN.md §9.
//!
//! `--profile` turns on per-phase time accounting in every worker
//! (compute, encode, decode, replay, idle) and prints a report on
//! stderr: per-worker phase totals, latency histograms, hot rules by
//! time, the per-round critical path (which worker was the straggler
//! and in which phase), and the largest idle gaps. `--profile-json
//! FILE` writes the same report as deterministic JSON (validated by
//! `trace_check --profile`); `--metrics-out FILE` writes
//! Prometheus-style text metrics. Threaded and `--net` profiles count
//! wall-clock microseconds; `--sim` profiles count deterministic work
//! proxies (virtual ticks) so same-seed reruns produce bit-identical
//! JSON. See DESIGN.md §14.
//!
//! `--updates FILE` turns a parallel run into a live, incrementally
//! maintained view (DRed; see DESIGN.md §11). After the initial fixpoint
//! the file is replayed as a stream of base-fact updates, one directive
//! per line:
//!
//! ```text
//! +edge(4, 9).        % insert a base fact
//! -edge(1, 2).        % delete a base fact (absent facts are no-ops)
//! commit.             % apply everything since the last commit as one batch
//! ```
//!
//! `%` starts a comment, the trailing `.` is optional, and a final
//! uncommitted group is applied implicitly. Each batch is maintained
//! incrementally — deletion cones are retracted and rederived rather
//! than recomputing from scratch — and the relations printed at the end
//! are the maintained view after the last batch. With `--workers 1` the
//! whole stream is maintained in-process by the single-worker fast
//! path; with `--sim` every update round runs under the deterministic
//! simulation transport (faults included).
//!
//! `--net` replaces the OS threads with one OS **process** per worker:
//! the coordinator binds a loopback TCP listener, re-executes this binary
//! with the `net-worker` subcommand once per processor, and relays all
//! worker-to-worker traffic (DESIGN.md §12). A worker process that dies —
//! crash, SIGKILL, or a socket fault injected with `--net-faults
//! W:kind@BYTES[!]` (kinds `delay`, `disconnect`, `truncate`, `garbage`)
//! or `--net-kill W@BYTES` — is restarted under a bumped recovery epoch
//! and peers replay their logged traffic, up to `--max-restarts` total.
//! Timing knobs: `--heartbeat-ms` (ping cadence, default 1000),
//! `--heartbeat-timeout-ms` (silence before a link is declared dead,
//! default 20000), `--connect-timeout-ms` (total connect budget, default
//! 10000), `--connect-backoff-ms` (initial reconnect pause, doubled per
//! failure, default 50).
//!
//! Supervision knobs shared by every parallel transport: `--watchdog-ms`
//! aborts a worker passive that long without termination (default 30000 —
//! the backstop behind a lost peer), `--max-restarts` caps recoverable
//! restarts fleet-wide (default 1), and `--restart-backoff-ms` scales the
//! pause before each restart by the worker's restart count (default 10).
//!
//! `--sim` replaces the OS threads with the deterministic simulation
//! transport: one virtual clock, a seeded scheduler, and (via `--faults`)
//! injected delay/reorder/duplication/drop/stall/crash faults. The same
//! `--seed` and `--faults` always replay the identical schedule (and,
//! with `--trace`, a bit-identical journal). Fault plans are a preset
//! (`none`, `jitter`, `chaos`) optionally refined with `key=value` pairs,
//! e.g. `--faults chaos,dup=0.5,crash=1@40`. Appending the bare `recover`
//! flag (`--faults chaos,crash=1@40,recover`) makes the crash survivable:
//! the supervisor restarts the worker (up to `--max-restarts`, default 1),
//! peers replay their logged traffic, and the run still computes the exact
//! least model, reporting `restarts`/`replayed` in `--stats`.

use std::process::ExitCode;
use std::sync::Arc;

use parallel_datalog::core::dataflow::{zero_comm_choice, DataflowGraph};
use parallel_datalog::prelude::*;
use parallel_datalog::runtime::{FaultPlan, SimTransport};
use parallel_datalog::storage::round_robin_fragment;

fn main() -> ExitCode {
    // Exit quietly when stdout closes early (`pdatalog run … | head`):
    // without a libc dependency the portable way is to intercept the
    // broken-pipe print panic.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let broken_pipe = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.contains("Broken pipe"))
            .unwrap_or(false);
        if broken_pipe {
            std::process::exit(0);
        }
        default_hook(info);
    }));

    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("pdatalog: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: Vec<String>) -> std::result::Result<(), String> {
    let mut it = args.into_iter();
    let command = it.next().ok_or_else(usage)?;
    match command.as_str() {
        "run" => cmd_run(it.collect()),
        "net-worker" => cmd_net_worker(it.collect()),
        "query" => cmd_query(it.collect()),
        "analyze" => cmd_analyze(it.collect()),
        "network" => cmd_network(it.collect()),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  pdatalog run <file.dl> [--workers N] [--scheme seq|naive|example1|example2|example3|nocomm|general] [--query [\"goal(…)\"] [--explain-rewrite]] [--skew-aware] [--morsels T] [--print PRED/ARITY] [--stats] [--max-restarts N] [--watchdog-ms MS] [--restart-backoff-ms MS] [--trace] [--trace-out FILE] [--profile] [--profile-json FILE] [--metrics-out FILE] [--updates FILE] [--sim [--seed N] [--faults none|jitter|chaos[,k=v...][,crash=W@T[,recover]]]] [--net [--net-faults W:kind@BYTES[!][;...]] [--net-kill W@BYTES] [--heartbeat-ms MS] [--heartbeat-timeout-ms MS] [--connect-timeout-ms MS] [--connect-backoff-ms MS]]\n  pdatalog net-worker --connect HOST:PORT --index I [--incarnation K] [timing flags]\n  pdatalog query <file.dl> \"anc(1, X)\"\n  pdatalog analyze <file.dl>\n  pdatalog network <file.dl> [--bits | --linear c1,c2,...]\n\nsupervision defaults: --watchdog-ms 30000, --max-restarts 1, --restart-backoff-ms 10.\n--net runs one OS process per worker over loopback TCP (net-worker is the\nworker mode the coordinator re-executes); faults: delay|disconnect|truncate|garbage.\n\npoint queries (--query): magic-sets rewrite of the program toward the goal's\nbound arguments (constants), evaluated demand-first; `--query` alone takes the\ngoal from the file's `?- goal.` line, `--explain-rewrite` prints the rewritten\nprogram instead of running it, and `--stats` adds demand_ratio (magic firings /\nfull-closure firings). Schemes: seq, naive, or general (demand-partitioned).\n\nupdate files (--updates): one `+fact(…).`, `-fact(…).`, or `commit.` per line;\neach commit applies the group as one incrementally maintained batch.".into()
}

/// Parse `PRED/ARITY`, e.g. `anc/2`.
fn parse_pred_spec(spec: &str) -> std::result::Result<(String, usize), String> {
    let (name, arity) = spec
        .rsplit_once('/')
        .ok_or_else(|| format!("bad predicate spec `{spec}` (want name/arity)"))?;
    let arity: usize = arity
        .parse()
        .map_err(|_| format!("bad arity in `{spec}`"))?;
    Ok((name.to_string(), arity))
}

fn load(path: &str) -> std::result::Result<(Program, Database, Vec<Atom>), String> {
    let source =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let unit = parse_program(&source).map_err(|e| e.to_string())?;
    let mut db = Database::new(unit.program.interner.clone());
    db.load_facts(unit.facts.clone()).map_err(|e| e.to_string())?;
    Ok((unit.program, db, unit.queries))
}

fn cmd_run(args: Vec<String>) -> std::result::Result<(), String> {
    let mut file = None;
    let mut workers = 4usize;
    let mut scheme_name = "seq".to_string();
    let mut print_pred: Option<(String, usize)> = None;
    let mut show_stats = false;
    let mut sim = false;
    let mut seed = 0u64;
    let mut faults = "none".to_string();
    let mut show_trace = false;
    let mut trace_out: Option<String> = None;
    let mut max_restarts: Option<u32> = None;
    let mut updates: Option<String> = None;
    let mut net = false;
    let mut net_faults: Option<String> = None;
    let mut net_kill: Option<String> = None;
    let mut net_config = parallel_datalog::runtime::NetConfig::default();
    let mut watchdog_ms: Option<u64> = None;
    let mut restart_backoff_ms: Option<u64> = None;
    let mut skew_aware = false;
    let mut morsels = 1usize;
    let mut show_profile = false;
    let mut profile_json: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    // `None` = full closure; `Some(None)` = point query from the file's
    // `?- goal.` line; `Some(Some(src))` = inline goal text.
    let mut query: Option<Option<String>> = None;
    let mut explain_rewrite = false;

    fn next_ms(
        flag: &str,
        it: &mut std::iter::Peekable<std::vec::IntoIter<String>>,
    ) -> std::result::Result<std::time::Duration, String> {
        it.next()
            .and_then(|v| v.parse::<u64>().ok())
            .map(std::time::Duration::from_millis)
            .ok_or_else(|| format!("{flag} needs a duration in milliseconds"))
    }

    let mut it = args.into_iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workers" => {
                workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--workers needs a positive integer")?;
            }
            "--scheme" => {
                scheme_name = it.next().ok_or("--scheme needs a name")?;
            }
            "--print" => {
                let spec = it.next().ok_or("--print needs PRED/ARITY")?;
                print_pred = Some(parse_pred_spec(&spec)?);
            }
            "--stats" => show_stats = true,
            "--query" => {
                // The goal is optional (`--query` alone uses the file's
                // `?- goal.` line); a goal always contains `(`, which no
                // flag or file path does, so peek before consuming.
                let goal = match it.peek() {
                    Some(next) if next.contains('(') => it.next(),
                    _ => None,
                };
                query = Some(goal);
            }
            "--explain-rewrite" => explain_rewrite = true,
            "--skew-aware" => skew_aware = true,
            "--morsels" => {
                morsels = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&t| t >= 1)
                    .ok_or("--morsels needs a thread count of at least 1")?;
            }
            "--sim" => sim = true,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an unsigned integer")?;
            }
            "--faults" => {
                faults = it.next().ok_or("--faults needs a plan (none|jitter|chaos)")?;
            }
            "--trace" => show_trace = true,
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("--trace-out needs a file path")?);
            }
            "--profile" => show_profile = true,
            "--profile-json" => {
                profile_json = Some(it.next().ok_or("--profile-json needs a file path")?);
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("--metrics-out needs a file path")?);
            }
            "--max-restarts" => {
                max_restarts = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--max-restarts needs an unsigned integer")?,
                );
            }
            "--updates" => {
                updates = Some(it.next().ok_or("--updates needs a file path")?);
            }
            "--net" => net = true,
            "--net-faults" => {
                net_faults = Some(it.next().ok_or("--net-faults needs W:kind@BYTES[!][;...]")?);
            }
            "--net-kill" => {
                net_kill = Some(it.next().ok_or("--net-kill needs W@BYTES")?);
            }
            "--heartbeat-ms" => net_config.heartbeat_interval = next_ms("--heartbeat-ms", &mut it)?,
            "--heartbeat-timeout-ms" => {
                net_config.heartbeat_timeout = next_ms("--heartbeat-timeout-ms", &mut it)?;
            }
            "--connect-timeout-ms" => {
                net_config.connect_timeout = next_ms("--connect-timeout-ms", &mut it)?;
            }
            "--connect-backoff-ms" => {
                net_config.connect_backoff = next_ms("--connect-backoff-ms", &mut it)?;
            }
            "--watchdog-ms" => {
                watchdog_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--watchdog-ms needs a duration in milliseconds")?,
                );
            }
            "--restart-backoff-ms" => {
                restart_backoff_ms = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--restart-backoff-ms needs a duration in milliseconds")?,
                );
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing input file")?;
    if workers == 0 {
        return Err("--workers must be at least 1".into());
    }
    if sim && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err("--sim needs a parallel scheme (try --scheme example3)".into());
    }
    if (seed != 0 || faults != "none") && !sim {
        return Err("--seed/--faults only make sense with --sim".into());
    }
    if (show_trace || trace_out.is_some()) && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err(
            "--trace/--trace-out need a parallel scheme (the journal records worker events)"
                .into(),
        );
    }
    let profiling = show_profile || profile_json.is_some() || metrics_out.is_some();
    if profiling && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err(
            "--profile/--profile-json/--metrics-out need a parallel scheme (phase timers live in the workers)"
                .into(),
        );
    }
    if max_restarts.is_some() && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err("--max-restarts needs a parallel scheme (it sizes the supervisor's restart budget)".into());
    }
    if (watchdog_ms.is_some() || restart_backoff_ms.is_some())
        && matches!(scheme_name.as_str(), "seq" | "naive")
    {
        return Err(
            "--watchdog-ms/--restart-backoff-ms need a parallel scheme (they tune the supervisor)"
                .into(),
        );
    }
    if skew_aware && scheme_name != "example3" {
        return Err(
            "--skew-aware replaces example3's hash partition; use --scheme example3".into(),
        );
    }
    if morsels > 1 && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err("--morsels needs a parallel scheme (it threads each worker's engine)".into());
    }
    if net && sim {
        return Err("--net and --sim are exclusive: pick OS processes or the simulator".into());
    }
    if net && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err("--net needs a parallel scheme (try --scheme example3)".into());
    }
    if !net && (net_faults.is_some() || net_kill.is_some()) {
        return Err("--net-faults/--net-kill only make sense with --net".into());
    }
    if updates.is_some() && matches!(scheme_name.as_str(), "seq" | "naive") {
        return Err(
            "--updates needs a parallel scheme (the maintained view lives in the workers; \
             use --scheme general --workers 1 for a single-process session)"
                .into(),
        );
    }
    if updates.is_some() && (show_trace || trace_out.is_some()) {
        return Err("--trace covers a single fixpoint; it does not compose with --updates".into());
    }
    if updates.is_some() && profiling {
        return Err(
            "--profile covers a single fixpoint; it does not compose with --updates".into(),
        );
    }
    if explain_rewrite && query.is_none() {
        return Err("--explain-rewrite needs --query (it prints the magic-sets rewrite)".into());
    }
    if query.is_some() {
        if print_pred.is_some() {
            return Err(
                "--query prints only the goal's answers; it does not compose with --print".into(),
            );
        }
        if updates.is_some() {
            return Err(
                "--query runs one demand-bounded fixpoint; it does not compose with --updates \
                 (apply updates through the library's UpdateSession instead)"
                    .into(),
            );
        }
        if skew_aware {
            return Err(
                "--skew-aware tunes example3's full-closure partition; query mode already \
                 partitions on the demand key"
                    .into(),
            );
        }
        if !matches!(scheme_name.as_str(), "seq" | "naive" | "general") {
            return Err(
                "query mode supports --scheme seq, naive, or general (the magic program runs \
                 under the demand-partitioned §7 scheme)"
                    .into(),
            );
        }
    }
    let (program, db, file_queries) = load(&file)?;
    let interner = program.interner.clone();

    // `--query`: magic-sets rewrite (DESIGN.md §15). The rewritten
    // program is plain Datalog, so everything downstream — schemes,
    // transports, recovery, profiling — runs it unchanged; only the
    // partitioning choice (demand keys) and the printed relation differ.
    let query_ctx = match &query {
        None => None,
        Some(goal_src) => {
            let goal = match goal_src {
                Some(src) => parse_goal(src, &program)?,
                None => file_queries.first().cloned().ok_or(
                    "--query with no goal needs a `?- goal.` line in the program file",
                )?,
            };
            Some(
                parallel_datalog::frontend::magic_rewrite(&program, &goal)
                    .map_err(|e| e.to_string())?,
            )
        }
    };
    if let Some(rw) = &query_ctx {
        if explain_rewrite {
            print!("{}", rw.explain());
            return Ok(());
        }
    }

    // In query mode the executed program is the magic program and the
    // database carries the demand seed; keep the originals around for the
    // full-closure baseline behind `--stats`.
    let original = query_ctx.as_ref().map(|_| (program.clone(), db.clone()));
    let (program, db) = match &query_ctx {
        Some(rw) => {
            let mut seeded = db.clone();
            seeded
                .insert(
                    (rw.seed_predicate.name, rw.seed_predicate.arity),
                    rw.seed_fact.clone(),
                )
                .map_err(|e| e.to_string())?;
            (rw.program.clone(), seeded)
        }
        None => (program, db),
    };

    // Resolve what to print: the query's answer relation (under the
    // original predicate name), else explicit --print, else every
    // derived pred.
    let print_ids: Vec<(String, (gst_common::SymbolId, usize))> = match (&query_ctx, &print_pred)
    {
        (Some(rw), _) => {
            let name = interner.resolve(rw.query.predicate);
            vec![(
                format!("{name}/{}", rw.query.terms.len()),
                (rw.answer.name, rw.answer.arity),
            )]
        }
        (None, Some((name, arity))) => {
            let sym = interner
                .get(name)
                .ok_or_else(|| format!("unknown predicate `{name}`"))?;
            vec![(format!("{name}/{arity}"), (sym, *arity))]
        }
        (None, None) => program
            .derived_predicates()
            .iter()
            .map(|p| (p.display(&interner), (p.name, p.arity)))
            .collect(),
    };

    let started = std::time::Instant::now();
    let (relations, stats_line, stats_tables): (Vec<(String, Relation)>, String, String) = match scheme_name
        .as_str()
    {
        "seq" | "naive" => {
            let result = if scheme_name == "seq" {
                seminaive_eval(&program, &db)
            } else {
                naive_eval(&program, &db)
            }
            .map_err(|e| e.to_string())?;
            let rels = print_ids
                .iter()
                .map(|(label, id)| (label.clone(), result.relation(*id)))
                .collect();
            let mut line = format!(
                "rounds={} firings={} derived={} duplicates={}",
                result.stats.rounds,
                result.stats.firings,
                result.stats.derived,
                result.stats.duplicates
            );
            // Query mode: quantify the work the rewrite avoided against
            // a full-closure run of the original program.
            if let (Some((orig_program, orig_db)), true) = (&original, show_stats) {
                let full = seminaive_eval(orig_program, orig_db).map_err(|e| e.to_string())?;
                let ratio = if full.stats.firings > 0 {
                    result.stats.firings as f64 / full.stats.firings as f64
                } else {
                    0.0
                };
                line.push_str(&format!(
                    " demand_ratio={ratio:.4} firings_full={}",
                    full.stats.firings
                ));
            }
            (rels, line, String::new())
        }
        parallel => {
            let scheme = match &query_ctx {
                // Demand-keyed partitioning: every magic/adorned rule
                // discriminates on its magic guard's columns, so demand
                // tuples route to the worker owning the matching data.
                Some(rw) => compile_demand(rw, &db, workers).map_err(|e| e.to_string())?,
                None => build_scheme(parallel, &program, &db, workers, skew_aware)?,
            };
            let mut config = RuntimeConfig::default();
            config.worker.morsel_threads = morsels;
            config.worker.profile = profiling;
            if let Some(budget) = max_restarts {
                config.supervisor.max_restarts = budget;
            }
            if let Some(ms) = watchdog_ms {
                config.worker.idle_watchdog = std::time::Duration::from_millis(ms);
            }
            if let Some(ms) = restart_backoff_ms {
                config.supervisor.restart_backoff = std::time::Duration::from_millis(ms);
            }
            config.trace = show_trace || trace_out.is_some();
            if let Some(upath) = &updates {
                let stream = std::fs::read_to_string(upath)
                    .map_err(|e| format!("cannot read {upath}: {e}"))?;
                let batches = parse_updates(&stream, &program)?;
                let transport: Box<dyn Transport> = if sim {
                    let plan = FaultPlan::parse(&faults).map_err(|e| e.to_string())?;
                    Box::new(SimTransport::with_faults(seed, plan))
                } else if net {
                    Box::new(build_net_coordinator(
                        net_config.clone(),
                        net_faults.as_deref(),
                        net_kill.as_deref(),
                    )?)
                } else {
                    Box::new(ThreadedTransport)
                };
                let mut session =
                    UpdateSession::new(&scheme, &program, &db).map_err(|e| e.to_string())?;
                session
                    .initialize(transport.as_ref(), &config)
                    .map_err(|e| e.to_string())?;
                for batch in &batches {
                    let report = session
                        .apply(batch, transport.as_ref(), &config)
                        .map_err(|e| e.to_string())?;
                    if show_stats {
                        eprintln!(
                            "% round {}: +{} -{} overdeleted={} rederived={}",
                            report.round,
                            report.inserted_base,
                            report.deleted_base,
                            report.overdeleted,
                            report.rederive_seeds
                        );
                    }
                }
                let (mut sent, mut retracts, mut messages) = (0u64, 0u64, 0u64);
                let (mut restarts, mut reconnects) = (0u64, 0u64);
                for report in session.reports() {
                    for phase in report.phase_a.iter().chain(report.phase_b.iter()) {
                        sent += phase.total_tuples_sent();
                        retracts += phase.total_retract_tuples_sent();
                        messages += phase.total_messages();
                        restarts += phase.restarts;
                        reconnects += phase.reconnects;
                    }
                }
                let mode = if sim {
                    format!(" sim seed={seed} faults={faults}")
                } else if net {
                    format!(" net reconnects={reconnects}")
                } else {
                    String::new()
                };
                let recovery = if restarts > 0 {
                    format!(" restarts={restarts}")
                } else {
                    String::new()
                };
                let rels = print_ids
                    .iter()
                    .map(|(label, id)| (label.clone(), session.answer(*id)))
                    .collect();
                return finish_run(
                    rels,
                    format!(
                        "processors={} update_rounds={} tuples_sent={} retract_tuples_sent={} messages={}{recovery}{mode}",
                        scheme.processors(),
                        session.rounds().saturating_sub(1),
                        sent,
                        retracts,
                        messages
                    ),
                    String::new(),
                    &interner,
                    &scheme_name,
                    show_stats,
                    started,
                );
            }
            let outcome = if sim {
                let plan = FaultPlan::parse(&faults).map_err(|e| e.to_string())?;
                if config.trace {
                    let transport = SimTransport::with_faults(seed, plan);
                    let (result, trace) =
                        transport.run_traced(scheme.workers.clone(), &config);
                    match result {
                        Ok(outcome) => outcome,
                        Err(e) => {
                            // A failed run has no journal; the raw simulation
                            // schedule still shows the fault that killed it.
                            eprint!("{trace}");
                            return Err(e.to_string());
                        }
                    }
                } else {
                    scheme
                        .run_simulated_with(seed, plan, &config)
                        .map_err(|e| e.to_string())?
                }
            } else if net {
                let coordinator = build_net_coordinator(
                    net_config.clone(),
                    net_faults.as_deref(),
                    net_kill.as_deref(),
                )?;
                coordinator
                    .execute(scheme.workers.clone(), &config)
                    .map_err(|e| e.to_string())?
            } else {
                scheme.execute(&config).map_err(|e| e.to_string())?
            };
            if show_trace {
                eprint!("{}", outcome.journal);
            }
            if let Some(path) = &trace_out {
                write_chrome_trace(path, &outcome.journal)?;
            }
            if profiling {
                use parallel_datalog::runtime::{ProfileReport, TimeBase};
                // Sim profiles count deterministic work proxies (virtual
                // ticks); threaded and net profiles count wall micros.
                let base = if sim { TimeBase::VirtualTicks } else { TimeBase::WallMicros };
                match ProfileReport::build(&outcome.stats, base) {
                    Some(report) => {
                        // Magic/adorned rules keep their source indices in
                        // the processor program (sending rules come after),
                        // so the rewrite's provenance labels line up.
                        let report = match &query_ctx {
                            Some(rw) => report.with_rule_labels(
                                rw.rules.iter().map(|info| info.label()).collect(),
                            ),
                            None => report,
                        };
                        if show_profile {
                            for line in report.render_human().lines() {
                                eprintln!("% {line}");
                            }
                        }
                        if let Some(path) = &profile_json {
                            write_text(path, &report.to_json())?;
                        }
                        if let Some(path) = &metrics_out {
                            write_text(path, &report.to_prometheus())?;
                        }
                    }
                    None => eprintln!("% profile: no worker reported phase timers"),
                }
            }
            let mode = if sim {
                format!(" sim seed={seed} faults={faults}")
            } else if net {
                format!(
                    " net reconnects={} relay_bytes={}",
                    outcome.stats.reconnects, outcome.stats.relay_bytes
                )
            } else {
                String::new()
            };
            let recovery = if outcome.stats.restarts > 0 {
                format!(
                    " restarts={} replayed={} stale_dropped={}",
                    outcome.stats.restarts,
                    outcome.stats.total_replayed_batches(),
                    outcome.stats.total_stale_dropped()
                )
            } else {
                String::new()
            };
            // Per-worker firing balance (max/mean), plus the skew/morsel
            // counters when those features are engaged: hot_keys_split
            // comes from compile time, the morsel counters from the
            // workers' engines.
            let extra = {
                let firings: Vec<u64> = outcome
                    .stats
                    .workers
                    .iter()
                    .map(|w| w.processing_firings)
                    .collect();
                let max = firings.iter().copied().max().unwrap_or(0);
                let mean = firings.iter().sum::<u64>() as f64 / firings.len().max(1) as f64;
                let skew = if mean > 0.0 { max as f64 / mean } else { 0.0 };
                let mut s = format!(
                    " firing_skew={skew:.2} utilization={:.2}",
                    outcome.stats.utilization()
                );
                if skew_aware {
                    s.push_str(&format!(" hot_keys_split={}", scheme.hot_keys_split));
                }
                if morsels > 1 {
                    let runs: u64 =
                        outcome.stats.workers.iter().map(|w| w.eval.morsel_runs).sum();
                    let chunks: u64 =
                        outcome.stats.workers.iter().map(|w| w.eval.morsel_chunks).sum();
                    s.push_str(&format!(" morsel_runs={runs} morsel_chunks={chunks}"));
                }
                s
            };
            // Query mode: quantify the work and traffic the rewrite
            // avoided against a full-closure parallel run (threaded §7
            // scheme on the original program, same worker count).
            let extra = match (&original, show_stats) {
                (Some((orig_program, orig_db)), true) => {
                    let full = build_scheme("general", orig_program, orig_db, workers, false)?
                        .run()
                        .map_err(|e| e.to_string())?;
                    let (mf, ff) =
                        (outcome.stats.total_firings(), full.stats.total_firings());
                    let (mb, fb) =
                        (outcome.stats.total_bytes_sent(), full.stats.total_bytes_sent());
                    let ratio = if ff > 0 { mf as f64 / ff as f64 } else { 0.0 };
                    format!(
                        "{extra} demand_ratio={ratio:.4} firings={mf}/{ff} bytes={mb}/{fb}"
                    )
                }
                _ => extra,
            };
            let rels = print_ids
                .iter()
                .map(|(label, id)| (label.clone(), outcome.relation(*id)))
                .collect();
            let tables = if show_stats {
                format!(
                    "{}{}{}{}",
                    render_channel_matrix(&outcome.stats.channel_matrix),
                    render_wire_table(&outcome.stats),
                    render_round_table(&outcome.stats),
                    render_busy_table(&outcome.stats)
                )
            } else {
                String::new()
            };
            (
                rels,
                format!(
                    "processors={} tuples_sent={} messages={} processing_firings={} wall={:?}{extra}{recovery}{mode}",
                    scheme.processors(),
                    outcome.stats.total_tuples_sent(),
                    outcome.stats.total_messages(),
                    outcome.stats.total_processing_firings(),
                    outcome.stats.wall_time
                ),
                tables,
            )
        }
    };
    // The adorned relation also holds answers for transitively demanded
    // bindings; keep exactly the tuples matching the query's constants.
    let relations = match &query_ctx {
        Some(rw) => {
            let mut filtered = Vec::with_capacity(relations.len());
            for (label, rel) in relations {
                let mut out = Relation::new(rw.answer.arity);
                for t in rel.iter() {
                    if rw.answer_matches(t) {
                        out.insert(t.clone()).map_err(|e| e.to_string())?;
                    }
                }
                filtered.push((label, out));
            }
            filtered
        }
        None => relations,
    };
    finish_run(
        relations,
        stats_line,
        stats_tables,
        &interner,
        &scheme_name,
        show_stats,
        started,
    )
}

/// Parse a goal atom like `anc(1, X)` against a program's interner, by
/// wrapping it in a throwaway rule (so constants unify with the
/// program's symbols).
fn parse_goal(goal_src: &str, program: &Program) -> std::result::Result<Atom, String> {
    let wrapped = format!("goal__ :- {goal_src}.");
    let unit =
        parallel_datalog::frontend::parser::parse_program_with(&wrapped, &program.interner)
            .map_err(|e| format!("bad goal `{goal_src}`: {e}"))?;
    let goal = unit.program.rules[0].body_atoms().next().cloned();
    goal.ok_or_else(|| format!("bad goal `{goal_src}`: no atom"))
}

/// Build the TCP coordinator behind `--net`: this very binary re-executed
/// in `net-worker` mode, one process per worker, over loopback.
fn build_net_coordinator(
    net_config: parallel_datalog::runtime::NetConfig,
    net_faults: Option<&str>,
    net_kill: Option<&str>,
) -> std::result::Result<parallel_datalog::runtime::NetCoordinator, String> {
    use parallel_datalog::runtime::{KillSpec, NetCoordinator, NetFaultPlan, ProcessLauncher};
    let program = std::env::current_exe()
        .map_err(|e| format!("cannot locate this executable for worker spawns: {e}"))?;
    let launcher = ProcessLauncher { program, prefix: vec!["net-worker".into()] };
    let mut coordinator = NetCoordinator::new(Arc::new(launcher), net_config);
    if let Some(plan) = net_faults {
        coordinator =
            coordinator.with_faults(NetFaultPlan::parse(plan).map_err(|e| e.to_string())?);
    }
    if let Some(spec) = net_kill {
        coordinator = coordinator.with_kill(KillSpec::parse(spec).map_err(|e| e.to_string())?);
    }
    Ok(coordinator)
}

/// `pdatalog net-worker --connect HOST:PORT --index I ...` — the worker
/// mode `--net` coordinators spawn. Connects back, receives its job over
/// the socket, runs the fixpoint, and ships its pooled slice; never
/// invoked by hand except to debug the handshake.
fn cmd_net_worker(args: Vec<String>) -> std::result::Result<(), String> {
    let parsed = parallel_datalog::runtime::NetWorkerArgs::parse(&args)
        .map_err(|e| format!("{e}\n{}", usage()))?;
    parallel_datalog::runtime::run_net_worker(
        &parsed,
        Some(parallel_datalog::core::prelude::decode_constraint),
    )
    .map_err(|e| e.to_string())
}

/// Shared tail of `cmd_run`: print the relations and the stats footer.
#[allow(clippy::too_many_arguments)]
fn finish_run(
    relations: Vec<(String, Relation)>,
    stats_line: String,
    stats_tables: String,
    interner: &Interner,
    scheme_name: &str,
    show_stats: bool,
    started: std::time::Instant,
) -> std::result::Result<(), String> {
    let elapsed = started.elapsed();
    for (label, rel) in &relations {
        println!("% {label}: {} tuples", rel.len());
        let name = label.split('/').next().unwrap_or(label);
        for t in rel.sorted() {
            let cols: Vec<String> = t.iter().map(|v| v.display(interner)).collect();
            println!("{name}({}).", cols.join(", "));
        }
    }
    if show_stats {
        eprintln!("% scheme={scheme_name} {stats_line} total={elapsed:?}");
        eprint!("{stats_tables}");
    }
    Ok(())
}

/// Parse an `--updates` stream: one `+fact(…).`, `-fact(…).`, or
/// `commit.` directive per line (`%` comments, trailing `.` optional).
/// Each `commit` closes one [`UpdateBatch`]; a trailing uncommitted
/// group becomes a final implicit batch.
fn parse_updates(
    src: &str,
    program: &Program,
) -> std::result::Result<Vec<UpdateBatch>, String> {
    let mut batches = Vec::new();
    let mut current = UpdateBatch::default();
    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('%').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let line = line.strip_suffix('.').unwrap_or(line).trim();
        if line == "commit" {
            if !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            continue;
        }
        let (insert, fact_src) = match line.chars().next() {
            Some('+') => (true, line[1..].trim()),
            Some('-') => (false, line[1..].trim()),
            _ => {
                return Err(format!(
                    "updates line {lineno}: expected `+fact(…)`, `-fact(…)`, or `commit`, got `{raw}`"
                ))
            }
        };
        // Parse the fact by wrapping it in a throwaway rule over the
        // program's interner, so constants unify with its symbols.
        let wrapped = format!("upd__ :- {fact_src}.");
        let unit =
            parallel_datalog::frontend::parser::parse_program_with(&wrapped, &program.interner)
                .map_err(|e| format!("updates line {lineno}: {e}"))?;
        let atom = unit.program.rules[0]
            .body_atoms()
            .next()
            .ok_or_else(|| format!("updates line {lineno}: no atom in `{fact_src}`"))?
            .clone();
        let mut values = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match term {
                Term::Const(c) => values.push(*c),
                Term::Var(_) => {
                    return Err(format!(
                        "updates line {lineno}: update facts must be ground, got `{fact_src}`"
                    ))
                }
            }
        }
        let id = (atom.predicate, atom.terms.len());
        let tuple = Tuple::new(&values);
        if insert {
            current.inserts.push((id, tuple));
        } else {
            current.deletes.push((id, tuple));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

/// Write the journal as Chrome trace-event JSON, creating parent dirs.
fn write_chrome_trace(
    path: &str,
    journal: &parallel_datalog::runtime::Journal,
) -> std::result::Result<(), String> {
    write_text(path, &journal.chrome_trace())
}

/// Write a text artifact (trace JSON, profile JSON, metrics), creating
/// parent directories as needed.
fn write_text(path: &str, text: &str) -> std::result::Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Per-worker wall-clock busy time (time spent inside `step`, measured
/// identically on every transport) against the slowest worker.
fn render_busy_table(stats: &parallel_datalog::runtime::ParallelStats) -> String {
    use std::fmt::Write;
    let max = stats.workers.iter().map(|w| w.busy).max().unwrap_or_default();
    if max.is_zero() {
        return String::new();
    }
    let mut out = String::from("% worker busy (wall time inside step; 100% = slowest worker):\n");
    for w in &stats.workers {
        let pct = 100.0 * w.busy.as_secs_f64() / max.as_secs_f64();
        let _ = writeln!(
            out,
            "% {:>6} {:>12?} {:>5.1}%",
            format!("w{}", w.processor),
            w.busy,
            pct
        );
    }
    let _ = writeln!(
        out,
        "% {:>6} utilization={:.2} (mean busy / max busy)",
        "total",
        stats.utilization()
    );
    out
}

/// The `channel_matrix[i][j]` table: rows are senders, columns receivers.
fn render_channel_matrix(matrix: &[Vec<u64>]) -> String {
    use std::fmt::Write;
    let mut out = String::from("% channel matrix (tuples sender -> receiver):\n");
    let width = matrix
        .iter()
        .flatten()
        .map(|v| v.to_string().len())
        .max()
        .unwrap_or(1)
        .max(format!("->w{}", matrix.len().saturating_sub(1)).len());
    let _ = write!(out, "% {:>6}", "");
    for j in 0..matrix.len() {
        let _ = write!(out, " {:>width$}", format!("->w{j}"));
    }
    out.push('\n');
    for (i, row) in matrix.iter().enumerate() {
        let _ = write!(out, "% {:>6}", format!("w{i}"));
        for &v in row {
            let _ = write!(out, " {v:>width$}");
        }
        out.push('\n');
    }
    out
}

/// Per-worker wire-codec effectiveness: how many times each worker ran
/// the columnar encoder (one per shared channel per fixpoint, not one
/// per destination), the encoded bytes it shipped, and the compression
/// ratio versus the row-format wire cost of the same tuples.
fn render_wire_table(stats: &parallel_datalog::runtime::ParallelStats) -> String {
    use std::fmt::Write;
    if stats.total_encode_calls() == 0 {
        return String::new();
    }
    let mut out =
        String::from("% wire codec (encodes = one per shared channel, ratio = row-format/encoded):\n");
    let _ = writeln!(
        out,
        "% {:>6} {:>8} {:>12} {:>12} {:>7}",
        "", "encodes", "bytes", "raw bytes", "ratio"
    );
    for w in &stats.workers {
        let ratio = if w.encoded_bytes > 0 {
            w.encoded_raw_bytes as f64 / w.encoded_bytes as f64
        } else {
            1.0
        };
        let _ = writeln!(
            out,
            "% {:>6} {:>8} {:>12} {:>12} {:>6.2}x",
            format!("w{}", w.processor),
            w.encode_calls,
            w.encoded_bytes,
            w.encoded_raw_bytes,
            ratio
        );
    }
    let _ = writeln!(
        out,
        "% {:>6} {:>8} {:>12} {:>12} {:>6.2}x",
        "total",
        stats.total_encode_calls(),
        stats.total_encoded_bytes(),
        stats.workers.iter().map(|w| w.encoded_raw_bytes).sum::<u64>(),
        stats.compression_ratio()
    );
    out
}

/// Per-round delta sizes: fresh tuples per worker per semi-naive round,
/// plus the channel tuples shipped that round (the §6 trade-off as a
/// time series).
fn render_round_table(stats: &parallel_datalog::runtime::ParallelStats) -> String {
    use std::fmt::Write;
    let rounds = stats
        .workers
        .iter()
        .map(|w| w.eval.per_round.len())
        .max()
        .unwrap_or(0);
    if rounds == 0 {
        return String::new();
    }
    let mut out = String::from("% per-round deltas (fresh tuples per worker, sent = shipped that round):\n");
    let _ = write!(out, "% {:>6}", "round");
    for w in &stats.workers {
        let _ = write!(out, " {:>8}", format!("w{}", w.processor));
    }
    let _ = writeln!(out, " {:>8}", "sent");
    for r in 0..rounds {
        let _ = write!(out, "% {r:>6}");
        let mut sent = 0u64;
        for w in &stats.workers {
            match w.eval.per_round.get(r) {
                Some(sample) => {
                    let _ = write!(out, " {:>8}", sample.fresh);
                }
                None => {
                    let _ = write!(out, " {:>8}", "-");
                }
            }
            sent += w
                .sent_per_round
                .iter()
                .filter(|(round, _)| *round == r as u64)
                .map(|(_, t)| t)
                .sum::<u64>();
        }
        let _ = writeln!(out, " {sent:>8}");
    }
    out
}

fn build_scheme(
    name: &str,
    program: &Program,
    db: &Database,
    workers: usize,
    skew_aware: bool,
) -> std::result::Result<parallel_datalog::core::schemes::CompiledScheme, String> {
    use parallel_datalog::core::schemes::BaseDistribution;
    let err = |e: Error| e.to_string();
    if skew_aware {
        // Same discriminating choice as example3, but with EDB key
        // frequencies sampled at compile time and hot keys split across
        // processors (§6 R_i; DESIGN.md §13).
        let sirup = LinearSirup::from_program(program).map_err(err)?;
        return skew_aware_hash_partition(&sirup, workers, db, &SkewPolicy::default())
            .map_err(err);
    }
    match name {
        "example1" => {
            let sirup = LinearSirup::from_program(program).map_err(err)?;
            example1_wolfson(&sirup, workers, db).map_err(err)
        }
        "example2" => {
            let sirup = LinearSirup::from_program(program).map_err(err)?;
            let source = sirup.source;
            let base = db
                .relation((source.name, source.arity))
                .ok_or("example2 needs facts for the base relation")?;
            let frag = round_robin_fragment(base, workers).map_err(err)?;
            example2_valduriez(&sirup, frag, db).map_err(err)
        }
        "example3" => {
            let sirup = LinearSirup::from_program(program).map_err(err)?;
            example3_hash_partition(&sirup, workers, db).map_err(err)
        }
        "nocomm" => {
            let sirup = LinearSirup::from_program(program).map_err(err)?;
            // Split the exit substitutions on the first exit-body variable.
            let v = sirup
                .exit_rule()
                .body_atoms()
                .flat_map(|a| a.variables().collect::<Vec<_>>())
                .next()
                .ok_or("nocomm needs a variable in the exit body")?;
            let cfg = NoCommConfig {
                v_e: vec![v],
                h_prime: Arc::new(HashMod::new(workers, 0xC11)),
            };
            rewrite_no_comm(&sirup, &cfg, db).map_err(err)
        }
        "general" => {
            let h: DiscriminatorRef = Arc::new(HashMod::new(workers, 0xC17));
            let choices: Vec<RuleChoice> = program
                .rules
                .iter()
                .map(|rule| {
                    let v = rule
                        .body_atoms()
                        .flat_map(|a| a.variables().collect::<Vec<_>>())
                        .next()
                        .ok_or("general scheme needs a variable per rule body")?;
                    Ok(RuleChoice {
                        v: vec![v],
                        h: h.clone(),
                    })
                })
                .collect::<std::result::Result<_, String>>()?;
            rewrite_general(program, &choices, db, BaseDistribution::Shared).map_err(err)
        }
        other => Err(format!("unknown scheme `{other}`")),
    }
}

/// `pdatalog query file.dl "anc(1, X)"`: evaluate, then print the
/// bindings of the goal's variables (and `true`/`false` for ground
/// goals).
fn cmd_query(args: Vec<String>) -> std::result::Result<(), String> {
    let mut it = args.into_iter().filter(|a| !a.starts_with('-'));
    let file = it.next().ok_or("missing input file")?;
    let goal_src = it.next().ok_or("missing goal, e.g. \"anc(1, X)\"")?;
    let (program, db, _queries) = load(&file)?;
    let goal = parse_goal(&goal_src, &program)?;
    let goal_id = (goal.predicate, goal.terms.len());

    let result = seminaive_eval(&program, &db).map_err(|e| e.to_string())?;
    // The goal may name a base relation too.
    let relation = if result.idb.contains_key(&goal_id) {
        result.relation(goal_id)
    } else {
        db.relation(goal_id)
            .cloned()
            .ok_or_else(|| format!("unknown predicate in goal: {goal_src}"))?
    };

    // Match tuples against the goal pattern.
    let mut bindings_header: Vec<String> = Vec::new();
    let mut var_positions: Vec<(usize, usize)> = Vec::new(); // (col, header idx)
    let mut seen: Vec<Variable> = Vec::new();
    for (col, term) in goal.terms.iter().enumerate() {
        if let Term::Var(v) = term {
            if !seen.contains(v) {
                seen.push(*v);
                bindings_header.push(v.name(&program.interner));
                var_positions.push((col, bindings_header.len() - 1));
            }
        }
    }

    let mut answers: Vec<Vec<String>> = Vec::new();
    'tuples: for t in relation.sorted() {
        // Constants and repeated variables must match.
        let mut bound: Vec<(Variable, Value)> = Vec::new();
        for (col, term) in goal.terms.iter().enumerate() {
            match term {
                Term::Const(c) => {
                    if t.get(col) != *c {
                        continue 'tuples;
                    }
                }
                Term::Var(v) => {
                    if let Some((_, val)) = bound.iter().find(|(bv, _)| bv == v) {
                        if *val != t.get(col) {
                            continue 'tuples;
                        }
                    } else {
                        bound.push((*v, t.get(col)));
                    }
                }
            }
        }
        answers.push(
            var_positions
                .iter()
                .map(|&(col, _)| t.get(col).display(&program.interner))
                .collect(),
        );
    }

    if bindings_header.is_empty() {
        println!("{}", if answers.is_empty() { "false" } else { "true" });
    } else if answers.is_empty() {
        println!("no answers");
    } else {
        println!("% {}", bindings_header.join(", "));
        for row in &answers {
            println!("{}", row.join(", "));
        }
        eprintln!("% {} answer(s)", answers.len());
    }
    Ok(())
}

fn cmd_analyze(args: Vec<String>) -> std::result::Result<(), String> {
    let file = args
        .iter()
        .find(|a| !a.starts_with('-'))
        .ok_or("missing input file")?;
    let (program, db, _queries) = load(file)?;
    let interner = program.interner.clone();

    println!("rules: {}", program.rules.len());
    println!("facts: {} tuples across {} relations", db.total_tuples(), db.relation_count());

    let analysis = ProgramAnalysis::new(&program).map_err(|e| e.to_string())?;
    println!(
        "base predicates:    {}",
        analysis
            .base()
            .iter()
            .map(|p| p.display(&interner))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "derived predicates: {}",
        analysis
            .derived()
            .iter()
            .map(|p| p.display(&interner))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (k, rule) in program.rules.iter().enumerate() {
        println!(
            "rule {k}: {} [{}]",
            parallel_datalog::frontend::pretty::rule(rule, &interner),
            if analysis.is_recursive_rule(k) {
                "recursive"
            } else {
                "non-recursive"
            }
        );
    }

    match LinearSirup::from_program(&program) {
        Err(e) => println!("linear sirup: no ({e})"),
        Ok(sirup) => {
            println!(
                "linear sirup: yes — t = {}, s = {}",
                sirup.target.display(&interner),
                sirup.source.display(&interner)
            );
            let graph = DataflowGraph::of(&sirup);
            println!("dataflow graph (Def. 2): {}", graph.display());
            // Compile-time advisor (§5's closing claim): ranked
            // discriminating choices per architecture preference.
            for (label, pref) in [
                ("minimize communication", ArchitecturePreference::MinimizeCommunication),
                ("minimize replication", ArchitecturePreference::MinimizeReplication),
            ] {
                if let Ok(ranked) = advise(&sirup, pref) {
                    if let Some(best) = ranked.first() {
                        let (have, possible) = best.network_density;
                        println!(
                            "advisor [{label}]: v(r) = ⟨{}⟩, v(e) = ⟨{}⟩ — {}, network {}/{}, base {}",
                            best.v_r
                                .iter()
                                .map(|v| v.name(&interner))
                                .collect::<Vec<_>>()
                                .join(", "),
                            best.v_e
                                .iter()
                                .map(|v| v.name(&interner))
                                .collect::<Vec<_>>()
                                .join(", "),
                            if best.communication_free {
                                "communication-free"
                            } else {
                                "point-to-point"
                            },
                            have,
                            possible,
                            if best.base_fragmentable {
                                "fragmentable"
                            } else {
                                "shared/replicated"
                            },
                        );
                    }
                }
            }
            match zero_comm_choice(&sirup) {
                Ok(choice) => println!(
                    "Theorem 3: communication-free with v(r) = ⟨{}⟩, v(e) = ⟨{}⟩",
                    choice
                        .v_r
                        .iter()
                        .map(|v| v.name(&interner))
                        .collect::<Vec<_>>()
                        .join(", "),
                    choice
                        .v_e
                        .iter()
                        .map(|v| v.name(&interner))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                Err(_) => println!(
                    "Theorem 3: dataflow graph is acyclic — every discriminating choice \
                     may communicate"
                ),
            }
        }
    }
    Ok(())
}

fn cmd_network(args: Vec<String>) -> std::result::Result<(), String> {
    let mut file = None;
    let mut linear_coeffs: Option<Vec<i64>> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--bits" => linear_coeffs = None,
            "--linear" => {
                let spec = it.next().ok_or("--linear needs c1,c2,...")?;
                let coeffs: std::result::Result<Vec<i64>, _> =
                    spec.split(',').map(|c| c.trim().parse()).collect();
                linear_coeffs = Some(coeffs.map_err(|_| "bad --linear coefficients")?);
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    let file = file.ok_or("missing input file")?;
    let (program, _db, _queries) = load(&file)?;
    let sirup = LinearSirup::from_program(&program).map_err(|e| e.to_string())?;

    // v(r) = variables of Ȳ; v(e) = variables of the exit head, by
    // position — the §5 examples' convention.
    let v_r: Vec<Variable> = sirup
        .recursive_args
        .iter()
        .filter_map(Term::as_var)
        .collect();
    let v_e: Vec<Variable> = sirup.exit_head.iter().filter_map(Term::as_var).collect();
    if v_r.len() != sirup.recursive_args.len() || v_e.len() != sirup.exit_head.len() {
        return Err("network derivation needs all-variable t-atoms".into());
    }

    let net = match linear_coeffs {
        Some(coeffs) => {
            if coeffs.len() != v_r.len() {
                return Err(format!(
                    "--linear needs exactly {} coefficients (the arity of v(r))",
                    v_r.len()
                ));
            }
            let h = Linear::new(BitFn::new(1), coeffs);
            println!(
                "linear function {}; P = {:?}",
                h.describe(),
                h.processor_values()
            );
            derive_network(&sirup, &v_r, &v_e, &h).map_err(|e| e.to_string())?
        }
        None => {
            let h = BitVector::new(BitFn::new(1), v_r.len());
            println!("bit-vector function {}; {} processors", h.describe(), {
                let d: &dyn Discriminator = &h;
                d.processors()
            });
            derive_network(&sirup, &v_r, &v_e, &h).map_err(|e| e.to_string())?
        }
    };
    let (have, possible) = net.density();
    println!("minimal network graph ({have} of {possible} channels):");
    println!("{}", net.display());
    Ok(())
}
