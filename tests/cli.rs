//! End-to-end tests of the `pdatalog` binary.

use std::process::Command;

fn pdatalog() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pdatalog"))
}

fn write_program(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pdatalog-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, source).unwrap();
    path
}

const ANCESTOR: &str = "anc(X,Y) :- par(X,Y).\n\
                        anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
                        par(1,2). par(2,3). par(3,4).";

#[test]
fn run_sequential_prints_the_closure() {
    let file = write_program("seq.dl", ANCESTOR);
    let out = pdatalog().args(["run"]).arg(&file).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("% anc/2: 6 tuples"), "{stdout}");
    assert!(stdout.contains("anc(1, 4)."));
    assert!(!stdout.contains("anc(4, 1)."));
}

#[test]
fn run_all_schemes_agree() {
    let file = write_program("schemes.dl", ANCESTOR);
    let mut outputs = Vec::new();
    for scheme in ["seq", "naive", "example1", "example2", "example3", "nocomm", "general"] {
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args(["--scheme", scheme, "--workers", "3"])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "scheme {scheme}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        outputs.push((scheme, String::from_utf8(out.stdout).unwrap()));
    }
    let reference = outputs[0].1.clone();
    for (scheme, stdout) in &outputs[1..] {
        assert_eq!(stdout, &reference, "scheme {scheme} output differs");
    }
}

#[test]
fn run_with_print_filter_and_stats() {
    let file = write_program("print.dl", ANCESTOR);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--print", "anc/2", "--stats", "--scheme", "example3"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("processing_firings="), "{stderr}");
}

#[test]
fn analyze_reports_sirup_and_theorem3() {
    let file = write_program("analyze.dl", ANCESTOR);
    let out = pdatalog().args(["analyze"]).arg(&file).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("linear sirup: yes"));
    assert!(stdout.contains("2 → 2"));
    assert!(stdout.contains("Theorem 3: communication-free"));
}

#[test]
fn analyze_flags_non_sirup() {
    let file = write_program(
        "nonlin.dl",
        "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), anc(Z,Y).\npar(1,2).",
    );
    let out = pdatalog().args(["analyze"]).arg(&file).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("linear sirup: no"));
}

#[test]
fn network_bits_and_linear() {
    let file = write_program(
        "net.dl",
        "p(X,Y) :- q(X,Y).\np(X,Y) :- p(Y,Z), r(X,Z).\nq(1,2).",
    );
    let out = pdatalog().args(["network"]).arg(&file).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(00) → (10)"), "{stdout}");

    let out = pdatalog()
        .args(["network"])
        .arg(&file)
        .args(["--linear", "1,-1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("P = [-1, 0, 1]"), "{stdout}");
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = pdatalog().output().unwrap();
    assert!(!out.status.success());

    let out = pdatalog().args(["run", "/nonexistent/file.dl"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let file = write_program("bad.dl", ANCESTOR);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "bogus"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scheme"));
}

#[test]
fn parse_errors_reported_with_location() {
    let file = write_program("syntax.dl", "anc(X,Y :- par(X,Y).");
    let out = pdatalog().args(["run"]).arg(&file).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn query_binds_variables() {
    let file = write_program("query.dl", ANCESTOR);
    let out = pdatalog()
        .args(["query"])
        .arg(&file)
        .arg("anc(1, X)")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("% X"));
    assert!(stdout.contains('2') && stdout.contains('4'));
}

#[test]
fn query_ground_goals_answer_true_false() {
    let file = write_program("query2.dl", ANCESTOR);
    let yes = pdatalog().args(["query"]).arg(&file).arg("anc(1, 4)").output().unwrap();
    assert_eq!(String::from_utf8_lossy(&yes.stdout).trim(), "true");
    let no = pdatalog().args(["query"]).arg(&file).arg("anc(4, 1)").output().unwrap();
    assert_eq!(String::from_utf8_lossy(&no.stdout).trim(), "false");
}

#[test]
fn query_repeated_variables_filter() {
    let file = write_program(
        "query3.dl",
        "t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(1,2). e(2,1). e(2,3).",
    );
    let out = pdatalog().args(["query"]).arg(&file).arg("t(X, X)").output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    // Self-reachable nodes: 1 and 2 (via the 1↔2 cycle).
    assert!(stdout.contains('1') && stdout.contains('2'), "{stdout}");
    assert!(!stdout.contains('3'));
}

#[test]
fn query_unknown_predicate_fails() {
    let file = write_program("query4.dl", ANCESTOR);
    let out = pdatalog().args(["query"]).arg(&file).arg("zzz(X)").output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn query_base_relation_directly() {
    let file = write_program("query5.dl", ANCESTOR);
    let out = pdatalog().args(["query"]).arg(&file).arg("par(2, X)").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains('3'));
}

#[test]
fn sample_programs_ship_and_run() {
    // The repo's examples/programs/*.dl files must stay valid.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    for (file, check) in [
        ("examples/programs/ancestor.dl", "anc("),
        ("examples/programs/chain_sirup.dl", "p("),
        ("examples/programs/org.dl", "chain("),
    ] {
        let out = pdatalog().args(["run"]).arg(root.join(file)).output().unwrap();
        assert!(
            out.status.success(),
            "{file}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            String::from_utf8_lossy(&out.stdout).contains(check),
            "{file} output missing {check}"
        );
    }
}

#[test]
fn sim_recoverable_crash_reports_restart_and_matches_sequential() {
    let file = write_program("recover.dl", ANCESTOR);
    let seq = pdatalog().args(["run"]).arg(&file).output().unwrap();
    assert!(seq.status.success());
    let reference = String::from_utf8(seq.stdout).unwrap();

    // A mid-run crash marked `recover`: the supervisor restarts the
    // worker, peers replay, and the pooled model must still match the
    // sequential closure bit-for-bit.
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args([
            "--scheme",
            "example3",
            "--workers",
            "3",
            "--sim",
            "--seed",
            "5",
            "--faults",
            "chaos,crash=1@40,recover",
            "--stats",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), reference, "recovered model differs");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("restarts=1"), "{stderr}");
    assert!(stderr.contains("faults=chaos,crash=1@40,recover"), "{stderr}");

    // Same crash with the restart budget zeroed out: fail fast (the
    // watchdog names the starved processor), never hang.
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args([
            "--scheme",
            "example3",
            "--workers",
            "3",
            "--sim",
            "--seed",
            "5",
            "--faults",
            "chaos,crash=1@40,recover",
            "--max-restarts",
            "0",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "zero restart budget must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("idle"), "{stderr}");

    // `recover` is a crash modifier, not a standalone fault.
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "example3", "--sim", "--faults", "chaos,recover"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("recover without a crash"));
}

#[test]
fn threaded_trace_out_writes_chrome_json() {
    let file = write_program("traceout.dl", ANCESTOR);
    let trace = std::env::temp_dir()
        .join("pdatalog-cli-tests")
        .join("trace_threaded.json");
    let _ = std::fs::remove_file(&trace);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "example3", "--workers", "4", "--trace-out"])
        .arg(&trace)
        .args(["--stats"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let body = std::fs::read_to_string(&trace).unwrap();
    assert!(body.starts_with("{\"traceEvents\":["), "{body}");
    assert!(body.contains("\"worker 0\""), "missing worker track: {body}");
    assert!(body.contains("\"ph\":\"B\"") && body.contains("\"ph\":\"E\""), "{body}");
    // The new --stats tables ride along on stderr.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("channel matrix"), "{stderr}");
    assert!(stderr.contains("per-round deltas"), "{stderr}");
}

#[test]
fn threaded_trace_prints_the_journal() {
    let file = write_program("tracejournal.dl", ANCESTOR);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "example3", "--workers", "2", "--trace"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("round 0 begin"), "{stderr}");
    assert!(stderr.contains("end of journal"), "{stderr}");
}

#[test]
fn sim_flags_still_require_sim_but_trace_does_not() {
    let file = write_program("traceflags.dl", ANCESTOR);
    // --seed / --faults remain simulation-only...
    for args in [vec!["--seed", "3"], vec!["--faults", "jitter"]] {
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args(["--scheme", "example3"])
            .args(&args)
            .output()
            .unwrap();
        assert!(!out.status.success());
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("only make sense with --sim"),
            "{args:?}"
        );
    }
    // ...and tracing needs a parallel run to observe.
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "seq", "--trace"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parallel scheme"));
}

#[test]
fn sim_trace_is_deterministic_per_seed() {
    let file = write_program("tracesim.dl", ANCESTOR);
    let run = || {
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args([
                "--scheme", "example3", "--workers", "3", "--sim", "--seed", "11",
                "--faults", "jitter", "--trace",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stderr).unwrap()
    };
    let first = run();
    assert!(first.contains("ticks"), "sim journal should count virtual ticks: {first}");
    assert_eq!(first, run(), "same seed must print a bit-identical journal");
}

#[test]
fn profile_flags_write_all_three_exports() {
    let file = write_program("profile.dl", ANCESTOR);
    let dir = std::env::temp_dir().join("pdatalog-cli-tests");
    let json = dir.join("profile_threaded.json");
    let metrics = dir.join("profile_threaded.prom");
    let _ = std::fs::remove_file(&json);
    let _ = std::fs::remove_file(&metrics);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "example3", "--workers", "4", "--profile", "--profile-json"])
        .arg(&json)
        .arg("--metrics-out")
        .arg(&metrics)
        .args(["--stats"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("% profile (us"), "{stderr}");
    assert!(stderr.contains("critical path"), "{stderr}");
    // The --stats footer gains the per-worker busy table and the
    // utilization figure on the summary line.
    assert!(stderr.contains("worker busy"), "{stderr}");
    assert!(stderr.contains("utilization="), "{stderr}");
    let body = std::fs::read_to_string(&json).unwrap();
    assert!(body.starts_with("{\"time_base\":\"wall_micros\""), "{body}");
    assert!(body.contains("\"hot_rules\""), "{body}");
    let prom = std::fs::read_to_string(&metrics).unwrap();
    assert!(prom.contains("pdatalog_phase_time_total{worker=\"0\",phase=\"compute\"}"), "{prom}");
    assert!(prom.contains("pdatalog_rule_time_total"), "{prom}");
}

#[test]
fn sim_profile_json_is_deterministic_per_seed() {
    let file = write_program("profilesim.dl", ANCESTOR);
    let dir = std::env::temp_dir().join("pdatalog-cli-tests");
    let run = |name: &str| {
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args([
                "--scheme", "example3", "--workers", "3", "--sim", "--seed", "11",
                "--faults", "jitter", "--profile-json",
            ])
            .arg(&path)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        std::fs::read_to_string(&path).unwrap()
    };
    let first = run("profile_sim_a.json");
    assert!(first.starts_with("{\"time_base\":\"virtual_ticks\""), "{first}");
    assert_eq!(
        first,
        run("profile_sim_b.json"),
        "same seed must export a bit-identical profile"
    );
}

#[test]
fn profile_requires_a_parallel_scheme() {
    let file = write_program("profileseq.dl", ANCESTOR);
    for flag in ["--profile", "--metrics-out"] {
        let mut cmd = pdatalog();
        cmd.args(["run"]).arg(&file).args(["--scheme", "seq", flag]);
        if flag == "--metrics-out" {
            cmd.arg("/tmp/unused.prom");
        }
        let out = cmd.output().unwrap();
        assert!(!out.status.success());
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("parallel scheme"),
            "{flag}"
        );
    }
}

#[test]
fn analyze_shows_advisor_recommendations() {
    let file = write_program("advise.dl", ANCESTOR);
    let out = pdatalog().args(["analyze"]).arg(&file).output().unwrap();
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("advisor [minimize communication]: v(r) = ⟨Y⟩"),
        "{stdout}"
    );
    assert!(
        stdout.contains("advisor [minimize replication]: v(r) = ⟨Z⟩"),
        "{stdout}"
    );
}

/// `--updates`: a live incrementally maintained session over the general
/// scheme. After a stream of insert/delete batches (two explicit commits
/// plus an implicit trailing batch whose only delete is absent, a no-op)
/// the printed model must equal a from-scratch sequential run over the
/// updated fact base, and `--stats` must report every round.
#[test]
fn updates_stream_matches_recompute_and_reports_rounds() {
    let file = write_program("updates.dl", ANCESTOR);
    let ups = write_program(
        "updates.stream",
        "% grow the chain, then cut it and heal around the cut\n\
         +par(4,5).\n\
         commit.\n\
         -par(2,3).\n\
         +par(2,5).\n\
         commit.\n\
         -par(99,100).\n",
    );
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "general", "--workers", "3", "--stats", "--updates"])
        .arg(&ups)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();

    // The same final database, recomputed from scratch sequentially.
    let final_file = write_program(
        "updates_final.dl",
        "anc(X,Y) :- par(X,Y).\n\
         anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
         par(1,2). par(3,4). par(4,5). par(2,5).",
    );
    let seq = pdatalog().args(["run"]).arg(&final_file).output().unwrap();
    assert!(seq.status.success());
    let reference = String::from_utf8(seq.stdout).unwrap();
    assert_eq!(stdout, reference, "maintained view differs from the recompute");

    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("update_rounds=3"), "{stderr}");
    assert!(stderr.contains("% round 1:"), "{stderr}");
    assert!(stderr.contains("% round 3:"), "{stderr}");
    assert!(stderr.contains("retract_tuples_sent="), "{stderr}");
}

/// `--updates` composes with the deterministic simulation transport: the
/// maintained model is the same one the threaded transport computes.
#[test]
fn updates_under_simulation_match_threaded() {
    let file = write_program("updates_sim.dl", ANCESTOR);
    let ups = write_program("updates_sim.stream", "-par(2,3).\n+par(2,4).\ncommit.\n");
    let run = |extra: &[&str]| {
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args(["--scheme", "general", "--workers", "3", "--updates"])
            .arg(&ups)
            .args(extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).unwrap()
    };
    let threaded = run(&[]);
    let simulated = run(&["--sim", "--seed", "9", "--faults", "jitter"]);
    assert_eq!(threaded, simulated, "sim and threaded sessions disagree");
}

/// `--updates` misuse fails cleanly: sequential schemes have no workers
/// to maintain state in, and a malformed stream names its line.
#[test]
fn updates_usage_errors_are_clean() {
    let file = write_program("updates_bad.dl", ANCESTOR);
    let ups = write_program("updates_bad.stream", "+par(9,10).\n");
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "seq", "--updates"])
        .arg(&ups)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("parallel scheme"), "{stderr}");

    let garbled = write_program("updates_garbled.stream", "+par(1,2).\nfrobnicate!\n");
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "general", "--workers", "2", "--updates"])
        .arg(&garbled)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("line 2"), "{stderr}");

    let nonground = write_program("updates_nonground.stream", "+par(X,2).\n");
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "general", "--workers", "2", "--updates"])
        .arg(&nonground)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("ground"), "{stderr}");
}

// ---------------------------------------------------------------------
// `--query`: demand-driven point queries via magic sets (DESIGN.md §15).
// ---------------------------------------------------------------------

/// `run --query` prints exactly the goal's answers, under the original
/// predicate name, on the sequential and the demand-partitioned
/// parallel paths alike (threaded and simulated).
#[test]
fn query_mode_prints_only_the_goals_answers() {
    let file = write_program("magic_query.dl", ANCESTOR);
    let runs: Vec<Vec<&str>> = vec![
        vec![],
        vec!["--scheme", "general", "--workers", "3"],
        vec!["--scheme", "general", "--workers", "3", "--sim", "--seed", "7", "--faults", "jitter"],
    ];
    for extra in runs {
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args(["--query", "anc(2, Y)"])
            .args(&extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{extra:?}: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8(out.stdout).unwrap();
        assert!(stdout.contains("% anc/2: 2 tuples"), "{extra:?}: {stdout}");
        assert!(stdout.contains("anc(2, 3)."), "{extra:?}: {stdout}");
        assert!(stdout.contains("anc(2, 4)."), "{extra:?}: {stdout}");
        assert!(!stdout.contains("anc(1,"), "{extra:?}: leaked non-answers: {stdout}");
        assert!(!stdout.contains("m_anc"), "{extra:?}: leaked magic relations: {stdout}");
    }
}

/// A bare `--query` takes the goal from the file's `?- goal.` line.
#[test]
fn query_mode_uses_the_files_embedded_goal() {
    let file = write_program(
        "magic_embedded.dl",
        &format!("{ANCESTOR}\n?- anc(3, Y).\n"),
    );
    let out = pdatalog().args(["run"]).arg(&file).arg("--query").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("% anc/2: 1 tuples"), "{stdout}");
    assert!(stdout.contains("anc(3, 4)."), "{stdout}");

    let bare = write_program("magic_no_goal.dl", ANCESTOR);
    let out = pdatalog().args(["run"]).arg(&bare).arg("--query").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("?- goal"), "needs a goal");
}

/// `--explain-rewrite` prints the adorned + magic program with
/// provenance comments instead of running it.
#[test]
fn explain_rewrite_prints_the_magic_program() {
    let file = write_program("magic_explain.dl", ANCESTOR);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--query", "anc(1, Y)", "--explain-rewrite"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("anc_bf(X, Y) :- m_anc_bf(X), par(X, Y)."), "{stdout}");
    assert!(stdout.contains("m_anc_bf(Z) :- m_anc_bf(X), par(X, Z)."), "{stdout}");
    assert!(stdout.contains("% anc^bf [magic r1]"), "{stdout}");
    assert!(stdout.contains("% demand seed"), "{stdout}");
}

/// `--stats` in query mode reports the work avoided against a
/// full-closure run: a non-vacuous demand_ratio on both paths.
#[test]
fn query_stats_report_demand_ratio() {
    let file = write_program("magic_stats.dl", &chain_program(20));
    for extra in [vec![], vec!["--scheme", "general", "--workers", "3"]] {
        let out = pdatalog()
            .args(["run"])
            .arg(&file)
            .args(["--query", "anc(17, Y)", "--stats"])
            .args(&extra)
            .output()
            .unwrap();
        assert!(out.status.success(), "{extra:?}: {}", String::from_utf8_lossy(&out.stderr));
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("demand_ratio=0."), "{extra:?}: {stderr}");
    }
}

/// `--profile` in query mode labels the magic/adorned rules in the
/// hot-rule table.
#[test]
fn query_profile_labels_magic_rules() {
    let file = write_program("magic_profile.dl", ANCESTOR);
    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args([
            "--query", "anc(1, Y)", "--scheme", "general", "--workers", "2",
            "--sim", "--seed", "3", "--profile",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("hot rules"), "{stderr}");
    assert!(stderr.contains("anc^bf ["), "{stderr}");
}

/// Query-mode misuse fails with a clear message.
#[test]
fn query_usage_errors_are_clean() {
    let file = write_program("magic_usage.dl", ANCESTOR);
    let cases: Vec<(Vec<&str>, &str)> = vec![
        (vec!["--query", "anc(1, Y)", "--print", "anc/2"], "--print"),
        (vec!["--explain-rewrite"], "--query"),
        (vec!["--query", "anc(1, Y)", "--scheme", "example3"], "seq, naive, or general"),
        (vec!["--query", "anc(X, Y)"], "bound argument"),
        (vec!["--query", "par(1, Y)"], "derived"),
    ];
    for (args, want) in cases {
        let out = pdatalog().args(["run"]).arg(&file).args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(want), "{args:?}: {stderr}");
    }
}

/// The shipped org chart example runs end-to-end in query mode.
#[test]
fn org_magic_example_answers_its_embedded_query() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let out = pdatalog()
        .args(["run"])
        .arg(root.join("examples/programs/org_magic.dl"))
        .args(["--query", "--scheme", "general", "--workers", "4", "--stats"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("% boss/2: 4 tuples"), "{stdout}");
    assert!(stdout.contains("boss(ivan, ceo)."), "{stdout}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("demand_ratio=0."), "{stderr}");
}

// ---------------------------------------------------------------------
// `--net`: one OS process per worker over loopback TCP (DESIGN.md §12).
// ---------------------------------------------------------------------

/// A chain long enough that every worker ships well over the fault/kill
/// byte thresholds used below (which must sit far under the minimum
/// traffic: token counts jitter run-to-run, so a threshold near the
/// total would fire only sometimes).
fn chain_program(n: i64) -> String {
    let mut src = String::from("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).\n");
    for i in 1..n {
        src.push_str(&format!("par({i},{}).\n", i + 1));
    }
    src
}

/// A deterministic pseudo-random digraph (LCG), denser than the chain.
fn random_program() -> String {
    let mut src = String::from("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\n");
    let mut state = 0xC0FFEEu64;
    for _ in 0..60 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let a = (state >> 33) % 15;
        let b = (state >> 17) % 15;
        src.push_str(&format!("e({a},{}).\n", (b + 1) % 15));
    }
    src
}

fn run_sorted(file: &std::path::Path, extra: &[&str]) -> (bool, String, String) {
    let out = pdatalog().args(["run"]).arg(file).args(extra).output().unwrap();
    let mut lines: Vec<&str> = std::str::from_utf8(&out.stdout).unwrap().lines().collect();
    lines.sort_unstable();
    (
        out.status.success(),
        lines.join("\n"),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The TCP multi-process transport computes the same least model as the
/// in-process threads, for both a chain and a random graph under two
/// rewriting schemes.
#[test]
fn net_transport_matches_threaded() {
    for (name, src, preds) in [
        ("chain", chain_program(30), "anc/2"),
        ("random", random_program(), "t/2"),
    ] {
        let file = write_program(&format!("net_{name}.dl"), &src);
        for scheme in ["example3", "general"] {
            let base = ["--scheme", scheme, "--workers", "4", "--print", preds];
            let (ok, threaded, err) = run_sorted(&file, &base);
            assert!(ok, "{name}/{scheme} threaded: {err}");
            let mut net_args = base.to_vec();
            net_args.push("--net");
            let (ok, net, err) = run_sorted(&file, &net_args);
            assert!(ok, "{name}/{scheme} net: {err}");
            assert_eq!(net, threaded, "{name}/{scheme}: --net must be bit-identical");
        }
    }
}

/// SIGKILL a live worker process mid-fixpoint (byte-counted, so it lands
/// while traffic is in flight): the supervisor restarts it, survivors
/// replay, and stdout is bit-identical to the undisturbed run.
#[test]
fn net_sigkill_mid_fixpoint_recovers_bit_exact() {
    for (name, src) in [("chain", chain_program(30)), ("random", random_program())] {
        let file = write_program(&format!("net_kill_{name}.dl"), &src);
        for scheme in ["example3", "general"] {
            let base = ["--scheme", scheme, "--workers", "4"];
            let (ok, reference, err) = run_sorted(&file, &base);
            assert!(ok, "{name}/{scheme}: {err}");
            let (ok, recovered, stderr) = run_sorted(
                &file,
                &["--scheme", scheme, "--workers", "4", "--net", "--net-kill", "1@300", "--stats"],
            );
            assert!(ok, "{name}/{scheme}: {stderr}");
            assert_eq!(
                recovered, reference,
                "{name}/{scheme}: recovery must converge to the least model"
            );
            assert!(stderr.contains("restarts=1"), "{name}/{scheme}: {stderr}");
            assert!(stderr.contains("reconnects=1"), "{name}/{scheme}: {stderr}");
        }
    }
}

/// SIGKILL during a live `--updates` session: the maintained view after
/// every batch matches the threaded run's, through the crash.
#[test]
fn net_sigkill_mid_updates_recovers_bit_exact() {
    let file = write_program("net_kill_upd.dl", &chain_program(30));
    let ups = write_program(
        "net_kill_upd.stream",
        "+par(30,31).\ncommit.\n-par(5,6).\ncommit.\n+par(5,6).\ncommit.\n",
    );
    let base = ["--scheme", "general", "--workers", "3", "--updates"];
    let out = pdatalog().args(["run"]).arg(&file).args(base).arg(&ups).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let reference = String::from_utf8(out.stdout).unwrap();

    let out = pdatalog()
        .args(["run"])
        .arg(&file)
        .args(["--scheme", "general", "--workers", "3", "--net", "--net-kill", "1@300", "--stats", "--updates"])
        .arg(&ups)
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    assert_eq!(String::from_utf8(out.stdout).unwrap(), reference);
    assert!(stderr.contains("restarts=1"), "{stderr}");
}

/// Socket-level faults on a worker's write path — clean disconnect,
/// truncated frame, garbage bytes — all recover to the exact least
/// model via restart + replay.
#[test]
fn net_socket_faults_recover_bit_exact() {
    let file = write_program("net_faults.dl", &chain_program(30));
    let (ok, reference, err) =
        run_sorted(&file, &["--scheme", "example3", "--workers", "4"]);
    assert!(ok, "{err}");
    for fault in ["1:disconnect@300", "1:truncate@300", "1:garbage@300"] {
        let (ok, recovered, stderr) = run_sorted(
            &file,
            &["--scheme", "example3", "--workers", "4", "--net", "--net-faults", fault, "--stats"],
        );
        assert!(ok, "{fault}: {stderr}");
        assert_eq!(recovered, reference, "{fault}: must match the clean run");
        assert!(stderr.contains("restarts=1"), "{fault}: {stderr}");
    }
}

/// A persistent fault (`!`) kills every incarnation: the restart budget
/// runs out and the run fails fast with the link-level cause — no hang.
/// The trip point must sit below the smallest write any incarnation can
/// make (handshake + RESULT frame): a replay-assisted restart sends very
/// little data-plane traffic, and a threshold it can duck under lets the
/// run legitimately recover instead of exhausting the budget.
#[test]
fn net_persistent_fault_fails_fast() {
    let file = write_program("net_persist.dl", &chain_program(30));
    let (ok, _, stderr) = run_sorted(
        &file,
        &["--scheme", "example3", "--workers", "4", "--net", "--net-faults", "1:disconnect@150!"],
    );
    assert!(!ok, "a persistent fault must exhaust the budget");
    assert!(
        stderr.contains("link") || stderr.contains("frame") || stderr.contains("EOF"),
        "{stderr}"
    );
}

/// `--net` misuse fails with a clear message instead of a broken fleet.
#[test]
fn net_usage_errors_are_clean() {
    let file = write_program("net_usage.dl", &chain_program(5));
    for (args, want) in [
        (vec!["--scheme", "example3", "--net", "--sim"], "exclusive"),
        (vec!["--scheme", "seq", "--net"], "parallel scheme"),
        (vec!["--scheme", "example3", "--net-kill", "1@100"], "--net"),
        (vec!["--scheme", "seq", "--watchdog-ms", "100"], "parallel scheme"),
    ] {
        let out = pdatalog().args(["run"]).arg(&file).args(&args).output().unwrap();
        assert!(!out.status.success(), "{args:?} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(want), "{args:?}: {stderr}");
    }
}
