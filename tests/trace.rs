//! Acceptance tests for the unified tracing layer (DESIGN.md §9).
//!
//! The journal is an *observation* of the run, so these tests pin the
//! two properties the exporters depend on: under the simulation
//! transport the journal is as deterministic as the run itself
//! (bit-identical for the same seed), and under both transports the
//! journal is structurally sound — globally monotone timestamps, every
//! round span closed, every worker terminating on record.

use parallel_datalog::prelude::*;
use parallel_datalog::runtime::{FaultPlan, ObsKind};
use parallel_datalog::workloads::{graphs, linear_ancestor};

fn traced_config() -> RuntimeConfig {
    RuntimeConfig {
        trace: true,
        ..RuntimeConfig::default()
    }
}

fn fixture() -> (
    parallel_datalog::workloads::Fixture,
    parallel_datalog::storage::Database,
) {
    let fx = linear_ancestor();
    let edges = graphs::random_digraph(60, 180, 7);
    let db = fx.database(&edges);
    (fx, db)
}

#[test]
fn same_seed_same_journal() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let config = traced_config();
    for seed in [0u64, 3, 11] {
        let a = scheme
            .run_simulated_with(seed, FaultPlan::chaos(), &config)
            .unwrap();
        let b = scheme
            .run_simulated_with(seed, FaultPlan::chaos(), &config)
            .unwrap();
        assert!(!a.journal.is_empty(), "traced sim run produced no events");
        assert_eq!(
            a.journal, b.journal,
            "seed {seed}: same seed must replay a bit-identical journal"
        );
        assert_eq!(a.journal.chrome_trace(), b.journal.chrome_trace());
    }
}

#[test]
fn different_seeds_differ_somewhere() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let config = traced_config();
    let journals: Vec<_> = (0..4u64)
        .map(|seed| {
            scheme
                .run_simulated_with(seed, FaultPlan::chaos(), &config)
                .unwrap()
                .journal
        })
        .collect();
    assert!(
        journals.windows(2).any(|w| w[0] != w[1]),
        "chaos fault plans across four seeds should not all produce the same schedule"
    );
}

#[test]
fn sim_journal_validates_and_every_worker_terminates() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme
        .run_simulated_with(5, FaultPlan::jitter(), &traced_config())
        .unwrap();
    outcome.journal.validate().expect("sim journal is sound");
    for w in 0..4 {
        assert!(
            outcome
                .journal
                .worker_events(w)
                .any(|e| e.kind == ObsKind::Terminated),
            "worker {w} never recorded termination"
        );
    }
}

#[test]
fn threaded_journal_validates_and_every_worker_terminates() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme.execute(&traced_config()).unwrap();
    assert!(!outcome.journal.is_empty());
    outcome.journal.validate().expect("threaded journal is sound");
    for w in 0..4 {
        assert!(
            outcome
                .journal
                .worker_events(w)
                .any(|e| e.kind == ObsKind::Terminated),
            "worker {w} never recorded termination"
        );
    }
    // The hash partition communicates on this graph; the sends must be
    // on the record with their tuple counts.
    let sent: u64 = outcome
        .journal
        .events
        .iter()
        .filter_map(|e| match e.kind {
            ObsKind::BatchSent { tuples, .. } => Some(tuples),
            _ => None,
        })
        .sum();
    assert_eq!(
        sent,
        outcome.stats.total_tuples_sent(),
        "journal send events must account for every shipped tuple"
    );
}

#[test]
fn untraced_runs_produce_no_journal() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let outcome = scheme.execute(&RuntimeConfig::default()).unwrap();
    assert!(outcome.journal.is_empty(), "tracing must be opt-in");
    let sim = scheme.run_simulated(9, FaultPlan::jitter()).unwrap();
    assert!(sim.journal.is_empty());
}

#[test]
fn traced_recovery_records_the_repair() {
    let (fx, db) = fixture();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 4, &db).unwrap();
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let plan = FaultPlan::with_recovering_crash(1, 40);
    let outcome = scheme
        .run_simulated_with(2, plan, &traced_config())
        .unwrap();
    assert!(outcome.stats.restarts >= 1, "the crash must trigger a restart");
    outcome.journal.validate().expect("recovery journal is sound");
    assert!(
        outcome
            .journal
            .events
            .iter()
            .any(|e| matches!(e.kind, ObsKind::Restarted { .. })),
        "journal must record the supervisor restart"
    );
    assert!(
        outcome
            .journal
            .events
            .iter()
            .any(|e| matches!(e.kind, ObsKind::EpochRepair { .. })),
        "journal must record the peers' epoch repair"
    );
    // Tracing must not perturb recovery semantics.
    let anc = fx.output_id();
    assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
}
