//! The paper's parallelization schemes as program rewritings.
//!
//! | Module | Paper | Scheme |
//! |---|---|---|
//! | [`nonredundant`] | §3 | `Q_i`: shared `h`, provably non-redundant |
//! | [`nocomm`] | §6 / [Wolfson 88] | `t^i`: zero communication, redundant |
//! | [`generalized`] | §6 | `R_i`: per-processor `h_i`, the trade-off spectrum |
//! | [`general`] | §7 | `T_i`: arbitrary Datalog programs |
//! | [`presets`] | §4 | Examples 1–3 ready-made for transitive closure |
//!
//! Every rewriting produces a [`CompiledScheme`]: one
//! [`gst_runtime::WorkerSpec`] per processor plus the identity of the
//! global answer predicates. Executing it runs the real multi-threaded
//! runtime and returns pooled relations plus communication statistics.

pub mod common;
pub mod demand;
pub mod general;
pub mod generalized;
pub mod nocomm;
pub mod nonredundant;
pub mod presets;

use gst_common::Result;
use gst_eval::plan::RelationId;
use gst_runtime::{
    execute_processors, ExecutionOutcome, FaultPlan, RuntimeConfig, SimTransport, Transport,
    WorkerSpec,
};

pub use common::BaseDistribution;

/// A fully compiled parallel execution plan.
#[derive(Debug, Clone)]
pub struct CompiledScheme {
    /// One spec per processor, position-indexed.
    pub workers: Vec<WorkerSpec>,
    /// The global (source-program) predicates the answer pools into.
    pub answers: Vec<RelationId>,
    /// Which rewriting produced this (for reports).
    pub kind: &'static str,
    /// Keys the compile-time skew sampler split across processors — zero
    /// for every scheme except the skew-aware preset. Surfaced in
    /// `--stats` as `hot_keys_split`.
    pub hot_keys_split: usize,
}

impl CompiledScheme {
    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.workers.len()
    }

    /// Run the scheme on the runtime.
    pub fn execute(&self, config: &RuntimeConfig) -> Result<ExecutionOutcome> {
        execute_processors(self.workers.clone(), config)
    }

    /// Run with default runtime settings.
    pub fn run(&self) -> Result<ExecutionOutcome> {
        self.execute(&RuntimeConfig::default())
    }

    /// Run in the strict, deterministic bulk-synchronous mode (the
    /// paper's phased `repeat … until` loop; see
    /// [`gst_runtime::execute_synchronous`]).
    pub fn run_synchronous(&self) -> Result<ExecutionOutcome> {
        gst_runtime::execute_synchronous(&self.workers)
    }

    /// Run under the deterministic simulation transport: all processors
    /// interleaved on one thread under a virtual clock, with the schedule
    /// and every injected fault drawn from `seed` (see
    /// [`gst_runtime::SimTransport`]). Same seed, same plan ⇒ bit-for-bit
    /// the same run.
    pub fn run_simulated(&self, seed: u64, faults: FaultPlan) -> Result<ExecutionOutcome> {
        self.run_simulated_with(seed, faults, &RuntimeConfig::default())
    }

    /// [`run_simulated`](Self::run_simulated) with explicit runtime
    /// settings — in particular the supervisor's restart budget, which
    /// governs whether a `recover`-marked crash in the fault plan is
    /// survivable.
    pub fn run_simulated_with(
        &self,
        seed: u64,
        faults: FaultPlan,
        config: &RuntimeConfig,
    ) -> Result<ExecutionOutcome> {
        SimTransport::with_faults(seed, faults).execute(self.workers.clone(), config)
    }
}
