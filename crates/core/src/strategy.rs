//! Architecture-aware scheme selection (paper §8).
//!
//! "The particular scheme used in a compiler may be dependent on the
//! underlying characteristics of the architecture e.g., computation cost
//! as opposed to communication cost." This module is that compiler
//! decision: given measured (or estimated) firing and communication
//! volumes per candidate scheme and a machine's cost ratio, pick the
//! cheapest execution.

/// Relative costs of the three resources a scheme spends: computation
/// (rule firings), communication (tuples shipped), and storage (base
/// tuples replicated or fragmented to the workers — Example 1 pays
/// `n·|base|`, Example 3 about `2·|base|`, Example 2 exactly `|base|`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one rule firing (computation).
    pub firing_cost: f64,
    /// Cost of shipping one tuple between processors (communication).
    pub tuple_send_cost: f64,
    /// Cost of storing one base tuple at one worker (replication).
    pub base_tuple_cost: f64,
}

impl CostModel {
    /// A machine where communication costs `ratio`× as much as a firing
    /// and storage is free.
    pub fn with_comm_ratio(ratio: f64) -> Self {
        CostModel {
            firing_cost: 1.0,
            tuple_send_cost: ratio,
            base_tuple_cost: 0.0,
        }
    }

    /// Additionally charge `storage` per base tuple per worker.
    pub fn with_storage_cost(mut self, storage: f64) -> Self {
        self.base_tuple_cost = storage;
        self
    }

    /// Total modeled cost of a profile.
    pub fn cost(&self, profile: &SchemeProfile) -> f64 {
        self.firing_cost * profile.firings as f64
            + self.tuple_send_cost * profile.tuples_sent as f64
            + self.base_tuple_cost * profile.base_tuples as f64
    }
}

/// Measured resource consumption of one candidate scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeProfile {
    /// Display name.
    pub name: String,
    /// Total processing-rule firings across processors.
    pub firings: u64,
    /// Total tuples shipped between distinct processors.
    pub tuples_sent: u64,
    /// Total base tuples held across all workers.
    pub base_tuples: u64,
}

impl SchemeProfile {
    /// Build a profile from an execution outcome; `scheme` supplies the
    /// per-worker base storage.
    pub fn from_run(
        name: impl Into<String>,
        scheme: &crate::schemes::CompiledScheme,
        outcome: &gst_runtime::ExecutionOutcome,
    ) -> Self {
        SchemeProfile {
            name: name.into(),
            firings: outcome.stats.total_processing_firings(),
            tuples_sent: outcome.stats.total_tuples_sent(),
            base_tuples: scheme
                .workers
                .iter()
                .map(|w| w.edb.total_tuples() as u64)
                .sum(),
        }
    }

    /// Build a profile from an execution outcome alone (no storage term).
    pub fn from_outcome(name: impl Into<String>, outcome: &gst_runtime::ExecutionOutcome) -> Self {
        SchemeProfile {
            name: name.into(),
            firings: outcome.stats.total_processing_firings(),
            tuples_sent: outcome.stats.total_tuples_sent(),
            base_tuples: 0,
        }
    }
}

/// Pick the cheapest profile under the model. Ties go to the earlier
/// entry (stable). Returns `None` on an empty slate.
pub fn choose<'a>(profiles: &'a [SchemeProfile], model: &CostModel) -> Option<&'a SchemeProfile> {
    profiles.iter().min_by(|a, b| {
        model
            .cost(a)
            .partial_cmp(&model.cost(b))
            .expect("costs are finite")
    })
}

/// The comm-cost ratio at which two profiles break even, if one exists
/// for positive ratios: solves `f_a + r·s_a = f_b + r·s_b` for `r`.
pub fn crossover(a: &SchemeProfile, b: &SchemeProfile) -> Option<f64> {
    let df = b.firings as f64 - a.firings as f64;
    let ds = a.tuples_sent as f64 - b.tuples_sent as f64;
    if ds == 0.0 {
        return None;
    }
    let r = df / ds;
    (r > 0.0).then_some(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, firings: u64, sent: u64) -> SchemeProfile {
        SchemeProfile {
            name: name.into(),
            firings,
            tuples_sent: sent,
            base_tuples: 0,
        }
    }

    #[test]
    fn cheap_communication_prefers_non_redundant() {
        // Non-redundant: fewer firings, more traffic.
        let profiles = vec![
            profile("non-redundant", 1_000, 500),
            profile("no-comm", 3_000, 0),
        ];
        let fast_net = CostModel::with_comm_ratio(0.1);
        assert_eq!(choose(&profiles, &fast_net).unwrap().name, "non-redundant");
    }

    #[test]
    fn expensive_communication_prefers_redundant() {
        let profiles = vec![
            profile("non-redundant", 1_000, 500),
            profile("no-comm", 3_000, 0),
        ];
        let slow_net = CostModel::with_comm_ratio(10.0);
        assert_eq!(choose(&profiles, &slow_net).unwrap().name, "no-comm");
    }

    #[test]
    fn crossover_sits_between_the_regimes() {
        let a = profile("non-redundant", 1_000, 500);
        let b = profile("no-comm", 3_000, 0);
        let r = crossover(&a, &b).unwrap();
        assert!((r - 4.0).abs() < 1e-9);
        // Below r, a wins; above, b wins.
        assert_eq!(
            choose(&[a.clone(), b.clone()], &CostModel::with_comm_ratio(3.9))
                .unwrap()
                .name,
            "non-redundant"
        );
        assert_eq!(
            choose(&[a, b], &CostModel::with_comm_ratio(4.1)).unwrap().name,
            "no-comm"
        );
    }

    #[test]
    fn crossover_none_for_equal_communication() {
        let a = profile("a", 10, 5);
        let b = profile("b", 20, 5);
        assert_eq!(crossover(&a, &b), None);
    }

    #[test]
    fn crossover_none_when_one_dominates() {
        // b is worse on both axes: no positive break-even ratio.
        let a = profile("a", 10, 5);
        let b = profile("b", 20, 9);
        assert_eq!(crossover(&a, &b), None);
    }

    #[test]
    fn storage_cost_penalizes_replication() {
        let mut replicated = profile("example1", 1_000, 0);
        replicated.base_tuples = 4_000; // 4 workers × full base
        let mut fragmented = profile("example3", 1_000, 300);
        fragmented.base_tuples = 1_500;
        let free_storage = CostModel::with_comm_ratio(1.0);
        assert_eq!(
            choose(&[replicated.clone(), fragmented.clone()], &free_storage)
                .unwrap()
                .name,
            "example1"
        );
        let tight_storage = CostModel::with_comm_ratio(1.0).with_storage_cost(1.0);
        assert_eq!(
            choose(&[replicated, fragmented], &tight_storage).unwrap().name,
            "example3"
        );
    }

    #[test]
    fn choose_on_empty_is_none() {
        assert!(choose(&[], &CostModel::with_comm_ratio(1.0)).is_none());
    }

    #[test]
    fn tie_breaks_stably() {
        let a = profile("first", 100, 0);
        let b = profile("second", 100, 0);
        assert_eq!(
            choose(&[a, b], &CostModel::with_comm_ratio(2.0)).unwrap().name,
            "first"
        );
    }
}
