//! Deterministic pseudo-random numbers, dependency-free.
//!
//! Everything in this workspace that needs randomness — graph generators,
//! the deterministic simulation transport's scheduler and fault injector,
//! the property-test drivers — must be *reproducible from a seed*: the
//! whole point of a seeded schedule explorer is that a failing seed can be
//! replayed bit-for-bit. A tiny local generator gives us that without an
//! external crate, and guarantees the stream never changes under us the
//! way a third-party `rand` upgrade could.
//!
//! The core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
//! state advanced by a Weyl constant and finalized with a murmur-style
//! mixer. It passes BigCrush, is trivially seedable from any `u64`
//! (including 0), and every call advances the state by a constant, so
//! streams can be split deterministically with [`SmallRng::split`].

/// A small, fast, seedable PRNG (SplitMix64). Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    state: u64,
}

const WEYL: u64 = 0x9E37_79B9_7F4A_7C15;

impl SmallRng {
    /// Deterministic generator for `seed` (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(WEYL);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A derived, statistically independent generator. Splitting then
    /// drawing is deterministic: the child stream depends only on the
    /// parent's state at the split point.
    pub fn split(&mut self) -> SmallRng {
        SmallRng::seed_from_u64(self.next_u64())
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Modulo reduction has bias ≤ `bound / 2^64` — irrelevant for
    /// scheduling and test-case generation, which is all we use it for.
    pub fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        self.next_u64() % bound
    }

    /// Uniform value in the half-open range `[lo, hi)`.
    pub fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.gen_below(range.end - range.start)
    }

    /// Uniform value in the closed range `[lo, hi]`.
    pub fn gen_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "inverted range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.gen_below(hi - lo + 1)
    }

    /// Uniform `i64` in the half-open range `[lo, hi)`.
    pub fn gen_range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.gen_below(span) as i64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// A uniformly chosen element of `xs` (`None` when empty).
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_below(xs.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert!((0..10).any(|_| a.next_u64() != b.next_u64()));
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SmallRng::seed_from_u64(0);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert_eq!(xs.len(), 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range_i64(-5..5);
            assert!((-5..5).contains(&w));
            let u = r.gen_inclusive(2, 2);
            assert_eq!(u, 2);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_edges() {
        let mut r = SmallRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        // p = 0.5 produces both outcomes over a reasonable sample.
        let flips: Vec<bool> = (0..64).map(|_| r.gen_bool(0.5)).collect();
        assert!(flips.iter().any(|&b| b) && flips.iter().any(|&b| !b));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut xs: Vec<u64> = (0..20).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<u64>>());
    }

    #[test]
    fn split_streams_are_independent_and_deterministic() {
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let mut ca = a.split();
        let mut cb = b.split();
        assert_eq!(ca.next_u64(), cb.next_u64());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
