//! A minimal, dependency-free micro-benchmark harness.
//!
//! Drop-in subset of the `criterion` API surface the bench targets use
//! (`Criterion`, `benchmark_group`, `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`), so the workspace builds and benches run with no
//! external crates. Methodology is deliberately simple: warm up once,
//! adaptively pick an iteration count targeting a fixed measurement
//! window, report mean time per iteration over `sample_size` samples.
//! Numbers are indicative, not criterion-grade statistics — the paper's
//! quantitative claims are checked by the `harness` binary's *count*
//! metrics (firings, tuples, bytes), which are schedule-exact, not timed.

use std::time::{Duration, Instant};

/// How long one measurement sample should take, roughly.
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A named benchmark group (a labeling device; samples run immediately).
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for criterion compatibility; the micro harness picks its
    /// own sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Run a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.label), |b| f(b, input));
        self
    }

    /// End the group (no-op; results print as they run).
    pub fn finish(self) {}
}

/// A benchmark's identifier, `function/parameter` style.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Warm up, calibrate the iteration count, take samples, print the mean.
fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    // Warmup + calibration: one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    const SAMPLES: u32 = 5;
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed / iters as u32;
        total += per_iter;
        best = best.min(per_iter);
    }
    let mean = total / SAMPLES;
    println!("{name:<48} mean {mean:>12.2?}   best {best:>12.2?}   ({iters} iters/sample)");
}

/// Group benchmark functions under one entry point (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::micro::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce `main` for a bench binary (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_labels() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("micro/self-test", |b| b.iter(|| runs += 1));
        assert!(runs > 0, "closure must actually execute");
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_with_input(
            BenchmarkId::new("f", 3),
            &3u64,
            |b, &x| b.iter(|| x * 2),
        );
        group.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").label, "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
