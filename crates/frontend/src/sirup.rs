//! Canonical *linear sirup* form (paper, Section 2).
//!
//! Sections 3–6 of the paper restrict attention to Datalog programs with
//! one linear recursive rule `r` and one non-recursive exit rule `e`,
//! canonically
//!
//! ```text
//! e:  t(Z̄) :- s(Z̄)
//! r:  t(X̄) :- t(Ȳ), b₁, …, b_k
//! ```
//!
//! [`LinearSirup::from_program`] recognizes this shape and extracts the
//! named pieces (`t`, `s`, `X̄`, `Ȳ`, `b₁…b_k`) that the discriminating
//! sequences and rewriting schemes refer to.

use gst_common::{Error, Result};

use crate::analysis::ProgramAnalysis;
use crate::ast::{Atom, Predicate, Program, Rule, Term, Variable};

/// A linear sirup decomposed into the paper's canonical pieces.
#[derive(Debug, Clone)]
pub struct LinearSirup {
    /// The whole program (two rules).
    pub program: Program,
    /// The derived predicate `t`.
    pub target: Predicate,
    /// The base predicate `s` of the exit rule.
    pub source: Predicate,
    /// Index of the exit rule in `program.rules`.
    pub exit_index: usize,
    /// Index of the recursive rule in `program.rules`.
    pub recursive_index: usize,
    /// `Z̄`: terms of the exit rule's head.
    pub exit_head: Vec<Term>,
    /// `X̄`: terms of the recursive rule's head.
    pub head: Vec<Term>,
    /// `Ȳ`: terms of the unique `t`-occurrence in the recursive body.
    pub recursive_args: Vec<Term>,
    /// Position of the `t`-atom within the recursive rule's body.
    pub recursive_atom_index: usize,
    /// `b₁ … b_k`: the base atoms of the recursive body, in order.
    pub base_atoms: Vec<Atom>,
}

impl LinearSirup {
    /// Recognize `program` as a linear sirup.
    ///
    /// Requirements checked (each yields an [`Error::Shape`] otherwise):
    /// exactly two rules; a single derived predicate; one non-recursive
    /// rule over base atoms only (the exit rule); one recursive rule with
    /// exactly one `t`-occurrence in its body, all other body atoms base;
    /// safety of both rules.
    pub fn from_program(program: &Program) -> Result<Self> {
        if program.rules.len() != 2 {
            return Err(Error::Shape(format!(
                "a linear sirup has exactly 2 rules, found {}",
                program.rules.len()
            )));
        }
        let analysis = ProgramAnalysis::new(program)?;
        let derived = analysis.derived();
        if derived.len() != 1 {
            return Err(Error::Shape(format!(
                "a linear sirup has exactly 1 derived predicate, found {}",
                derived.len()
            )));
        }
        let target = derived[0];

        let occurrences = |rule: &Rule| -> usize {
            rule.body_atoms().filter(|a| a.pred() == target).count()
        };
        let (exit_index, recursive_index) =
            match (occurrences(&program.rules[0]), occurrences(&program.rules[1])) {
                (0, 1) => (0usize, 1usize),
                (1, 0) => (1, 0),
                (0, 0) => {
                    return Err(Error::Shape(
                        "no recursive rule: neither body mentions the derived predicate".into(),
                    ))
                }
                _ => {
                    return Err(Error::Shape(
                        "not linear: a rule body mentions the derived predicate more than once, \
                         or both rules are recursive"
                            .into(),
                    ))
                }
            };

        let exit_rule = &program.rules[exit_index];
        let recursive_rule = &program.rules[recursive_index];

        // Exit rule: head is t, body entirely base atoms (canonically one).
        if exit_rule.head.pred() != target {
            return Err(Error::Shape("exit rule head is not the derived predicate".into()));
        }
        let exit_atoms: Vec<&Atom> = exit_rule.body_atoms().collect();
        if exit_atoms.len() != 1 {
            return Err(Error::Shape(format!(
                "canonical exit rule has exactly one base atom s(Z̄), found {}",
                exit_atoms.len()
            )));
        }
        let source = exit_atoms[0].pred();

        if recursive_rule.head.pred() != target {
            return Err(Error::Shape(
                "recursive rule head is not the derived predicate".into(),
            ));
        }

        let mut recursive_atom_index = None;
        let mut base_atoms = Vec::new();
        for (i, atom) in recursive_rule.body_atoms().enumerate() {
            if atom.pred() == target {
                recursive_atom_index = Some(i);
            } else {
                base_atoms.push(atom.clone());
            }
        }
        let recursive_atom_index =
            recursive_atom_index.expect("occurrence count checked above");
        let recursive_args = recursive_rule
            .body_atoms()
            .nth(recursive_atom_index)
            .expect("index from enumeration")
            .terms
            .clone();

        Ok(LinearSirup {
            target,
            source,
            exit_index,
            recursive_index,
            exit_head: exit_rule.head.terms.clone(),
            head: recursive_rule.head.terms.clone(),
            recursive_args,
            recursive_atom_index,
            base_atoms,
            program: program.clone(),
        })
    }

    /// The exit rule `e`.
    pub fn exit_rule(&self) -> &Rule {
        &self.program.rules[self.exit_index]
    }

    /// The recursive rule `r`.
    pub fn recursive_rule(&self) -> &Rule {
        &self.program.rules[self.recursive_index]
    }

    /// Distinct variables of the recursive rule, first-occurrence order.
    pub fn recursive_variables(&self) -> Vec<Variable> {
        self.recursive_rule().variables()
    }

    /// Distinct variables of the exit rule, first-occurrence order.
    pub fn exit_variables(&self) -> Vec<Variable> {
        self.exit_rule().variables()
    }

    /// The variables of `Ȳ` (arguments of the body `t`-atom), with
    /// constants skipped, in position order (repeats preserved).
    pub fn recursive_arg_variables(&self) -> Vec<Variable> {
        self.recursive_args.iter().filter_map(Term::as_var).collect()
    }

    /// The variables of the recursive head `X̄`, constants skipped.
    pub fn head_variables(&self) -> Vec<Variable> {
        self.head.iter().filter_map(Term::as_var).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn sirup(src: &str) -> Result<LinearSirup> {
        let unit = parse_program(src).unwrap();
        LinearSirup::from_program(&unit.program)
    }

    #[test]
    fn recognizes_ancestor() {
        let s = sirup(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).",
        )
        .unwrap();
        let i = &s.program.interner;
        assert_eq!(i.resolve(s.target.name).as_ref(), "anc");
        assert_eq!(i.resolve(s.source.name).as_ref(), "par");
        assert_eq!(s.exit_index, 0);
        assert_eq!(s.recursive_index, 1);
        assert_eq!(s.base_atoms.len(), 1);
        assert_eq!(s.recursive_atom_index, 1);
        let y: Vec<String> = s
            .recursive_arg_variables()
            .iter()
            .map(|v| v.name(i))
            .collect();
        assert_eq!(y, vec!["Z", "Y"]);
    }

    #[test]
    fn recognizes_rule_order_swapped() {
        let s = sirup(
            "anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             anc(X,Y) :- par(X,Y).",
        )
        .unwrap();
        assert_eq!(s.exit_index, 1);
        assert_eq!(s.recursive_index, 0);
    }

    #[test]
    fn recognizes_chain_sirup() {
        // Example 7 of the paper.
        let s = sirup(
            "p(U,V,W) :- s(U,V,W).\n\
             p(U,V,W) :- p(V,W,Z), q(U,Z).",
        )
        .unwrap();
        let i = &s.program.interner;
        assert_eq!(s.head.len(), 3);
        assert_eq!(s.recursive_args.len(), 3);
        let x: Vec<String> = s.head_variables().iter().map(|v| v.name(i)).collect();
        assert_eq!(x, vec!["U", "V", "W"]);
        let y: Vec<String> = s
            .recursive_arg_variables()
            .iter()
            .map(|v| v.name(i))
            .collect();
        assert_eq!(y, vec!["V", "W", "Z"]);
        assert_eq!(s.base_atoms.len(), 1);
        assert_eq!(i.resolve(s.base_atoms[0].predicate).as_ref(), "q");
    }

    #[test]
    fn rejects_nonlinear() {
        let err = sirup(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- anc(X,Z), anc(Z,Y).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("not linear"));
    }

    #[test]
    fn rejects_wrong_rule_count() {
        assert!(sirup("t(X) :- s(X).").is_err());
        assert!(sirup(
            "t(X) :- s(X).\n\
             t(X) :- t(Y), e(Y,X).\n\
             t(X) :- u(X)."
        )
        .is_err());
    }

    #[test]
    fn rejects_two_derived_predicates() {
        let err = sirup(
            "t(X) :- s(X).\n\
             u(X) :- t(X).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("derived predicate"));
    }

    #[test]
    fn rejects_no_recursion() {
        let err = sirup(
            "t(X) :- s(X).\n\
             t(X) :- u(X).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("derived predicate"));
    }

    #[test]
    fn rejects_multi_atom_exit_rule() {
        let err = sirup(
            "t(X,Y) :- s(X,Y), u(Y).\n\
             t(X,Y) :- t(X,Z), e(Z,Y).",
        )
        .unwrap_err();
        assert!(err.to_string().contains("exactly one base atom"));
    }

    #[test]
    fn multiple_base_atoms_in_recursive_rule() {
        let s = sirup(
            "t(X,Y) :- s(X,Y).\n\
             t(X,Y) :- a(X,U), t(U,V), b(V,Y).",
        )
        .unwrap();
        assert_eq!(s.base_atoms.len(), 2);
        assert_eq!(s.recursive_atom_index, 1);
    }

    #[test]
    fn accessor_rules_match_indexes() {
        let s = sirup(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).",
        )
        .unwrap();
        assert_eq!(s.exit_rule(), &s.program.rules[0]);
        assert_eq!(s.recursive_rule(), &s.program.rules[1]);
        assert_eq!(s.recursive_variables().len(), 3);
        assert_eq!(s.exit_variables().len(), 2);
    }
}
