//! Acceptance sweep for the deterministic simulation transport.
//!
//! The paper's Theorems 1/2 quantify over *schedules*: the per-processor
//! programs compute the sequential least model no matter how the
//! asynchronous transport interleaves steps and deliveries. The OS
//! scheduler only ever shows us a handful of interleavings; the
//! [`SimTransport`] shows us one per seed. These tests sweep 200 seeds
//! per workload × scheme combination — half under pure reordering
//! (`jitter`), half under reordering + duplication + bounded
//! drop-with-redelivery + stalls (`chaos`) — and require agreement with
//! sequential semi-naive evaluation on every single seed.

use std::sync::Arc;

use parallel_datalog::core::schemes::{BaseDistribution, CompiledScheme};
use parallel_datalog::prelude::*;
use parallel_datalog::runtime::{sweep_seeds, ExpectedModel, FaultPlan, SimTransport};
use parallel_datalog::workloads::{graphs, linear_ancestor};

/// The sequential least model, keyed by the scheme's answer predicates.
fn oracle(fx: &parallel_datalog::workloads::Fixture, edges: &Relation, scheme: &CompiledScheme)
    -> ExpectedModel
{
    let db = fx.database(edges);
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let mut expected = ExpectedModel::default();
    for &answer in &scheme.answers {
        expected.insert(answer, seq.relation(answer));
    }
    assert!(!expected.is_empty(), "scheme must pool at least one answer");
    expected
}

/// Sweep `seeds_per_plan` seeds under jitter (reordering only) and then
/// `seeds_per_plan` more under chaos (reordering + duplication + drops +
/// stalls), asserting every run reproduces the oracle.
fn sweep_both_plans(label: &str, scheme: &CompiledScheme, expected: &ExpectedModel) {
    let config = RuntimeConfig::default();
    for (plan_name, plan, seeds) in [
        ("jitter", FaultPlan::jitter(), 0..100u64),
        ("chaos", FaultPlan::chaos(), 100..200u64),
    ] {
        let report = sweep_seeds(&scheme.workers, &config, &plan, seeds, expected);
        assert_eq!(report.seeds_run, 100);
        assert!(
            report.all_passed(),
            "{label} under {plan_name}: {} failing seeds, first: {:?}",
            report.failures.len(),
            report.failures.first()
        );
    }
}

/// Crash-recovery sweep (DESIGN.md §7): every seed runs under chaos
/// faults (reorder + duplicate + drop + stall) *plus* one mid-run crash
/// of worker `seed % n` that the supervisor must recover from — restart,
/// `Recover` broadcast, `AckSync`/replay handshake, ring repair. The run
/// must terminate, report the restart, and still compute the sequential
/// least model bit-for-bit. Returns the total batches replayed across the
/// sweep so communication-bearing workloads can assert replay actually
/// happened somewhere.
fn sweep_recovery(
    label: &str,
    scheme: &CompiledScheme,
    expected: &ExpectedModel,
    seeds: std::ops::Range<u64>,
    crash_time: impl Fn(u64) -> u64,
) -> u64 {
    let n = scheme.processors();
    let mut replayed = 0u64;
    for seed in seeds {
        let crash_at = crash_time(seed);
        let plan = FaultPlan::with_recovering_crash((seed as usize) % n, crash_at);
        let outcome = scheme
            .run_simulated(seed, plan)
            .unwrap_or_else(|e| panic!("{label} seed {seed}: recovery run failed: {e}"));
        assert!(
            outcome.stats.restarts >= 1,
            "{label} seed {seed}: the crash at t={crash_at} never triggered a restart"
        );
        replayed += outcome.stats.total_replayed_batches();
        for (&pred, want) in expected {
            assert!(
                outcome.relation(pred).set_eq(want),
                "{label} seed {seed}: recovered model diverges from the sequential one"
            );
        }
    }
    replayed
}

/// §4 Example 3 (the §3 non-redundant scheme with `v(r)=⟨Z⟩`) on a chain.
fn chain_example3() -> (CompiledScheme, ExpectedModel) {
    let fx = linear_ancestor();
    let edges = graphs::chain(8);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 3, &db).unwrap();
    let expected = oracle(&fx, &edges, &scheme);
    (scheme, expected)
}

/// §4 Example 1 (zero-communication choice) on a grid.
fn grid_example1() -> (CompiledScheme, ExpectedModel) {
    let fx = linear_ancestor();
    let edges = graphs::grid(3, 4);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example1_wolfson(&sirup, 4, &db).unwrap();
    let expected = oracle(&fx, &edges, &scheme);
    (scheme, expected)
}

/// The §3 scheme with an explicit discriminating choice on a random
/// digraph (cycles, diamonds, unreachable nodes).
fn random_nonredundant() -> (CompiledScheme, ExpectedModel) {
    let fx = linear_ancestor();
    let edges = graphs::random_digraph(8, 16, 3);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let z = Variable(fx.program.interner.get("Z").unwrap());
    let x = Variable(fx.program.interner.get("X").unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(2, 7));
    let cfg = NonRedundantConfig {
        v_r: vec![z],
        v_e: vec![x],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::MinimalFragments,
    };
    let scheme = rewrite_non_redundant(&sirup, &cfg, &db).unwrap();
    let expected = oracle(&fx, &edges, &scheme);
    (scheme, expected)
}

/// 200 crash-free schedules on the chain, all equal to the closure.
#[test]
fn example3_on_chain_survives_200_schedules() {
    let (scheme, expected) = chain_example3();
    sweep_both_plans("example3/chain(8)", &scheme, &expected);
}

/// Even with no channel traffic the termination ring still runs under
/// faults.
#[test]
fn example1_on_grid_survives_200_schedules() {
    let (scheme, expected) = grid_example1();
    sweep_both_plans("example1/grid(3,4)", &scheme, &expected);
}

#[test]
fn nonredundant_on_random_digraph_survives_200_schedules() {
    let (scheme, expected) = random_nonredundant();
    sweep_both_plans("nonredundant/random(8,16)", &scheme, &expected);
}

/// Tentpole acceptance: 40 crash schedules on the communication-heavy
/// chain workload, every one recovering to the exact least model. Traffic
/// flows on this workload, so the sweep as a whole must witness real
/// replay (not just restarts of an idle worker).
#[test]
fn example3_on_chain_recovers_from_40_crash_schedules() {
    let (scheme, expected) = chain_example3();
    let replayed =
        sweep_recovery("example3/chain(8)", &scheme, &expected, 0..40, |s| 40 + (s % 60));
    assert!(replayed > 0, "chain sweep must witness at least one replayed batch");
}

/// Recovery on the zero-communication scheme: nothing to replay, but the
/// restart and ring repair (epoch bump, probe relaunch) must still land
/// on the same model. With no traffic the run terminates as fast as the
/// ring can circulate (≥ 2n ticks), so the crash must land early — a ring
/// of 4 cannot finish two passes before tick 8.
#[test]
fn example1_on_grid_recovers_from_40_crash_schedules() {
    let (scheme, expected) = grid_example1();
    sweep_recovery("example1/grid(3,4)", &scheme, &expected, 40..80, |s| 2 + (s % 6));
}

#[test]
fn nonredundant_on_random_digraph_recovers_from_40_crash_schedules() {
    let (scheme, expected) = random_nonredundant();
    let replayed =
        sweep_recovery("nonredundant/random(8,16)", &scheme, &expected, 80..120, |s| {
            40 + (s % 60)
        });
    assert!(replayed > 0, "random-digraph sweep must witness at least one replayed batch");
}

/// Crash-mid-update sweep: an incremental maintenance session whose
/// every phase — the initial fixpoint, the DRed over-deletion cone, the
/// rederive/insert run — executes on a simulated transport that crashes
/// worker `seed % n` a few ticks in and recovers it (restart, `Recover`
/// broadcast, replay handshake). After every batch the maintained view
/// must still equal a from-scratch sequential recompute, and the sweep
/// as a whole must witness real restarts (the crash tick is early
/// enough to land inside the short update phases on most seeds).
#[test]
fn update_rounds_recover_from_crash_schedules() {
    let fx = linear_ancestor();
    let (anc, edge) = (fx.output_id(), fx.input_id(0));
    let edges = graphs::chain(8);
    let config = RuntimeConfig::default();
    let mut restarts = 0u64;

    for seed in 0..24u64 {
        let db = fx.database(&edges);
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, seed ^ 0x5bd1));
        let var = |name: &str| Variable(fx.program.interner.get(name).unwrap());
        let choices = vec![
            RuleChoice { v: vec![var("Y")], h: h.clone() },
            RuleChoice { v: vec![var("Z")], h },
        ];
        let scheme =
            rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let mut session = UpdateSession::new(&scheme, &fx.program, &db).unwrap();

        let plan = FaultPlan::with_recovering_crash((seed as usize) % 3, 2 + (seed % 8));
        let transport =
            SimTransport::with_faults(seed.wrapping_mul(0x9e3779b97f4a7c15), plan);
        session.initialize(&transport, &config).unwrap();

        let mut rng = SmallRng::seed_from_u64(seed);
        for round in 1..=3 {
            let live: Vec<Tuple> = session
                .edb()
                .relation(edge)
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            let mut batch = UpdateBatch::default();
            for _ in 0..rng.gen_inclusive(1, 4) {
                if rng.gen_bool(0.5) {
                    if let Some(t) = rng.choose(&live) {
                        batch.deletes.push((edge, t.clone()));
                    }
                } else {
                    let (a, b) = (rng.gen_below(12) as i64, rng.gen_below(12) as i64);
                    batch.inserts.push((edge, ituple![a, b]));
                }
            }
            session.apply(&batch, &transport, &config).unwrap();
            let oracle = seminaive_eval(&fx.program, session.edb()).unwrap();
            assert!(
                session.answer(anc).set_eq(&oracle.relation(anc)),
                "seed {seed} round {round}: view maintained across a worker crash \
                 diverges from the sequential recompute"
            );
        }
        restarts += session
            .reports()
            .iter()
            .flat_map(|r| [r.phase_a.as_ref(), r.phase_b.as_ref()])
            .flatten()
            .map(|s| s.restarts)
            .sum::<u64>();
    }
    assert!(
        restarts > 0,
        "the sweep must witness at least one recovered crash inside an update phase"
    );
}

/// Satellite property: duplicated *and* reordered batch delivery leaves
/// the least model unchanged (set-semantics idempotence). Every batch is
/// duplicated (`dup=1.0`) and delivery order is scrambled by a wide delay
/// window; the trace must actually witness duplicate deliveries, and the
/// pooled model must still equal the sequential one.
#[test]
fn duplication_and_reordering_preserve_the_least_model() {
    let fx = linear_ancestor();
    let edges = graphs::chain(8);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 3, &db).unwrap();
    let expected = oracle(&fx, &edges, &scheme);

    let plan = FaultPlan::parse("jitter,dup=1.0,min=1,max=60").unwrap();
    let config = RuntimeConfig::default();
    let mut duplicates_witnessed = 0u64;
    for seed in 0..24 {
        let sim = SimTransport::with_faults(seed, plan.clone());
        let (result, trace) = sim.run_traced(scheme.workers.clone(), &config);
        let outcome = result.unwrap();
        duplicates_witnessed += trace.duplicates();
        for (&pred, want) in &expected {
            assert!(
                outcome.relation(pred).set_eq(want),
                "seed {seed}: duplicated+reordered delivery changed the model"
            );
        }
        let dup_count: u64 = outcome.stats.workers.iter().map(|w| w.duplicate_batches).sum();
        assert_eq!(
            dup_count,
            trace.duplicates(),
            "seed {seed}: every traced duplicate must be observed (and absorbed) by a worker"
        );
    }
    assert!(
        duplicates_witnessed > 0,
        "the plan must actually inject duplicates for the property to mean anything"
    );
}

/// Acceptance: a fixed seed is bit-for-bit reproducible — same schedule
/// trace, same per-worker firing counts, same channel matrix, same final
/// model across two independent runs.
#[test]
fn fixed_seed_is_bit_for_bit_reproducible_on_a_real_scheme() {
    let fx = linear_ancestor();
    let edges = graphs::random_digraph(8, 16, 3);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let scheme = example3_hash_partition(&sirup, 3, &db).unwrap();
    let config = RuntimeConfig::default();
    let plan = FaultPlan::chaos();

    let run = |seed: u64| {
        let sim = SimTransport::with_faults(seed, plan.clone());
        let (result, trace) = sim.run_traced(scheme.workers.clone(), &config);
        (result.unwrap(), trace)
    };
    let (a, ta) = run(42);
    let (b, tb) = run(42);

    assert_eq!(ta, tb, "schedule traces differ between identical runs");
    assert_eq!(
        a.stats.channel_matrix, b.stats.channel_matrix,
        "per-channel tuple counts differ"
    );
    for (wa, wb) in a.stats.workers.iter().zip(&b.stats.workers) {
        assert_eq!(wa.eval.firings, wb.eval.firings, "worker {} firings differ", wa.processor);
        assert_eq!(wa.processing_firings, wb.processing_firings);
        assert_eq!(wa.duplicate_batches, wb.duplicate_batches);
        assert_eq!(wa.received_tuples, wb.received_tuples);
    }
    for (pred, rel) in &a.relations {
        assert!(b.relation(*pred).set_eq(rel), "final models differ on {pred:?}");
    }

    // ... and a different seed really explores a different schedule.
    let (_, tc) = run(43);
    assert_ne!(ta, tc, "different seeds should produce different traces");
}
