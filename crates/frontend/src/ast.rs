//! Abstract syntax for Datalog programs.
//!
//! The shapes follow Section 2 of the paper: a program is a finite set of
//! rules `Q :- Q1, ..., Qk`; predicate symbols split into *base*
//! (extensional) and *derived* (intensional); an atom is a predicate symbol
//! applied to terms; terms are variables or constants.
//!
//! One extension beyond the paper's surface syntax: a rule body may contain
//! [`Literal::Constraint`] items. These are the `h(v(r)) = i` conditions the
//! parallelization schemes attach to rewritten rules (paper §3, execution
//! steps 1–3). A constraint is an opaque boolean predicate over variable
//! bindings; the front end defines only the interface.

use std::fmt;
use std::sync::Arc;

use gst_common::{Interner, SymbolId, Value};

/// A variable name (interned). By convention variables start with an
/// uppercase letter or `_` in the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Variable(pub SymbolId);

impl Variable {
    /// Resolve the variable's name.
    pub fn name(self, interner: &Interner) -> String {
        interner.resolve(self.0).to_string()
    }
}

/// A predicate symbol with its arity. Two predicates are the same only if
/// both name and arity agree (`p/2` ≠ `p/3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Predicate {
    /// Interned predicate name.
    pub name: SymbolId,
    /// Number of argument positions.
    pub arity: usize,
}

impl Predicate {
    /// Construct a predicate symbol.
    pub fn new(name: SymbolId, arity: usize) -> Self {
        Predicate { name, arity }
    }

    /// Render as `name/arity`.
    pub fn display(&self, interner: &Interner) -> String {
        format!("{}/{}", interner.resolve(self.name), self.arity)
    }
}

impl From<Predicate> for (SymbolId, usize) {
    /// Storage identifies relations by `(name, arity)` pairs; this makes
    /// `Predicate` usable wherever `gst_storage::RelationId` is expected.
    fn from(p: Predicate) -> Self {
        (p.name, p.arity)
    }
}

/// A term: a variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable, e.g. `X`.
    Var(Variable),
    /// A constant, e.g. `alice` or `42`.
    Const(Value),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    pub fn as_const(&self) -> Option<Value> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var(_) => None,
        }
    }
}

/// A predicate applied to terms, e.g. `anc(X, Y)` or `par(alice, Y)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate symbol (name + arity implied by `terms.len()`).
    pub predicate: SymbolId,
    /// Argument terms, in position order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(predicate: SymbolId, terms: Vec<Term>) -> Self {
        Atom { predicate, terms }
    }

    /// The predicate symbol with arity.
    pub fn pred(&self) -> Predicate {
        Predicate::new(self.predicate, self.terms.len())
    }

    /// Iterate over the variables occurring in the atom (with repeats).
    pub fn variables(&self) -> impl Iterator<Item = Variable> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// True if every term is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| matches!(t, Term::Const(_)))
    }
}

/// The interface constraint literals implement.
///
/// A constraint is a deterministic boolean function of the bindings of its
/// [`Constraint::variables`]. The evaluator calls [`Constraint::holds`] once
/// all of those variables are bound. Implementations live in `gst-core`
/// (discriminating functions `h(v(r)) = i`).
pub trait Constraint: Send + Sync {
    /// The variables the constraint reads. The evaluator guarantees all are
    /// bound before calling [`Constraint::holds`].
    fn variables(&self) -> &[Variable];

    /// Decide the constraint given the values bound to
    /// [`Constraint::variables`], in the same order.
    fn holds(&self, bound: &[Value]) -> bool;

    /// Human-readable rendering, e.g. `h(Y, Z) = 3`.
    fn describe(&self, interner: &Interner) -> String;

    /// Serialize the constraint for a multi-process deployment, or `None`
    /// if this implementation cannot travel (the default).
    ///
    /// The front end defines only the hook: the byte format and the
    /// matching decoder live with the implementations (in `gst-core`),
    /// and a transport that needs to ship rules across an OS-process
    /// boundary turns a `None` into a clean typed error rather than
    /// silently dropping the condition.
    fn wire_encode(&self) -> Option<Vec<u8>> {
        None
    }

    /// Decide whether the constraint *could* hold given values for only a
    /// leading prefix of [`Constraint::variables`]. Used when fragmenting a
    /// base relation whose atom binds some but not all of the constraint's
    /// variables: `false` means no extension of the prefix satisfies the
    /// constraint, so the tuple can be dropped from the fragment. The
    /// default is conservative — a full binding decides exactly, anything
    /// shorter is assumed possible.
    fn may_hold_prefix(&self, bound: &[Value]) -> bool {
        if bound.len() == self.variables().len() {
            self.holds(bound)
        } else {
            true
        }
    }
}

/// A shared, immutable constraint literal.
pub type ConstraintRef = Arc<dyn Constraint>;

/// One item in a rule body: an ordinary atom or a constraint.
#[derive(Clone)]
pub enum Literal {
    /// A relational subgoal.
    Atom(Atom),
    /// An opaque boolean condition over bound variables.
    Constraint(ConstraintRef),
}

impl Literal {
    /// The atom, if this literal is one.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            Literal::Constraint(_) => None,
        }
    }

    /// Variables occurring in the literal.
    pub fn variables(&self) -> Vec<Variable> {
        match self {
            Literal::Atom(a) => a.variables().collect(),
            Literal::Constraint(c) => c.variables().to_vec(),
        }
    }
}

impl fmt::Debug for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a:?}"),
            Literal::Constraint(_) => write!(f, "<constraint>"),
        }
    }
}

impl PartialEq for Literal {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Literal::Atom(a), Literal::Atom(b)) => a == b,
            (Literal::Constraint(a), Literal::Constraint(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

/// A Datalog rule `head :- body.`. A rule with an empty body is a ground
/// fact in the surface syntax (handled by the parser as data, not rules).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// Body literals, evaluated left to right.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// Relational (atom) subgoals of the body, skipping constraints.
    pub fn body_atoms(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter_map(Literal::as_atom)
    }

    /// All distinct variables in the rule, in first-occurrence order
    /// (head first, then body left-to-right).
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = Vec::new();
        let mut push = |v: Variable| {
            if !seen.contains(&v) {
                seen.push(v);
            }
        };
        for v in self.head.variables() {
            push(v);
        }
        for lit in &self.body {
            for v in lit.variables() {
                push(v);
            }
        }
        seen
    }

    /// True if every variable of the head occurs in some body *atom*
    /// (the paper's safety requirement, Section 2).
    pub fn is_safe(&self) -> bool {
        let body_vars: Vec<Variable> = self.body_atoms().flat_map(Atom::variables).collect();
        self.head.variables().all(|v| body_vars.contains(&v))
    }
}

/// A Datalog program: rules plus the interner naming its symbols.
///
/// Base (extensional) vs derived (intensional) predicates are *computed*:
/// a predicate is derived iff it appears in some rule head (Section 2:
/// "base predicates may not appear in the head of any rule").
#[derive(Debug, Clone)]
pub struct Program {
    /// The rules, in source order. Rule indexes are stable and used by the
    /// per-rule discriminating sequences of the general scheme (§7).
    pub rules: Vec<Rule>,
    /// Interner that names every symbol in `rules`.
    pub interner: Interner,
}

impl Program {
    /// Construct a program from parts.
    pub fn new(rules: Vec<Rule>, interner: Interner) -> Self {
        Program { rules, interner }
    }

    /// All predicates appearing anywhere, base and derived, deduplicated in
    /// first-occurrence order.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut out: Vec<Predicate> = Vec::new();
        let mut push = |p: Predicate| {
            if !out.contains(&p) {
                out.push(p);
            }
        };
        for rule in &self.rules {
            push(rule.head.pred());
            for atom in rule.body_atoms() {
                push(atom.pred());
            }
        }
        out
    }

    /// Predicates appearing in some head (intensional/derived).
    pub fn derived_predicates(&self) -> Vec<Predicate> {
        let mut out: Vec<Predicate> = Vec::new();
        for rule in &self.rules {
            let p = rule.head.pred();
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }

    /// Predicates appearing only in bodies (extensional/base).
    pub fn base_predicates(&self) -> Vec<Predicate> {
        let derived = self.derived_predicates();
        self.predicates()
            .into_iter()
            .filter(|p| !derived.contains(p))
            .collect()
    }

    /// True if `p` is a derived predicate of this program.
    pub fn is_derived(&self, p: Predicate) -> bool {
        self.rules.iter().any(|r| r.head.pred() == p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Program) {
        // anc(X,Y) :- par(X,Y).
        // anc(X,Y) :- par(X,Z), anc(Z,Y).
        let i = Interner::new();
        let anc = i.intern("anc");
        let par = i.intern("par");
        let x = Variable(i.intern("X"));
        let y = Variable(i.intern("Y"));
        let z = Variable(i.intern("Z"));
        let r1 = Rule::new(
            Atom::new(anc, vec![Term::Var(x), Term::Var(y)]),
            vec![Literal::Atom(Atom::new(par, vec![Term::Var(x), Term::Var(y)]))],
        );
        let r2 = Rule::new(
            Atom::new(anc, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Literal::Atom(Atom::new(par, vec![Term::Var(x), Term::Var(z)])),
                Literal::Atom(Atom::new(anc, vec![Term::Var(z), Term::Var(y)])),
            ],
        );
        let p = Program::new(vec![r1, r2], i.clone());
        (i, p)
    }

    #[test]
    fn base_and_derived_partition() {
        let (i, p) = setup();
        let anc = Predicate::new(i.get("anc").unwrap(), 2);
        let par = Predicate::new(i.get("par").unwrap(), 2);
        assert_eq!(p.derived_predicates(), vec![anc]);
        assert_eq!(p.base_predicates(), vec![par]);
        assert!(p.is_derived(anc));
        assert!(!p.is_derived(par));
    }

    #[test]
    fn predicates_with_same_name_different_arity_are_distinct() {
        let i = Interner::new();
        let p2 = Predicate::new(i.intern("p"), 2);
        let p3 = Predicate::new(i.intern("p"), 3);
        assert_ne!(p2, p3);
    }

    #[test]
    fn rule_variables_in_first_occurrence_order() {
        let (i, p) = setup();
        let names: Vec<String> = p.rules[1]
            .variables()
            .iter()
            .map(|v| v.name(&i))
            .collect();
        assert_eq!(names, vec!["X", "Y", "Z"]);
    }

    #[test]
    fn safety_check() {
        let (i, p) = setup();
        assert!(p.rules[0].is_safe());
        assert!(p.rules[1].is_safe());
        // q(X, W) :- par(X, X).   — W unsafe.
        let q = i.intern("q");
        let par = i.get("par").unwrap();
        let x = Variable(i.get("X").unwrap());
        let w = Variable(i.intern("W"));
        let bad = Rule::new(
            Atom::new(q, vec![Term::Var(x), Term::Var(w)]),
            vec![Literal::Atom(Atom::new(par, vec![Term::Var(x), Term::Var(x)]))],
        );
        assert!(!bad.is_safe());
    }

    #[test]
    fn ground_atom_detection() {
        let i = Interner::new();
        let p = i.intern("p");
        let ground = Atom::new(p, vec![Term::Const(Value::Int(1))]);
        let open = Atom::new(p, vec![Term::Var(Variable(i.intern("X")))]);
        assert!(ground.is_ground());
        assert!(!open.is_ground());
    }

    #[test]
    fn term_accessors() {
        let i = Interner::new();
        let v = Variable(i.intern("X"));
        assert_eq!(Term::Var(v).as_var(), Some(v));
        assert_eq!(Term::Var(v).as_const(), None);
        assert_eq!(Term::Const(Value::Int(1)).as_const(), Some(Value::Int(1)));
        assert_eq!(Term::Const(Value::Int(1)).as_var(), None);
    }

    #[test]
    fn predicate_display() {
        let i = Interner::new();
        let p = Predicate::new(i.intern("anc"), 2);
        assert_eq!(p.display(&i), "anc/2");
    }
}
