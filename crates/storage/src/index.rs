//! Hash indexes over relations, as row-id postings into the row arena.
//!
//! The semi-naive join executor probes base and derived relations on the
//! columns bound by earlier subgoals. A [`HashIndex`] maps the projection
//! of each tuple onto a fixed column set to the list of matching **row
//! ids** in the source [`Relation`]'s arena — no tuple is cloned into the
//! index, neither as a key nor as a posting. Keys exist only as hashes:
//! equality on probe is verified against the projected columns of the
//! bucket's first row, so probing needs the source relation but never
//! allocates a key tuple.
//!
//! Because rows only append and the index ingests them in row order, each
//! bucket's posting list is sorted ascending. A caller that wants only
//! the rows of a sub-range of the arena — the `Old` view `rows[..k]` or
//! the delta `rows[k..]` — slices the postings with a binary search
//! instead of consulting a separate index or membership set.
//!
//! An index records the relation generation it has ingested
//! ([`HashIndex::built_at`]); since a relation's generation *is* its row
//! count, [`HashIndex::sync`] knows exactly which row range is missing
//! and catches up incrementally.

use std::hash::Hasher;

use gst_common::{FxHasher, Tuple, Value};

use crate::relation::Relation;

/// One bucket: the key's hash plus the rows whose projection matches.
/// A bucket with no rows is vacant (occupied buckets always hold ≥ 1).
#[derive(Debug, Clone, Default)]
struct Bucket {
    hash: u64,
    rows: Vec<u32>,
}

/// A hash index on a fixed set of key columns.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_columns: Vec<usize>,
    buckets: Box<[Bucket]>,
    /// Occupied buckets (distinct keys).
    keys: usize,
    /// Rows indexed across all buckets.
    entries: usize,
    /// Generation (= row count) of the source relation last ingested.
    built_at: u64,
}

/// Hash a probe key given as a value slice. Must agree with
/// [`hash_projection`] — both feed the raw values to the same hasher.
pub fn hash_key(key: &[Value]) -> u64 {
    let mut h = FxHasher::default();
    for v in key {
        std::hash::Hash::hash(v, &mut h);
    }
    h.finish()
}

/// Hash the projection of `tuple` onto `columns`.
fn hash_projection(tuple: &Tuple, columns: &[usize]) -> u64 {
    let mut h = FxHasher::default();
    for &c in columns {
        std::hash::Hash::hash(&tuple.get(c), &mut h);
    }
    h.finish()
}

impl HashIndex {
    /// Create an empty index keyed on `key_columns`.
    pub fn new(key_columns: &[usize]) -> Self {
        HashIndex {
            key_columns: key_columns.to_vec(),
            buckets: Box::default(),
            keys: 0,
            entries: 0,
            built_at: 0,
        }
    }

    /// Build an index of `relation` keyed on `key_columns`.
    ///
    /// # Panics
    /// Panics if a key column is out of range for the relation's arity
    /// (a programming error in plan compilation, not a data error).
    pub fn build(relation: &Relation, key_columns: &[usize]) -> Self {
        let mut idx = HashIndex::new(key_columns);
        idx.sync(relation);
        idx
    }

    /// The key columns this index is on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Row ids whose projection equals `key`, ascending. Missing keys
    /// yield `&[]`. `relation` must be the indexed relation: it supplies
    /// the representative tuple that verifies key equality.
    pub fn probe<'a>(&'a self, relation: &Relation, key: &[Value]) -> &'a [u32] {
        debug_assert_eq!(key.len(), self.key_columns.len());
        self.probe_hashed(relation, hash_key(key), key)
    }

    /// [`HashIndex::probe`] with the key hash precomputed by
    /// [`hash_key`] (hot paths hoist the hashing out of posting slicing).
    pub fn probe_hashed<'a>(
        &'a self,
        relation: &Relation,
        hash: u64,
        key: &[Value],
    ) -> &'a [u32] {
        if self.buckets.is_empty() {
            return &[];
        }
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let b = &self.buckets[i];
            if b.rows.is_empty() {
                return &[];
            }
            if b.hash == hash {
                let rep = relation.row(b.rows[0]);
                if self
                    .key_columns
                    .iter()
                    .zip(key)
                    .all(|(&c, v)| rep.get(c) == *v)
                {
                    return &b.rows;
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// The generation stamp of the relation when the index was last
    /// synced; compare against [`Relation::generation`] for staleness.
    pub fn built_at(&self) -> u64 {
        self.built_at
    }

    /// True if `relation` has changed since this index last ingested it.
    pub fn is_stale(&self, relation: &Relation) -> bool {
        relation.generation() != self.built_at
    }

    /// Bring the index up to date by ingesting the arena rows appended
    /// since the last sync — incremental, so keeping an index current
    /// across a fixpoint is O(total tuples), not O(rounds × tuples).
    ///
    /// If the relation was replaced wholesale (fewer rows than already
    /// ingested — never on the fixpoint hot path), the index rebuilds.
    pub fn sync(&mut self, relation: &Relation) {
        let mut start = self.built_at as usize;
        if start > relation.len() {
            self.buckets = Box::default();
            self.keys = 0;
            self.entries = 0;
            start = 0;
        }
        for row in start..relation.len() {
            // Tombstoned rows stay out of posting lists. A row that dies
            // *after* being ingested is filtered at probe-consumption
            // time instead (deletions never happen mid-evaluation, and
            // the executor re-checks liveness anyway).
            if relation.is_live(row as u32) {
                self.insert_row(relation, row as u32);
            }
        }
        self.built_at = relation.generation();
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.keys
    }

    /// Number of rows indexed.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Append `row` to its key's posting list. Rows must be fed in
    /// ascending order (as [`HashIndex::sync`] does) to keep posting
    /// lists sorted.
    fn insert_row(&mut self, relation: &Relation, row: u32) {
        // 5/8 max load: linear-probe miss chains grow ~1/(1-α)², and
        // probes for absent keys are common in semi-naive rounds.
        if self.keys * 8 >= self.buckets.len() * 5 {
            self.grow_to((self.buckets.len() * 2).max(16));
        }
        let tuple = relation.row(row);
        let hash = hash_projection(tuple, &self.key_columns);
        let mask = self.buckets.len() - 1;
        let mut i = (hash as usize) & mask;
        loop {
            let b = &self.buckets[i];
            if b.rows.is_empty() {
                break;
            }
            if b.hash == hash {
                let rep = relation.row(b.rows[0]);
                if self
                    .key_columns
                    .iter()
                    .all(|&c| rep.get(c) == tuple.get(c))
                {
                    break;
                }
            }
            i = (i + 1) & mask;
        }
        let b = &mut self.buckets[i];
        if b.rows.is_empty() {
            b.hash = hash;
            self.keys += 1;
        }
        debug_assert!(b.rows.last().is_none_or(|&r| r < row));
        b.rows.push(row);
        self.entries += 1;
    }

    /// Resize to `cap` buckets (a power of two), repositioning posting
    /// lists by their stored hashes — moves, no tuple access.
    fn grow_to(&mut self, cap: usize) {
        debug_assert!(cap.is_power_of_two() && cap > self.buckets.len());
        let old = std::mem::replace(&mut self.buckets, vec![Bucket::default(); cap].into_boxed_slice());
        let mask = cap - 1;
        for b in old.into_vec() {
            if b.rows.is_empty() {
                continue;
            }
            let mut i = (b.hash as usize) & mask;
            while !self.buckets[i].rows.is_empty() {
                i = (i + 1) & mask;
            }
            self.buckets[i] = b;
        }
    }
}

/// Restrict an ascending posting list to rows in `[start, end)` — how
/// callers realize the `Old` (`rows[..k]`) and delta (`rows[k..]`) views
/// of an arena from the single full-relation index.
pub fn postings_in_range(postings: &[u32], start: u32, end: u32) -> &[u32] {
    let lo = postings.partition_point(|&r| r < start);
    let hi = lo + postings[lo..].partition_point(|&r| r < end);
    &postings[lo..hi]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    fn sample() -> Relation {
        [
            ituple![1, 10],
            ituple![1, 11],
            ituple![2, 20],
            ituple![3, 30],
        ]
        .into_iter()
        .collect()
    }

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    /// Resolve postings to sorted tuples for assertion convenience.
    fn hits(idx: &HashIndex, rel: &Relation, k: &[i64]) -> Vec<Tuple> {
        let mut v: Vec<Tuple> = idx
            .probe(rel, &key(k))
            .iter()
            .map(|&r| rel.row(r).clone())
            .collect();
        v.sort();
        v
    }

    #[test]
    fn probe_finds_all_matches() {
        let rel = sample();
        let idx = HashIndex::build(&rel, &[0]);
        assert_eq!(hits(&idx, &rel, &[1]), vec![ituple![1, 10], ituple![1, 11]]);
        assert_eq!(hits(&idx, &rel, &[2]), vec![ituple![2, 20]]);
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let rel = sample();
        let idx = HashIndex::build(&rel, &[0]);
        assert!(idx.probe(&rel, &key(&[99])).is_empty());
    }

    #[test]
    fn index_on_second_column() {
        let rel = sample();
        let idx = HashIndex::build(&rel, &[1]);
        assert_eq!(hits(&idx, &rel, &[11]), vec![ituple![1, 11]]);
    }

    #[test]
    fn index_on_both_columns() {
        let rel = sample();
        let idx = HashIndex::build(&rel, &[1, 0]);
        assert_eq!(hits(&idx, &rel, &[10, 1]), vec![ituple![1, 10]]);
        assert!(idx.probe(&rel, &key(&[1, 10])).is_empty(), "key order matters");
    }

    #[test]
    fn empty_key_groups_everything() {
        let rel = sample();
        let idx = HashIndex::build(&rel, &[]);
        assert_eq!(idx.probe(&rel, &[]).len(), 4);
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn staleness_and_incremental_sync() {
        let mut rel = sample();
        let mut idx = HashIndex::build(&rel, &[0]);
        assert!(!idx.is_stale(&rel));
        rel.insert(ituple![1, 12]).unwrap();
        assert!(idx.is_stale(&rel));
        idx.sync(&rel);
        assert!(!idx.is_stale(&rel));
        assert_eq!(idx.probe(&rel, &key(&[1])).len(), 3);
        assert_eq!(idx.entry_count(), 5);
    }

    #[test]
    fn incremental_sync_matches_rebuild() {
        let mut rel = sample();
        let mut idx = HashIndex::build(&rel, &[0]);
        rel.insert(ituple![2, 21]).unwrap();
        idx.sync(&rel);
        let rebuilt = HashIndex::build(&rel, &[0]);
        assert_eq!(idx.probe(&rel, &key(&[2])), rebuilt.probe(&rel, &key(&[2])));
        assert_eq!(idx.entry_count(), rebuilt.entry_count());
        assert_eq!(idx.key_count(), rebuilt.key_count());
    }

    #[test]
    fn sync_on_fresh_index_is_noop() {
        let rel = sample();
        let mut idx = HashIndex::build(&rel, &[0]);
        let before = idx.built_at();
        idx.sync(&rel);
        assert_eq!(idx.built_at(), before);
    }

    #[test]
    fn sync_rebuilds_after_replacement() {
        let mut idx = HashIndex::build(&sample(), &[0]);
        let smaller: Relation = [ituple![7, 70]].into_iter().collect();
        idx.sync(&smaller);
        assert_eq!(idx.probe(&smaller, &key(&[7])), &[0]);
        assert!(idx.probe(&smaller, &key(&[1])).is_empty());
        assert_eq!(idx.entry_count(), 1);
    }

    #[test]
    fn postings_stay_sorted_through_growth() {
        let mut rel = Relation::new(2);
        for i in 0..5_000i64 {
            rel.insert(ituple![i % 13, i]).unwrap();
        }
        let idx = HashIndex::build(&rel, &[0]);
        for k0 in 0..13 {
            let postings = idx.probe(&rel, &key(&[k0]));
            assert!(postings.windows(2).all(|w| w[0] < w[1]));
            for &r in postings {
                assert_eq!(rel.row(r).get(0), Value::Int(k0));
            }
        }
        assert_eq!(idx.entry_count(), 5_000);
    }

    #[test]
    fn sync_skips_tombstoned_rows() {
        let mut rel = sample();
        rel.delete(&ituple![1, 11]);
        let idx = HashIndex::build(&rel, &[0]);
        assert_eq!(hits(&idx, &rel, &[1]), vec![ituple![1, 10]]);
        assert_eq!(idx.entry_count(), 3);
        // Incremental sync after delete + re-insert: the fresh arena row
        // is ingested, the dead one stays out.
        let mut idx2 = idx.clone();
        rel.delete(&ituple![2, 20]);
        rel.insert(ituple![2, 20]).unwrap();
        idx2.sync(&rel);
        // The old row 2 posting remains (it died after ingest — probe
        // consumers filter by liveness), and the fresh row is present.
        let postings = idx2.probe(&rel, &key(&[2]));
        assert!(postings.contains(&(rel.len() as u32 - 1)));
        let live_hits: Vec<_> = postings
            .iter()
            .copied()
            .filter(|&r| rel.is_live(r))
            .collect();
        assert_eq!(live_hits, vec![rel.len() as u32 - 1]);
    }

    #[test]
    fn postings_in_range_slices_views() {
        let postings = [2u32, 5, 9, 14];
        assert_eq!(postings_in_range(&postings, 0, u32::MAX), &postings);
        assert_eq!(postings_in_range(&postings, 0, 9), &[2, 5]);
        assert_eq!(postings_in_range(&postings, 5, 14), &[5, 9]);
        assert_eq!(postings_in_range(&postings, 15, 20), &[] as &[u32]);
    }
}
