//! Safra's colored-token termination detection, as a pure state machine.
//!
//! The paper requires detecting "the condition that all processors are
//! idle and all channels are empty" (§3, step 6) and points to the
//! distributed-computing literature (Dijkstra–Scholten, Chandy–Misra).
//! Safra's algorithm is the classic solution for this exact setting —
//! asynchronous message passing with no global clock:
//!
//! * each process keeps a **counter** (basic messages sent − received) and
//!   a **color** (black after receiving any basic message);
//! * a token circulates the ring `0 → 1 → … → n−1 → 0`, accumulating
//!   counters and turning black when it passes a black process; a process
//!   only forwards the token while *passive* and whitens itself after;
//! * the initiator (process 0) declares termination when a **white**
//!   token returns with accumulated count + its own counter equal to zero
//!   while it is itself white and passive; otherwise it launches a fresh
//!   white probe.
//!
//! Keeping the logic free of I/O makes the safety and liveness properties
//! unit-testable by simulation (see the tests below, which drive whole
//! rings of `Safra` machines through message schedules).
//!
//! ## Ring repair across crashes
//!
//! Crash recovery (see `DESIGN.md` §7) restarts a dead processor and
//! replays its inbound traffic, which invalidates every count the ring
//! has accumulated so far. The repair is epoch-based: each recovery bumps
//! a global **epoch**, every process resets its counter to the
//! replayed-traffic accounting via [`Safra::on_recover`] (counter zeroed,
//! color blackened, probe abandoned), and both tokens and processes carry
//! their epoch. A token minted before the recovery is *stale* — its
//! accumulated counts mix pre- and post-crash accounting — so
//! [`Safra::on_token`] answers [`TokenAction::Drop`] for it instead of
//! forwarding. Because the initiator's `probe_outstanding` is cleared by
//! `on_recover`, it relaunches a fresh probe tagged with the new epoch
//! once passive; at most one token of the *current* epoch can therefore
//! exist, and a dropped stale token can never race it.

/// Process/token color.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    /// No basic message received since last whitening.
    White,
    /// Received a basic message; may have invalidated the current probe.
    Black,
}

/// The circulating token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenMsg {
    /// Token color: black if any process on the path was black.
    pub color: Color,
    /// Sum of the counters of the processes the token passed.
    pub count: i64,
    /// Recovery epoch the token was minted in. A token from an earlier
    /// epoch carries pre-crash accounting and must be dropped, not
    /// forwarded.
    pub epoch: u64,
}

impl TokenMsg {
    /// Whether the token is black (some process on its path received a
    /// basic message, so this probe cannot conclude termination).
    pub fn is_black(&self) -> bool {
        self.color == Color::Black
    }
}

/// What a passive process must do after handling the token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenAction {
    /// Forward this token to the next process on the ring.
    Forward(TokenMsg),
    /// (Initiator only) the computation has terminated globally.
    Terminate,
    /// (Initiator only) probe failed; a fresh white token was launched.
    Relaunch(TokenMsg),
    /// The token predates the current recovery epoch: discard it. The
    /// current epoch's probe (relaunched after ring repair) supersedes it.
    Drop,
}

/// Per-process Safra state.
#[derive(Debug, Clone)]
pub struct Safra {
    id: usize,
    n: usize,
    color: Color,
    counter: i64,
    /// Current recovery epoch; bumped by ring repair.
    epoch: u64,
    /// Initiator only: a probe is circulating.
    probe_outstanding: bool,
}

impl Safra {
    /// State for process `id` of `n` (`id == 0` is the initiator).
    pub fn new(id: usize, n: usize) -> Self {
        assert!(n >= 1 && id < n);
        Safra {
            id,
            n,
            color: Color::White,
            counter: 0,
            epoch: 0,
            probe_outstanding: false,
        }
    }

    /// State for a process (re)started in recovery epoch `epoch`.
    pub fn with_epoch(id: usize, n: usize, epoch: u64) -> Self {
        Safra { epoch, ..Safra::new(id, n) }
    }

    /// The next process on the ring.
    pub fn next(&self) -> usize {
        (self.id + 1) % self.n
    }

    /// Record the send of one basic message.
    pub fn on_send(&mut self) {
        self.counter += 1;
    }

    /// Record the receipt of one basic message.
    pub fn on_basic_receive(&mut self) {
        self.counter -= 1;
        self.color = Color::Black;
    }

    /// Ring repair: enter recovery epoch `epoch`. The counter is zeroed
    /// (replayed traffic is re-counted from scratch in the new epoch), the
    /// process blackens (any probe observation so far is void), and an
    /// outstanding probe is abandoned — the initiator will relaunch a
    /// fresh token tagged with the new epoch once passive.
    pub fn on_recover(&mut self, epoch: u64) {
        debug_assert!(epoch >= self.epoch, "recovery epochs only advance");
        self.epoch = epoch;
        self.counter = 0;
        self.color = Color::Black;
        self.probe_outstanding = false;
    }

    /// Handle the token. Must only be called while the process is passive
    /// (locally quiescent); an active process holds the token instead.
    /// A token minted before the current recovery epoch is answered with
    /// [`TokenAction::Drop`] — its accumulated count mixes pre- and
    /// post-crash accounting and must not influence this epoch's probe.
    pub fn on_token(&mut self, token: TokenMsg) -> TokenAction {
        if token.epoch < self.epoch {
            return TokenAction::Drop;
        }
        debug_assert!(token.epoch == self.epoch, "token from a future epoch");
        if self.id == 0 {
            self.probe_outstanding = false;
            let success = token.color == Color::White
                && self.color == Color::White
                && token.count + self.counter == 0;
            if success {
                TokenAction::Terminate
            } else {
                TokenAction::Relaunch(self.launch().expect("initiator can always relaunch"))
            }
        } else {
            let color = if self.color == Color::Black {
                Color::Black
            } else {
                token.color
            };
            self.color = Color::White;
            TokenAction::Forward(TokenMsg {
                color,
                count: token.count + self.counter,
                epoch: token.epoch,
            })
        }
    }

    /// (Initiator) launch a probe if none is circulating. Call when
    /// passive. Returns the token to send to process 1 (or back to self
    /// when `n == 1`).
    pub fn launch(&mut self) -> Option<TokenMsg> {
        if self.id != 0 || self.probe_outstanding {
            return None;
        }
        self.probe_outstanding = true;
        self.color = Color::White;
        Some(TokenMsg {
            color: Color::White,
            count: 0,
            epoch: self.epoch,
        })
    }

    /// Current counter (diagnostics).
    pub fn counter(&self) -> i64 {
        self.counter
    }

    /// Current color (diagnostics).
    pub fn color(&self) -> Color {
        self.color
    }

    /// Current recovery epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive one full circulation of `token` around a passive ring.
    /// Returns the initiator's action when the token returns.
    fn pass_around(machines: &mut [Safra], token: TokenMsg) -> TokenAction {
        let n = machines.len();
        let mut token = token;
        let mut at = 1 % n;
        loop {
            if at == 0 {
                return machines[0].on_token(token);
            }
            match machines[at].on_token(token) {
                TokenAction::Forward(t) => {
                    token = t;
                    at = (at + 1) % n;
                }
                other => panic!("non-initiator produced {other:?}"),
            }
        }
    }

    /// Launch (or reuse the relaunched) probe and circulate it once.
    /// `carried` holds the token from a previous `Relaunch`.
    fn circulate_with(machines: &mut [Safra], carried: &mut Option<TokenMsg>) -> TokenAction {
        let token = carried
            .take()
            .or_else(|| machines[0].launch())
            .expect("either a carried token or a fresh probe");
        let action = pass_around(machines, token);
        if let TokenAction::Relaunch(t) = action {
            *carried = Some(t);
        }
        action
    }

    /// One-shot convenience for rings with no outstanding probe.
    fn circulate(machines: &mut [Safra]) -> TokenAction {
        let mut none = None;
        circulate_with(machines, &mut none)
    }

    #[test]
    fn all_idle_ring_terminates() {
        let mut ring: Vec<Safra> = (0..4).map(|i| Safra::new(i, 4)).collect();
        assert_eq!(circulate(&mut ring), TokenAction::Terminate);
    }

    #[test]
    fn single_process_terminates() {
        let mut ring = vec![Safra::new(0, 1)];
        assert_eq!(circulate(&mut ring), TokenAction::Terminate);
    }

    #[test]
    fn in_flight_message_defers_termination() {
        // 1 sent a message that 2 has not received: counters sum to +1.
        let mut ring: Vec<Safra> = (0..3).map(|i| Safra::new(i, 3)).collect();
        let mut carried = None;
        ring[1].on_send();
        match circulate_with(&mut ring, &mut carried) {
            TokenAction::Relaunch(_) => {}
            other => panic!("expected relaunch, got {other:?}"),
        }
        // Message delivered: receiver blackens; first probe after delivery
        // fails (black), second succeeds.
        ring[2].on_basic_receive();
        match circulate_with(&mut ring, &mut carried) {
            TokenAction::Relaunch(_) => {}
            other => panic!("black process must fail the probe, got {other:?}"),
        }
        assert_eq!(circulate_with(&mut ring, &mut carried), TokenAction::Terminate);
    }

    #[test]
    fn delivery_before_launch_terminates_immediately() {
        // The exchange completed before any probe existed; launching
        // whitens the initiator, so the very first probe may succeed.
        let mut ring: Vec<Safra> = (0..2).map(|i| Safra::new(i, 2)).collect();
        let mut carried = None;
        ring[1].on_send();
        ring[0].on_basic_receive();
        assert_eq!(circulate_with(&mut ring, &mut carried), TokenAction::Terminate);
    }

    #[test]
    fn initiator_blackened_mid_probe_relaunches() {
        // Probe launched first; the initiator receives a message while the
        // token is out — the returning probe must fail.
        let mut ring: Vec<Safra> = (0..2).map(|i| Safra::new(i, 2)).collect();
        let token = ring[0].launch().unwrap();
        ring[1].on_send();
        ring[0].on_basic_receive();
        let token = match ring[1].on_token(token) {
            TokenAction::Forward(t) => t,
            other => panic!("expected forward, got {other:?}"),
        };
        let carried = match ring[0].on_token(token) {
            TokenAction::Relaunch(t) => Some(t),
            other => panic!("expected relaunch, got {other:?}"),
        };
        let mut carried = carried;
        // Quiet now: the carried probe succeeds.
        assert_eq!(circulate_with(&mut ring, &mut carried), TokenAction::Terminate);
    }

    #[test]
    fn launch_is_exclusive_until_probe_returns() {
        let mut m = Safra::new(0, 2);
        assert!(m.launch().is_some());
        assert!(m.launch().is_none(), "no double probes");
        // Token returns (failure path): outstanding clears.
        let act = m.on_token(TokenMsg {
            color: Color::Black,
            count: 0,
            epoch: 0,
        });
        assert!(matches!(act, TokenAction::Relaunch(_)));
        // Relaunch re-set outstanding.
        assert!(m.launch().is_none());
    }

    #[test]
    fn non_initiator_never_launches() {
        let mut m = Safra::new(2, 4);
        assert!(m.launch().is_none());
    }

    #[test]
    fn forwarding_whitens_and_accumulates() {
        let mut m = Safra::new(1, 3);
        m.on_send();
        m.on_send();
        m.on_basic_receive(); // black, counter = 1
        let act = m.on_token(TokenMsg {
            color: Color::White,
            count: 5,
            epoch: 0,
        });
        assert_eq!(
            act,
            TokenAction::Forward(TokenMsg {
                color: Color::Black,
                count: 6,
                epoch: 0
            })
        );
        assert_eq!(m.color(), Color::White);
        // Second pass: now white and counter unchanged.
        let act = m.on_token(TokenMsg {
            color: Color::White,
            count: -1,
            epoch: 0,
        });
        assert_eq!(
            act,
            TokenAction::Forward(TokenMsg {
                color: Color::White,
                count: 0,
                epoch: 0
            })
        );
    }

    /// Ring repair: a token minted before the current epoch is dropped by
    /// every process, and the accumulated pre-crash count cannot leak into
    /// the repaired ring's accounting.
    #[test]
    fn stale_epoch_token_is_dropped() {
        // Non-initiator: a pre-recovery token must not be forwarded.
        let mut m = Safra::new(1, 3);
        m.on_send();
        m.on_recover(1);
        let stale = TokenMsg { color: Color::White, count: 7, epoch: 0 };
        assert_eq!(m.on_token(stale), TokenAction::Drop);
        assert_eq!(m.counter(), 0, "recovery zeroed the counter");
        assert_eq!(m.color(), Color::Black, "recovery blackened the process");

        // Initiator: a stale token neither terminates nor relaunches —
        // the *current* epoch's probe is launched separately.
        let mut init = Safra::new(0, 3);
        let _probe = init.launch().unwrap();
        init.on_recover(1);
        let stale = TokenMsg { color: Color::White, count: 0, epoch: 0 };
        assert_eq!(init.on_token(stale), TokenAction::Drop);
        // The abandoned probe no longer blocks a fresh launch, and the
        // fresh token carries the new epoch.
        let relaunched = init.launch().expect("repair re-arms the probe");
        assert_eq!(relaunched.epoch, 1);
    }

    /// After repair the ring still terminates: the new epoch's probe
    /// circulates and succeeds exactly when the replayed accounting is
    /// balanced.
    #[test]
    fn repaired_ring_terminates_in_new_epoch() {
        let mut ring: Vec<Safra> = (0..3).map(|i| Safra::new(i, 3)).collect();
        // Pre-crash traffic, then a probe goes out and is lost with the
        // crash; every process repairs into epoch 1.
        ring[1].on_send();
        let _lost_probe = ring[0].launch().unwrap();
        for m in ring.iter_mut() {
            m.on_recover(1);
        }
        // The replayed message is re-counted in the new epoch.
        ring[1].on_send();
        ring[2].on_basic_receive();
        // First probe of epoch 1 fails (processes are black from repair
        // and the receive); the follow-up succeeds.
        let mut carried = None;
        let mut rounds = 0;
        loop {
            rounds += 1;
            assert!(rounds < 5, "repaired ring must stay live");
            match circulate_with(&mut ring, &mut carried) {
                TokenAction::Terminate => break,
                TokenAction::Relaunch(t) => assert_eq!(t.epoch, 1),
                other => panic!("unexpected action {other:?}"),
            }
        }
    }

    /// A randomized-schedule simulation: messages are sent/received in
    /// arbitrary interleavings; detection must never fire while a message
    /// is in flight (safety) and must fire once everything is quiet
    /// (liveness).
    #[test]
    fn simulated_schedules_are_safe_and_live() {
        // Deterministic pseudo-random schedule without external crates.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [2usize, 3, 5] {
            for _round in 0..50 {
                let mut ring: Vec<Safra> = (0..n).map(|i| Safra::new(i, n)).collect();
                let mut carried = None;
                let mut in_flight = 0u64;
                // Random basic-message traffic.
                let mut pending: Vec<usize> = Vec::new(); // destinations
                for _ in 0..(rand() % 8) {
                    let from = (rand() as usize) % n;
                    let to = (rand() as usize) % n;
                    ring[from].on_send();
                    pending.push(to);
                    in_flight += 1;
                }
                // Interleave probes with deliveries.
                let mut terminated = false;
                let mut guard = 0;
                while !terminated {
                    guard += 1;
                    assert!(guard < 1000, "liveness violated");
                    // Deliver one message sometimes.
                    if !pending.is_empty() && rand() % 2 == 0 {
                        let to = pending.pop().unwrap();
                        ring[to].on_basic_receive();
                        in_flight -= 1;
                    }
                    match circulate_with(&mut ring, &mut carried) {
                        TokenAction::Terminate => {
                            assert_eq!(in_flight, 0, "safety violated");
                            terminated = true;
                        }
                        TokenAction::Relaunch(_) => {
                            // Deliver everything eventually so we stay live.
                            if let Some(to) = pending.pop() {
                                ring[to].on_basic_receive();
                                in_flight -= 1;
                            }
                        }
                        TokenAction::Forward(_) | TokenAction::Drop => unreachable!(),
                    }
                }
            }
        }
    }
}
