//! Theorems 2 and 6 (non-redundancy): the total number of successful
//! ground substitutions of the processing rules across all processors is
//! bounded by the sequential semi-naive count — on every dataset, for
//! every processor count, for both the §3 and §7 schemes.

use std::sync::Arc;

use parallel_datalog::core::schemes::BaseDistribution;
use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{
    chain, cycle, grid, layered, linear_ancestor, nonlinear_ancestor, random_digraph,
};

fn datasets() -> Vec<(&'static str, Relation)> {
    vec![
        ("chain", chain(20)),
        ("cycle", cycle(8)),
        ("grid", grid(5, 5)),
        ("layered", layered(4, 5, 2, 11)),
        ("random", random_digraph(20, 50, 3)),
    ]
}

fn var(p: &Program, name: &str) -> Variable {
    Variable(p.interner.get(name).unwrap())
}

#[test]
fn theorem2_on_the_non_redundant_scheme() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    for n in [2usize, 3, 4, 8] {
        for (name, edges) in datasets() {
            let db = fx.database(&edges);
            let seq = seminaive_eval(&fx.program, &db).unwrap();
            let scheme = example3_hash_partition(&sirup, n, &db).unwrap();
            let outcome = scheme.run().unwrap();
            assert!(
                outcome.stats.total_processing_firings() <= seq.stats.firings,
                "dataset {name}, n={n}: parallel {} > sequential {}",
                outcome.stats.total_processing_firings(),
                seq.stats.firings
            );
        }
    }
}

#[test]
fn theorem2_on_example1_and_example2() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    for (name, edges) in datasets() {
        let db = fx.database(&edges);
        let seq = seminaive_eval(&fx.program, &db).unwrap();

        let e1 = example1_wolfson(&sirup, 4, &db).unwrap().run().unwrap();
        assert!(
            e1.stats.total_processing_firings() <= seq.stats.firings,
            "Example 1 on {name}"
        );

        let frag = round_robin_fragment(&edges, 4).unwrap();
        let e2 = example2_valduriez(&sirup, frag, &db).unwrap().run().unwrap();
        assert!(
            e2.stats.total_processing_firings() <= seq.stats.firings,
            "Example 2 on {name}"
        );
    }
}

#[test]
fn theorem6_on_the_general_scheme() {
    let fx = nonlinear_ancestor();
    let h: DiscriminatorRef = Arc::new(HashMod::new(4, 13));
    let choices = vec![
        RuleChoice {
            v: vec![var(&fx.program, "Y")],
            h: h.clone(),
        },
        RuleChoice {
            v: vec![var(&fx.program, "Z")],
            h,
        },
    ];
    for (name, edges) in datasets() {
        let db = fx.database(&edges);
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        let scheme =
            rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
        let outcome = scheme.run().unwrap();
        assert!(
            outcome.stats.total_processing_firings() <= seq.stats.firings,
            "dataset {name}: parallel {} > sequential {}",
            outcome.stats.total_processing_firings(),
            seq.stats.firings
        );
    }
}

/// Definition 1's exact accounting on a duplicate-free workload: on a
/// chain, every scheme and the sequential engine fire exactly once per
/// derivable tuple.
#[test]
fn chain_firings_are_exact() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let edges = chain(25);
    let db = fx.database(&edges);
    let closure_size = 25 * 26 / 2;

    let seq = seminaive_eval(&fx.program, &db).unwrap();
    assert_eq!(seq.stats.firings, closure_size);
    assert_eq!(seq.stats.duplicates, 0);

    let outcome = example3_hash_partition(&sirup, 4, &db)
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(outcome.stats.total_processing_firings(), closure_size);
}

/// The redundant scheme's overshoot is real and measured: on a grid the
/// zero-communication scheme fires strictly more than sequential.
#[test]
fn no_comm_scheme_is_redundant_where_expected() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let db = fx.database(&grid(6, 6));
    let seq = seminaive_eval(&fx.program, &db).unwrap();
    let cfg = NoCommConfig {
        v_e: vec![var(&fx.program, "X")],
        h_prime: Arc::new(HashMod::new(4, 11)),
    };
    let outcome = rewrite_no_comm(&sirup, &cfg, &db).unwrap().run().unwrap();
    assert!(
        outcome.stats.total_processing_firings() > seq.stats.firings,
        "grid workload must show redundancy: {} vs {}",
        outcome.stats.total_processing_firings(),
        seq.stats.firings
    );
    // ... and still compute the right answer.
    let anc = fx.output_id();
    assert!(outcome.relation(anc).set_eq(&seq.relation(anc)));
}
