//! Fault plans: what the simulated network is allowed to do to traffic.
//!
//! The paper assumes reliable FIFO-less channels ("a processor i ... may
//! communicate with every other processor j"); real clusters approximate
//! that with retransmitting transports whose *observable* misbehaviors are
//! delay, reordering, duplication and (transient) loss. A [`FaultPlan`]
//! describes a distribution over exactly those misbehaviors for
//! [`crate::sim::SimTransport`] to draw from — below the reliable-channel
//! abstraction the algorithm reasons about, so the least model and the
//! termination decision must come out identical under any plan.
//!
//! Two invariants keep the plans *faults*, not *bugs*:
//!
//! * duplication and loss apply to **data batches only**. Safra's argument
//!   needs the ring token neither duplicated (two tokens would race) nor
//!   lost (the probe would stall forever) — a real transport achieves this
//!   with acknowledgements; the simulator simply exempts control traffic.
//! * loss is modeled as **delayed redelivery** (`drop_redeliver_after`
//!   added to the latency draw), matching a retransmitting transport.
//!   Silent unbounded loss would falsify the paper's channel model and
//!   trivially hang any algorithm built on it.
//!
//! Worker-side faults: `stall_prob` freezes a worker between steps
//! (GC pause, noisy neighbor); [`CrashSpec`] kills one worker outright at
//! a virtual time — the run must then surface the idle-watchdog error at
//! some healthy peer rather than hang.

use gst_common::{Error, Result};

/// When (and whom) to crash. Without `recover` this is the only fault
/// that is *supposed* to make the run fail; with `recover` the simulated
/// supervisor restarts the worker and the run must still compute the
/// exact least model (see `DESIGN.md` §7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// Processor index to kill.
    pub worker: usize,
    /// Virtual time (ticks) at which it dies.
    pub at_time: u64,
    /// Restart the worker (crash-with-recovery) instead of leaving it
    /// dead. Recovery still requires a restart budget
    /// (`SupervisorConfig::max_restarts > 0`).
    pub recover: bool,
}

/// A distribution over transport and scheduling misbehaviors.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Minimum delivery latency in virtual ticks.
    pub min_delay: u64,
    /// Maximum delivery latency. A spread (`max > min`) makes deliveries
    /// race, i.e. **reorders** messages between and within links.
    pub max_delay: u64,
    /// Probability a batch is delivered twice (second copy at an
    /// independent latency draw).
    pub dup_prob: f64,
    /// Probability a batch's first transmission is lost. The retransmit
    /// arrives `drop_redeliver_after` ticks after the original draw.
    pub drop_prob: f64,
    /// Extra latency a dropped batch pays before its redelivery.
    pub drop_redeliver_after: u64,
    /// Probability a worker stalls after a step.
    pub stall_prob: f64,
    /// How long a stall lasts, in ticks.
    pub stall_ticks: u64,
    /// Optional hard crash of one worker.
    pub crash: Option<CrashSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A perfect network: unit latency, no reordering, no duplication, no
    /// loss, no stalls.
    pub fn none() -> Self {
        FaultPlan {
            min_delay: 1,
            max_delay: 1,
            dup_prob: 0.0,
            drop_prob: 0.0,
            drop_redeliver_after: 0,
            stall_prob: 0.0,
            stall_ticks: 0,
            crash: None,
        }
    }

    /// Latency jitter only: deliveries race and reorder, nothing is
    /// duplicated or lost.
    pub fn jitter() -> Self {
        FaultPlan {
            min_delay: 1,
            max_delay: 40,
            ..FaultPlan::none()
        }
    }

    /// The kitchen sink (minus crashes): heavy jitter, duplication, drops
    /// with redelivery, and worker stalls.
    pub fn chaos() -> Self {
        FaultPlan {
            min_delay: 1,
            max_delay: 60,
            dup_prob: 0.25,
            drop_prob: 0.15,
            drop_redeliver_after: 80,
            stall_prob: 0.10,
            stall_ticks: 50,
            crash: None,
        }
    }

    /// `chaos` plus a fatal (non-recovering) crash of `worker` at tick
    /// `at_time`.
    pub fn with_crash(worker: usize, at_time: u64) -> Self {
        FaultPlan {
            crash: Some(CrashSpec { worker, at_time, recover: false }),
            ..FaultPlan::chaos()
        }
    }

    /// `chaos` plus a crash of `worker` at tick `at_time` that the
    /// simulated supervisor recovers from (restart + replay + ring
    /// repair).
    pub fn with_recovering_crash(worker: usize, at_time: u64) -> Self {
        FaultPlan {
            crash: Some(CrashSpec { worker, at_time, recover: true }),
            ..FaultPlan::chaos()
        }
    }

    /// True when the plan can never produce anything but fixed-latency
    /// delivery (the degenerate, deterministic-network case).
    pub fn is_benign(&self) -> bool {
        self.max_delay == self.min_delay
            && self.dup_prob == 0.0
            && self.drop_prob == 0.0
            && self.stall_prob == 0.0
            && self.crash.is_none()
    }

    /// Parse a CLI fault description.
    ///
    /// Accepts a preset name (`none`, `jitter`, `chaos`) or a preset
    /// refined by comma-separated `key=value` overrides, e.g.
    /// `chaos,dup=0.5,crash=1@200`. Keys: `min`, `max` (ticks), `dup`,
    /// `drop`, `stall` (probabilities), `redeliver`, `stall-ticks`
    /// (ticks), `crash=<worker>@<tick>`. The bare flag `recover` (no
    /// value) turns a configured crash into a recoverable one, e.g.
    /// `chaos,crash=1@200,recover`.
    pub fn parse(text: &str) -> Result<Self> {
        let bad = |what: &str| Error::Runtime(format!("bad fault plan: {what}"));
        let mut parts = text.split(',');
        let preset = parts.next().expect("split yields at least one part").trim();
        let mut plan = match preset {
            "none" | "" => FaultPlan::none(),
            "jitter" => FaultPlan::jitter(),
            "chaos" => FaultPlan::chaos(),
            other => return Err(bad(&format!(
                "unknown preset {other:?} (expected none, jitter or chaos)"
            ))),
        };
        let mut recover = false;
        for part in parts {
            if part.trim() == "recover" {
                recover = true;
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| bad(&format!("expected key=value, got {part:?}")))?;
            let key = key.trim();
            let value = value.trim();
            let ticks = || value.parse::<u64>().map_err(|_| bad(&format!("{key}={value}")));
            let prob = || {
                value
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .ok_or_else(|| bad(&format!("{key}={value} (want probability in [0,1])")))
            };
            match key {
                "min" => plan.min_delay = ticks()?,
                "max" => plan.max_delay = ticks()?,
                "redeliver" => plan.drop_redeliver_after = ticks()?,
                "stall-ticks" => plan.stall_ticks = ticks()?,
                "dup" => plan.dup_prob = prob()?,
                "drop" => plan.drop_prob = prob()?,
                "stall" => plan.stall_prob = prob()?,
                "crash" => {
                    let (worker, at) = value
                        .split_once('@')
                        .ok_or_else(|| bad("crash wants <worker>@<tick>"))?;
                    plan.crash = Some(CrashSpec {
                        worker: worker.parse().map_err(|_| bad("crash worker index"))?,
                        at_time: at.parse().map_err(|_| bad("crash tick"))?,
                        recover: false,
                    });
                }
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        if recover {
            match plan.crash.as_mut() {
                Some(crash) => crash.recover = true,
                None => return Err(bad("recover without a crash=<worker>@<tick>")),
            }
        }
        if plan.max_delay < plan.min_delay {
            return Err(bad("max delay below min delay"));
        }
        if plan.min_delay == 0 {
            return Err(bad("zero latency would deliver into the sending step"));
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "delay {}..={}, dup {}, drop {} (redeliver +{}), stall {} ({} ticks)",
            self.min_delay,
            self.max_delay,
            self.dup_prob,
            self.drop_prob,
            self.drop_redeliver_after,
            self.stall_prob,
            self.stall_ticks,
        )?;
        if let Some(c) = self.crash {
            write!(f, ", crash {}@{}", c.worker, c.at_time)?;
            if c.recover {
                write!(f, " (recover)")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert_eq!(FaultPlan::parse("none").unwrap(), FaultPlan::none());
        assert_eq!(FaultPlan::parse("jitter").unwrap(), FaultPlan::jitter());
        assert_eq!(FaultPlan::parse("chaos").unwrap(), FaultPlan::chaos());
        assert!(FaultPlan::none().is_benign());
        assert!(!FaultPlan::jitter().is_benign());
    }

    #[test]
    fn overrides_refine_presets() {
        let plan = FaultPlan::parse("jitter,dup=0.5,max=10,crash=2@300").unwrap();
        assert_eq!(plan.dup_prob, 0.5);
        assert_eq!(plan.max_delay, 10);
        assert_eq!(plan.min_delay, FaultPlan::jitter().min_delay);
        assert_eq!(
            plan.crash,
            Some(CrashSpec { worker: 2, at_time: 300, recover: false })
        );
    }

    #[test]
    fn recover_flag_marks_the_crash() {
        let plan = FaultPlan::parse("chaos,crash=1@200,recover").unwrap();
        assert_eq!(
            plan.crash,
            Some(CrashSpec { worker: 1, at_time: 200, recover: true })
        );
        assert!(plan.to_string().contains("crash 1@200 (recover)"));
        assert!(
            FaultPlan::parse("chaos,recover").is_err(),
            "recover without a crash is meaningless"
        );
    }

    #[test]
    fn bad_plans_are_rejected() {
        for text in [
            "warp",              // unknown preset
            "none,zap=1",        // unknown key
            "none,dup",          // missing value
            "none,dup=1.5",      // probability out of range
            "none,min=5,max=2",  // inverted delays
            "none,min=0",        // zero latency
            "none,crash=3",      // malformed crash
        ] {
            assert!(FaultPlan::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn display_mentions_crash() {
        let plan = FaultPlan::with_crash(1, 50);
        let text = plan.to_string();
        assert!(text.contains("crash 1@50"));
    }
}
