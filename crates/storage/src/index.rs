//! Hash indexes over relations.
//!
//! The semi-naive join executor probes base and derived relations on the
//! columns bound by earlier subgoals. A [`HashIndex`] maps the projection
//! of each tuple onto a fixed column set to the list of matching tuples.
//! Indexes are built from a relation snapshot and record the relation's
//! generation stamp, so a cache can cheaply decide whether a rebuild (or
//! an incremental refresh) is needed.

use gst_common::{FxHashMap, Tuple};

use crate::relation::Relation;

/// A hash index on a fixed set of key columns.
#[derive(Debug, Clone)]
pub struct HashIndex {
    key_columns: Vec<usize>,
    map: FxHashMap<Tuple, Vec<Tuple>>,
    /// Generation of the source relation at build/refresh time.
    built_at: u64,
    /// Number of tuples indexed (for diagnostics).
    entries: usize,
}

impl HashIndex {
    /// Build an index of `relation` keyed on `key_columns`.
    ///
    /// # Panics
    /// Panics if a key column is out of range for the relation's arity
    /// (a programming error in plan compilation, not a data error).
    pub fn build(relation: &Relation, key_columns: &[usize]) -> Self {
        let mut map: FxHashMap<Tuple, Vec<Tuple>> = FxHashMap::default();
        for t in relation.iter() {
            map.entry(t.project(key_columns)).or_default().push(t.clone());
        }
        HashIndex {
            key_columns: key_columns.to_vec(),
            map,
            built_at: relation.generation(),
            entries: relation.len(),
        }
    }

    /// The key columns this index is on.
    pub fn key_columns(&self) -> &[usize] {
        &self.key_columns
    }

    /// Tuples whose projection equals `key`. Missing keys yield `&[]`.
    pub fn probe(&self, key: &Tuple) -> &[Tuple] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The generation stamp of the relation when the index was last
    /// (re)built; compare against [`Relation::generation`] for staleness.
    pub fn built_at(&self) -> u64 {
        self.built_at
    }

    /// True if `relation` has changed since this index was built.
    pub fn is_stale(&self, relation: &Relation) -> bool {
        relation.generation() != self.built_at
    }

    /// Bring the index up to date by re-scanning `relation`.
    ///
    /// Relations only grow in bottom-up evaluation, but tuples arrive in
    /// arbitrary set order, so the refresh rebuilds rather than diffing —
    /// the evaluator avoids the cost by indexing deltas separately.
    pub fn refresh(&mut self, relation: &Relation) {
        if !self.is_stale(relation) {
            return;
        }
        *self = HashIndex::build(relation, &self.key_columns);
    }

    /// Add one tuple incrementally.
    ///
    /// Relations only grow under bottom-up evaluation, so the evaluator
    /// feeds each round's delta into the full-relation index instead of
    /// rebuilding it (rebuilds would make the fixpoint quadratic). The
    /// caller must also call [`HashIndex::mark_synced`] once the batch
    /// matching the relation's new generation has been applied.
    pub fn insert(&mut self, tuple: Tuple) {
        self.map
            .entry(tuple.project(&self.key_columns))
            .or_default()
            .push(tuple);
        self.entries += 1;
    }

    /// Declare the index synchronized with `generation` after a batch of
    /// [`HashIndex::insert`] calls.
    pub fn mark_synced(&mut self, generation: u64) {
        self.built_at = generation;
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }

    /// Number of tuples indexed.
    pub fn entry_count(&self) -> usize {
        self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;

    fn sample() -> Relation {
        [
            ituple![1, 10],
            ituple![1, 11],
            ituple![2, 20],
            ituple![3, 30],
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn probe_finds_all_matches() {
        let idx = HashIndex::build(&sample(), &[0]);
        let mut hits: Vec<Tuple> = idx.probe(&ituple![1]).to_vec();
        hits.sort();
        assert_eq!(hits, vec![ituple![1, 10], ituple![1, 11]]);
        assert_eq!(idx.probe(&ituple![2]), &[ituple![2, 20]]);
    }

    #[test]
    fn probe_missing_key_is_empty() {
        let idx = HashIndex::build(&sample(), &[0]);
        assert!(idx.probe(&ituple![99]).is_empty());
    }

    #[test]
    fn index_on_second_column() {
        let idx = HashIndex::build(&sample(), &[1]);
        assert_eq!(idx.probe(&ituple![11]), &[ituple![1, 11]]);
    }

    #[test]
    fn index_on_both_columns() {
        let idx = HashIndex::build(&sample(), &[1, 0]);
        assert_eq!(idx.probe(&ituple![10, 1]), &[ituple![1, 10]]);
        assert!(idx.probe(&ituple![1, 10]).is_empty(), "key order matters");
    }

    #[test]
    fn empty_key_groups_everything() {
        let idx = HashIndex::build(&sample(), &[]);
        assert_eq!(idx.probe(&Tuple::unit()).len(), 4);
        assert_eq!(idx.key_count(), 1);
    }

    #[test]
    fn staleness_and_refresh() {
        let mut rel = sample();
        let mut idx = HashIndex::build(&rel, &[0]);
        assert!(!idx.is_stale(&rel));
        rel.insert(ituple![1, 12]).unwrap();
        assert!(idx.is_stale(&rel));
        idx.refresh(&rel);
        assert!(!idx.is_stale(&rel));
        assert_eq!(idx.probe(&ituple![1]).len(), 3);
        assert_eq!(idx.entry_count(), 5);
    }

    #[test]
    fn incremental_insert_matches_rebuild() {
        let mut rel = sample();
        let mut idx = HashIndex::build(&rel, &[0]);
        rel.insert(ituple![2, 21]).unwrap();
        idx.insert(ituple![2, 21]);
        idx.mark_synced(rel.generation());
        assert!(!idx.is_stale(&rel));
        let rebuilt = HashIndex::build(&rel, &[0]);
        let mut a = idx.probe(&ituple![2]).to_vec();
        let mut b = rebuilt.probe(&ituple![2]).to_vec();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(idx.entry_count(), rebuilt.entry_count());
    }

    #[test]
    fn refresh_on_fresh_index_is_noop() {
        let rel = sample();
        let mut idx = HashIndex::build(&rel, &[0]);
        let before = idx.built_at();
        idx.refresh(&rel);
        assert_eq!(idx.built_at(), before);
    }
}
