//! Wire format for tuple batches.
//!
//! The paper's abstract channels carry tuples; a real message-passing
//! deployment serializes them. Workers encode every cross-processor batch
//! through this codec so the measured communication cost can be reported
//! in *bytes on the wire*, not just tuple counts — the unit a §8 cost
//! model for a cluster actually charges.
//!
//! Layout (little-endian):
//!
//! ```text
//! batch   := inbox_sym: u32 | arity: u16 | count: u32 | count × tuple
//! tuple   := arity × value
//! value   := tag: u8 (0 = Int, 1 = Sym) | Int: i64 | Sym: u32
//! ```
//!
//! Symbol ids are stable across workers because every processor program
//! shares one interner; a multi-machine deployment would ship the symbol
//! table once up front the same way.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gst_common::{Error, Result, SymbolId, Tuple, Value};
use gst_eval::plan::RelationId;

const TAG_INT: u8 = 0;
const TAG_SYM: u8 = 1;

/// Serialize a batch destined for `inbox`.
///
/// # Errors
/// Rejects tuples whose arity differs from the inbox's — a misconfigured
/// channel (caught at the sender, where the diagnostic is actionable).
pub fn encode_batch(inbox: RelationId, tuples: &[Tuple]) -> Result<Bytes> {
    let arity = inbox.1;
    // Worst case per value: 1 tag + 8 payload.
    let mut buf = BytesMut::with_capacity(10 + tuples.len() * arity * 9);
    buf.put_u32_le(inbox.0 .0);
    buf.put_u16_le(arity as u16);
    buf.put_u32_le(tuples.len() as u32);
    for t in tuples {
        if t.arity() != arity {
            return Err(Error::Runtime(format!(
                "channel misconfigured: tuple arity {} does not match inbox arity {arity}",
                t.arity()
            )));
        }
        for &v in t.as_slice() {
            match v {
                Value::Int(n) => {
                    buf.put_u8(TAG_INT);
                    buf.put_i64_le(n);
                }
                Value::Sym(s) => {
                    buf.put_u8(TAG_SYM);
                    buf.put_u32_le(s.0);
                }
            }
        }
    }
    Ok(buf.freeze())
}

/// Deserialize a batch; the inverse of [`encode_batch`].
pub fn decode_batch(mut bytes: Bytes) -> Result<(RelationId, Vec<Tuple>)> {
    let corrupt = |what: &str| Error::Runtime(format!("corrupt tuple batch: {what}"));
    if bytes.remaining() < 10 {
        return Err(corrupt("truncated header"));
    }
    let sym = SymbolId(bytes.get_u32_le());
    let arity = bytes.get_u16_le() as usize;
    let count = bytes.get_u32_le() as usize;
    let mut tuples = Vec::with_capacity(count);
    let mut values = Vec::with_capacity(arity);
    for _ in 0..count {
        values.clear();
        for _ in 0..arity {
            if bytes.remaining() < 1 {
                return Err(corrupt("truncated value tag"));
            }
            match bytes.get_u8() {
                TAG_INT => {
                    if bytes.remaining() < 8 {
                        return Err(corrupt("truncated Int"));
                    }
                    values.push(Value::Int(bytes.get_i64_le()));
                }
                TAG_SYM => {
                    if bytes.remaining() < 4 {
                        return Err(corrupt("truncated Sym"));
                    }
                    values.push(Value::Sym(SymbolId(bytes.get_u32_le())));
                }
                tag => return Err(corrupt(&format!("unknown value tag {tag}"))),
            }
        }
        tuples.push(Tuple::new(&values));
    }
    if bytes.has_remaining() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(((sym, arity), tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::{ituple, Interner};

    fn inbox(arity: usize) -> RelationId {
        let interner = Interner::new();
        (interner.intern("t@in0"), arity)
    }

    #[test]
    fn round_trips_int_tuples() {
        let id = inbox(2);
        let tuples = vec![ituple![1, -2], ituple![i64::MAX, i64::MIN]];
        let bytes = encode_batch(id, &tuples).unwrap();
        let (got_id, got) = decode_batch(bytes).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(got, tuples);
    }

    #[test]
    fn round_trips_symbols_and_mixed() {
        let interner = Interner::new();
        let id = (interner.intern("sg@in3"), 2);
        let a = interner.intern("alice");
        let tuples = vec![
            Tuple::new(&[Value::Sym(a), Value::Int(7)]),
            Tuple::new(&[Value::Int(0), Value::Sym(SymbolId(0))]),
        ];
        let bytes = encode_batch(id, &tuples).unwrap();
        let (got_id, got) = decode_batch(bytes).unwrap();
        assert_eq!(got_id, id);
        assert_eq!(got, tuples);
    }

    #[test]
    fn empty_batch_and_zero_arity() {
        let id = inbox(0);
        let bytes = encode_batch(id, &[Tuple::unit()]).unwrap();
        let (_, got) = decode_batch(bytes).unwrap();
        assert_eq!(got, vec![Tuple::unit()]);

        let id = inbox(3);
        let bytes = encode_batch(id, &[]).unwrap();
        let (_, got) = decode_batch(bytes).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn wire_size_is_predictable() {
        let id = inbox(2);
        let tuples = vec![ituple![1, 2]; 10];
        let bytes = encode_batch(id, &tuples).unwrap();
        // header 10 + 10 tuples × 2 values × (1 tag + 8 payload).
        assert_eq!(bytes.len(), 10 + 10 * 2 * 9);
    }

    #[test]
    fn arity_mismatch_rejected_at_sender() {
        let id = inbox(2);
        assert!(encode_batch(id, &[ituple![1]]).is_err());
    }

    #[test]
    fn corrupt_input_is_rejected() {
        assert!(decode_batch(Bytes::from_static(&[1, 2, 3])).is_err());

        let id = inbox(1);
        let good = encode_batch(id, &[ituple![5]]).unwrap();
        // Truncate mid-value.
        let truncated = good.slice(0..good.len() - 2);
        assert!(decode_batch(truncated).is_err());

        // Bad tag.
        let mut bad = BytesMut::from(&good[..]);
        bad[10] = 9;
        assert!(decode_batch(bad.freeze()).is_err());

        // Trailing garbage.
        let mut extended = BytesMut::from(&good[..]);
        extended.put_u8(0);
        assert!(decode_batch(extended.freeze()).is_err());
    }
}
