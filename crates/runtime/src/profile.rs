//! Phase-attributed profiling: where the time went, per worker, per round.
//!
//! The paper's §6 trade-off is a *cost decomposition* — processing cost
//! against communication cost — but totals alone cannot say which worker
//! was the straggler in round 7 or whether the p99 round latency is
//! compute or barrier wait. This module splits every worker's run into
//! five phases:
//!
//! * `compute` — semi-naive rounds inside the local engine (bootstrap
//!   included), further split per rule by `EvalStats::time_by_rule`;
//! * `encode` — columnar wire encoding on the ship path;
//! * `decode` — coalesced batch decode-and-inject passes;
//! * `replay` — crash-recovery retransmission from the replay logs;
//! * `idle` — gaps between steps while the worker was passive
//!   (termination/barrier wait).
//!
//! Times are stamped in the journal's [`TimeBase`]: wall-clock
//! microseconds on the threaded and TCP transports, and deterministic
//! *work proxies* under the simulator's virtual clock (firings for
//! compute, payload bytes for encode, tuples for decode, messages for
//! replay, virtual-tick gaps for idle) — so a simulated profile is
//! bit-identical across same-seed reruns while still ranking the same
//! hot spots. Distribution shape is captured in mergeable log-bucketed
//! [`Histogram`]s (round latency, per-batch encode/decode time, batch
//! bytes, morsel chunk service time); TCP workers ship their profile in
//! the RESULT frame and the coordinator merges, so `--net` runs report
//! the same profile shape as in-process ones.
//!
//! [`ProfileReport::build`] is the analyzer: per-round critical path
//! (straggler worker and its dominant phase), the §6 comm/compute
//! decomposition as a per-round curve, top-k hot rules by time, and
//! idle-gap detection. Renderers export a human report, a machine
//! schema (JSON), and a Prometheus-style text exposition.

use std::time::Instant;

pub use gst_common::{Histogram, HIST_BUCKETS};

use crate::obs::TimeBase;
use crate::stats::ParallelStats;

/// The five phases a worker's time is attributed to.
pub const PHASES: [&str; 5] = ["compute", "encode", "decode", "replay", "idle"];

/// Accumulated time per phase, in the run's [`TimeBase`] units.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Semi-naive round processing (bootstrap included).
    pub compute: u64,
    /// Columnar wire encoding on the ship path.
    pub encode: u64,
    /// Coalesced batch decode-and-inject passes.
    pub decode: u64,
    /// Crash-recovery retransmission from the replay logs.
    pub replay: u64,
    /// Inter-step gaps while passive (termination/barrier wait).
    pub idle: u64,
}

impl PhaseTotals {
    /// Element-wise sum.
    pub fn merge(&mut self, other: &PhaseTotals) {
        self.compute += other.compute;
        self.encode += other.encode;
        self.decode += other.decode;
        self.replay += other.replay;
        self.idle += other.idle;
    }

    /// All five phases, in [`PHASES`] order.
    pub fn as_array(&self) -> [u64; 5] {
        [self.compute, self.encode, self.decode, self.replay, self.idle]
    }

    /// Total attributed time across all phases.
    pub fn total(&self) -> u64 {
        self.as_array().iter().sum()
    }

    /// Busy time: everything except idle.
    pub fn busy(&self) -> u64 {
        self.total() - self.idle
    }

    /// Communication-side time: encode + decode + replay (the §6
    /// communication cost as measured, idle excluded).
    pub fn comm(&self) -> u64 {
        self.encode + self.decode + self.replay
    }

    /// The largest phase and its value (first in [`PHASES`] order wins a
    /// tie, keeping the answer deterministic).
    pub fn dominant(&self) -> (&'static str, u64) {
        let values = self.as_array();
        let mut best = 0;
        for (i, &v) in values.iter().enumerate() {
            if v > values[best] {
                best = i;
            }
        }
        (PHASES[best], values[best])
    }
}

/// One worker's complete profile: phase totals, distribution histograms,
/// and the per-round phase breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Whole-run phase totals.
    pub phases: PhaseTotals,
    /// One sample per processed round: the round's compute time.
    pub round_latency: Histogram,
    /// One sample per wire encode (per channel per fixpoint).
    pub encode_time: Histogram,
    /// One sample per coalesced decode-and-inject pass.
    pub decode_time: Histogram,
    /// One sample per wire encode: the payload's size in bytes (always
    /// bytes, in every time base).
    pub batch_bytes: Histogram,
    /// Phase totals per engine round, keyed by round index. Sparse and
    /// strictly increasing in the round key.
    pub per_round: Vec<(u64, PhaseTotals)>,
}

impl WorkerProfile {
    /// Fold `other` into `self`: phase totals and histograms add,
    /// per-round entries combine by round key. Associative, so the
    /// coordinator may fold worker profiles in any arrival order and the
    /// canonical merge (processor order) produces the same result.
    pub fn merge(&mut self, other: &WorkerProfile) {
        self.phases.merge(&other.phases);
        self.round_latency.merge(&other.round_latency);
        self.encode_time.merge(&other.encode_time);
        self.decode_time.merge(&other.decode_time);
        self.batch_bytes.merge(&other.batch_bytes);
        for (round, totals) in &other.per_round {
            match self.per_round.binary_search_by_key(round, |(r, _)| *r) {
                Ok(i) => self.per_round[i].1.merge(totals),
                Err(i) => self.per_round.insert(i, (*round, *totals)),
            }
        }
    }

    /// Accumulate `d` units of `phase` against `round`.
    fn add(&mut self, phase: usize, round: u64, d: u64) {
        let slot = match self.per_round.last_mut() {
            Some((r, totals)) if *r == round => totals,
            Some((r, _)) if *r > round => {
                // Out-of-order attribution (e.g. a replay for an old
                // round): fold into the existing entry.
                match self.per_round.binary_search_by_key(&round, |(r, _)| *r) {
                    Ok(i) => &mut self.per_round[i].1,
                    Err(i) => {
                        self.per_round.insert(i, (round, PhaseTotals::default()));
                        &mut self.per_round[i].1
                    }
                }
            }
            _ => {
                self.per_round.push((round, PhaseTotals::default()));
                &mut self.per_round.last_mut().expect("just pushed").1
            }
        };
        match phase {
            0 => slot.compute += d,
            1 => slot.encode += d,
            2 => slot.decode += d,
            3 => slot.replay += d,
            _ => slot.idle += d,
        }
        match phase {
            0 => self.phases.compute += d,
            1 => self.phases.encode += d,
            2 => self.phases.decode += d,
            3 => self.phases.replay += d,
            _ => self.phases.idle += d,
        }
    }
}

/// Phase indices for [`Profiler`] call sites (match [`PHASES`] order).
pub(crate) const PHASE_COMPUTE: usize = 0;
/// See [`PHASE_COMPUTE`].
pub(crate) const PHASE_ENCODE: usize = 1;
/// See [`PHASE_COMPUTE`].
pub(crate) const PHASE_DECODE: usize = 2;
/// See [`PHASE_COMPUTE`].
pub(crate) const PHASE_REPLAY: usize = 3;
/// See [`PHASE_COMPUTE`].
pub(crate) const PHASE_IDLE: usize = 4;

/// The clock a profiler stamps durations with.
#[derive(Debug, Clone)]
enum ProfClock {
    /// Wall time: durations are measured with `Instant` and recorded as
    /// microseconds.
    Wall,
    /// Virtual time: durations are the caller-supplied deterministic
    /// work proxies; idle gaps are virtual-tick deltas pushed in via
    /// [`Profiler::set_now`].
    Ticks { now: u64 },
}

/// Timestamp of the previous step's end, in the profiler's clock.
#[derive(Debug, Clone)]
enum ProfStamp {
    Wall(Instant),
    Ticks(u64),
}

/// Per-worker phase accounting state. Owned by a `WorkerCore` as an
/// `Option<Box<Profiler>>`: when profiling is off every call site is one
/// `Option` branch, the same zero-overhead pattern as
/// [`crate::obs::TraceSink`].
#[derive(Debug, Clone)]
pub(crate) struct Profiler {
    clock: ProfClock,
    /// The profile under construction.
    pub(crate) profile: WorkerProfile,
    /// When the previous step ended — the base of the next idle gap.
    last_step_end: Option<ProfStamp>,
}

impl Profiler {
    /// A wall-clock profiler (threaded and TCP transports): durations in
    /// microseconds.
    pub(crate) fn wall() -> Self {
        Profiler {
            clock: ProfClock::Wall,
            profile: WorkerProfile::default(),
            last_step_end: None,
        }
    }

    /// A virtual-clock profiler (simulation): durations are
    /// deterministic work proxies, idle gaps are tick deltas.
    pub(crate) fn ticks() -> Self {
        Profiler {
            clock: ProfClock::Ticks { now: 0 },
            profile: WorkerProfile::default(),
            last_step_end: None,
        }
    }

    /// Push the simulator's virtual clock (no-op under wall time).
    pub(crate) fn set_now(&mut self, t: u64) {
        if let ProfClock::Ticks { now } = &mut self.clock {
            *now = t;
        }
    }

    /// Begin timing a phase: captures `Instant::now()` under wall time,
    /// nothing under ticks (the proxy passed to [`Profiler::stop`] is the
    /// duration there).
    pub(crate) fn start(&self) -> Option<Instant> {
        match self.clock {
            ProfClock::Wall => Some(Instant::now()),
            ProfClock::Ticks { .. } => None,
        }
    }

    /// Finish timing: elapsed microseconds under wall time, the
    /// deterministic `proxy` under ticks.
    pub(crate) fn stop(&self, t0: Option<Instant>, proxy: u64) -> u64 {
        match self.clock {
            ProfClock::Wall => t0.map_or(0, |t| t.elapsed().as_micros() as u64),
            ProfClock::Ticks { .. } => proxy,
        }
    }

    /// Accumulate `d` units of `phase` against `round`.
    pub(crate) fn add(&mut self, phase: usize, round: u64, d: u64) {
        self.profile.add(phase, round, d);
    }

    /// The previous step ended and this one starts while the worker was
    /// idle: the gap between them is barrier/termination wait.
    pub(crate) fn idle_gap(&mut self, round: u64) {
        let gap = match (&self.clock, &self.last_step_end) {
            (ProfClock::Wall, Some(ProfStamp::Wall(t))) => t.elapsed().as_micros() as u64,
            (ProfClock::Ticks { now }, Some(ProfStamp::Ticks(t))) => now.saturating_sub(*t),
            _ => 0,
        };
        if gap > 0 {
            self.profile.add(PHASE_IDLE, round, gap);
        }
    }

    /// Stamp the end of a step (the base of a possible idle gap).
    pub(crate) fn step_end(&mut self) {
        self.last_step_end = Some(match self.clock {
            ProfClock::Wall => ProfStamp::Wall(Instant::now()),
            ProfClock::Ticks { now } => ProfStamp::Ticks(now),
        });
    }
}

/// One round of the critical-path analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundCost {
    /// Engine round index.
    pub round: u64,
    /// The straggler: the worker with the largest busy (non-idle) time
    /// this round — the §6 critical path runs through it.
    pub straggler: usize,
    /// The straggler's busy time this round.
    pub straggler_time: u64,
    /// The straggler's dominant phase this round.
    pub dominant_phase: &'static str,
    /// Compute time summed across workers (the §6 processing cost).
    pub compute: u64,
    /// Encode + decode + replay summed across workers (the §6
    /// communication cost as measured).
    pub comm: u64,
    /// Idle time summed across workers.
    pub idle: u64,
}

/// One hot rule of the top-k ranking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotRule {
    /// Rule index in the rewritten processor program.
    pub rule: usize,
    /// Attributed time across all workers ([`TimeBase`] units).
    pub time: u64,
    /// Firings across all workers.
    pub firings: u64,
}

/// One detected idle gap: a worker that spent `idle` units waiting
/// within one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleGap {
    /// The waiting worker.
    pub worker: usize,
    /// The round it waited in.
    pub round: u64,
    /// How long it waited ([`TimeBase`] units).
    pub idle: u64,
}

/// The analyzed profile of one run: per-worker profiles, the merged
/// fleet view, the per-round critical path, hot rules and idle gaps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    /// What a time unit means (microseconds or virtual-clock proxies).
    pub base: TimeBase,
    /// `(processor, profile)` in processor order.
    pub workers: Vec<(usize, WorkerProfile)>,
    /// All workers' profiles merged.
    pub merged: WorkerProfile,
    /// Per-rule time merged across workers (units follow `base`).
    pub time_by_rule: Vec<u64>,
    /// Per-rule firings merged across workers.
    pub firings_by_rule: Vec<u64>,
    /// Morsel chunk service times merged across workers.
    pub chunk_service: Histogram,
    /// Per-round critical path and cost decomposition, in round order.
    pub rounds: Vec<RoundCost>,
    /// Top rules by attributed time, descending (ties by rule index).
    pub hot_rules: Vec<HotRule>,
    /// Largest per-(worker, round) idle gaps, descending (deterministic
    /// tie-break by round then worker).
    pub idle_gaps: Vec<IdleGap>,
    /// Optional provenance labels indexed by rule (e.g. `anc^bf [magic r1]`
    /// for a magic-sets rewrite). Empty when the run has no provenance;
    /// rules past the end of the vector are simply unlabeled.
    pub rule_labels: Vec<String>,
}

/// How many hot rules and idle gaps the analyzer keeps.
const TOP_K: usize = 10;

impl ProfileReport {
    /// Analyze a finished run. Returns `None` when no worker carried a
    /// profile (profiling was off).
    pub fn build(stats: &ParallelStats, base: TimeBase) -> Option<ProfileReport> {
        let workers: Vec<(usize, WorkerProfile)> = stats
            .workers
            .iter()
            .filter_map(|w| w.profile.clone().map(|p| (w.processor, p)))
            .collect();
        if workers.is_empty() {
            return None;
        }
        let mut merged = WorkerProfile::default();
        for (_, p) in &workers {
            merged.merge(p);
        }

        let mut time_by_rule: Vec<u64> = Vec::new();
        let mut firings_by_rule: Vec<u64> = Vec::new();
        let mut chunk_service = Histogram::new();
        for w in &stats.workers {
            if time_by_rule.len() < w.eval.time_by_rule.len() {
                time_by_rule.resize(w.eval.time_by_rule.len(), 0);
            }
            for (i, &t) in w.eval.time_by_rule.iter().enumerate() {
                time_by_rule[i] += t;
            }
            if firings_by_rule.len() < w.eval.firings_by_rule.len() {
                firings_by_rule.resize(w.eval.firings_by_rule.len(), 0);
            }
            for (i, &f) in w.eval.firings_by_rule.iter().enumerate() {
                firings_by_rule[i] += f;
            }
            chunk_service.merge(&w.eval.chunk_service);
        }

        // Per-round critical path: every round any worker attributed time
        // to, with the straggler = the worker with the most busy time.
        let mut round_keys: Vec<u64> = merged.per_round.iter().map(|(r, _)| *r).collect();
        round_keys.sort_unstable();
        round_keys.dedup();
        let mut rounds = Vec::with_capacity(round_keys.len());
        for round in round_keys {
            let mut straggler = 0usize;
            let mut straggler_totals = PhaseTotals::default();
            let mut compute = 0u64;
            let mut comm = 0u64;
            let mut idle = 0u64;
            for (w, p) in &workers {
                let Some(totals) = p
                    .per_round
                    .iter()
                    .find(|(r, _)| *r == round)
                    .map(|(_, t)| *t)
                else {
                    continue;
                };
                compute += totals.compute;
                comm += totals.comm();
                idle += totals.idle;
                if totals.busy() > straggler_totals.busy() {
                    straggler = *w;
                    straggler_totals = totals;
                }
            }
            let (dominant_phase, _) = PhaseTotals {
                idle: 0,
                ..straggler_totals
            }
            .dominant();
            rounds.push(RoundCost {
                round,
                straggler,
                straggler_time: straggler_totals.busy(),
                dominant_phase,
                compute,
                comm,
                idle,
            });
        }

        let mut hot_rules: Vec<HotRule> = time_by_rule
            .iter()
            .enumerate()
            .filter(|(_, &t)| t > 0)
            .map(|(rule, &time)| HotRule {
                rule,
                time,
                firings: firings_by_rule.get(rule).copied().unwrap_or(0),
            })
            .collect();
        hot_rules.sort_by_key(|h| (std::cmp::Reverse(h.time), h.rule));
        hot_rules.truncate(TOP_K);

        let mut idle_gaps: Vec<IdleGap> = workers
            .iter()
            .flat_map(|(w, p)| {
                p.per_round
                    .iter()
                    .filter(|(_, t)| t.idle > 0)
                    .map(|(round, t)| IdleGap {
                        worker: *w,
                        round: *round,
                        idle: t.idle,
                    })
            })
            .collect();
        idle_gaps.sort_by_key(|g| (std::cmp::Reverse(g.idle), g.round, g.worker));
        idle_gaps.truncate(TOP_K);

        Some(ProfileReport {
            base,
            workers,
            merged,
            time_by_rule,
            firings_by_rule,
            chunk_service,
            rounds,
            hot_rules,
            idle_gaps,
            rule_labels: Vec::new(),
        })
    }

    /// Attach provenance labels (indexed by rule) to the report. Labeled
    /// rules render as `rule #k <label>` in the human report and carry a
    /// `"label"` key in the JSON hot-rule objects; unlabeled output is
    /// unchanged.
    pub fn with_rule_labels(mut self, labels: Vec<String>) -> Self {
        self.rule_labels = labels;
        self
    }

    fn rule_label(&self, rule: usize) -> Option<&str> {
        self.rule_labels
            .get(rule)
            .map(|s| s.as_str())
            .filter(|s| !s.is_empty())
    }

    /// The time unit's short name ("us" or "ticks").
    pub fn unit(&self) -> &'static str {
        match self.base {
            TimeBase::WallMicros => "us",
            TimeBase::VirtualTicks => "ticks",
        }
    }

    /// Human-readable report (the `--profile` output).
    pub fn render_human(&self) -> String {
        use std::fmt::Write;
        let unit = self.unit();
        let mut out = String::new();
        let _ = writeln!(out, "profile ({unit}; ticks = deterministic work proxies)");

        let _ = writeln!(
            out,
            "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6}",
            "worker", "compute", "encode", "decode", "replay", "idle", "busy%"
        );
        let mut render_row = |label: &str, p: &PhaseTotals| {
            let total = p.total();
            let pct = if total == 0 {
                100.0
            } else {
                100.0 * p.busy() as f64 / total as f64
            };
            let _ = writeln!(
                out,
                "  {:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>5.1}%",
                label, p.compute, p.encode, p.decode, p.replay, p.idle, pct
            );
        };
        for (w, p) in &self.workers {
            render_row(&format!("w{w}"), &p.phases);
        }
        render_row("all", &self.merged.phases);

        let h = &self.merged.round_latency;
        let _ = writeln!(
            out,
            "  round latency ({unit}): n={} p50={} p95={} p99={} max={}",
            h.count,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
            h.max
        );
        for (name, h) in [
            ("encode time", &self.merged.encode_time),
            ("decode time", &self.merged.decode_time),
        ] {
            if h.count > 0 {
                let _ = writeln!(
                    out,
                    "  {name} ({unit}): n={} p50={} p99={} max={}",
                    h.count,
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.max
                );
            }
        }
        if self.merged.batch_bytes.count > 0 {
            let h = &self.merged.batch_bytes;
            let _ = writeln!(
                out,
                "  batch bytes: n={} p50={} p99={} max={}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            );
        }
        if self.chunk_service.count > 0 {
            let h = &self.chunk_service;
            let _ = writeln!(
                out,
                "  morsel chunk service ({unit}): n={} p50={} p99={} max={}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.99),
                h.max
            );
        }

        if !self.hot_rules.is_empty() {
            let _ = writeln!(out, "  hot rules (by time):");
            for h in &self.hot_rules {
                let _ = write!(
                    out,
                    "    rule #{:<3} {:>12} {unit}  {:>12} firings",
                    h.rule, h.time, h.firings
                );
                if let Some(label) = self.rule_label(h.rule) {
                    let _ = write!(out, "  {label}");
                }
                out.push('\n');
            }
        }

        if !self.rounds.is_empty() {
            let _ = writeln!(out, "  critical path (per round):");
            let shown = self.rounds.len().min(12);
            for rc in &self.rounds[..shown] {
                let _ = writeln!(
                    out,
                    "    round {:<4} straggler w{} ({} {unit}, {})  compute={} comm={} idle={}",
                    rc.round,
                    rc.straggler,
                    rc.straggler_time,
                    rc.dominant_phase,
                    rc.compute,
                    rc.comm,
                    rc.idle
                );
            }
            if self.rounds.len() > shown {
                let _ = writeln!(out, "    ... {} more rounds", self.rounds.len() - shown);
            }
        }

        if !self.idle_gaps.is_empty() {
            let _ = writeln!(out, "  largest idle gaps:");
            for g in &self.idle_gaps {
                let _ = writeln!(
                    out,
                    "    w{} round {:<4} {:>12} {unit}",
                    g.worker, g.round, g.idle
                );
            }
        }
        out
    }

    /// Machine-readable JSON (the `--profile-json` schema, validated by
    /// the bench `trace_check` tool). Deterministic: fixed key order,
    /// integers only, no floats — a virtual-tick profile is bit-identical
    /// across same-seed reruns.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        fn hist_json(out: &mut String, h: &Histogram) {
            let _ = write!(
                out,
                "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99)
            );
            let mut first = true;
            for (i, n) in h.nonzero_buckets() {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{i},{n}]");
            }
            out.push_str("]}");
        }
        fn phases_json(out: &mut String, p: &PhaseTotals) {
            let _ = write!(
                out,
                "{{\"compute\":{},\"encode\":{},\"decode\":{},\"replay\":{},\"idle\":{}}}",
                p.compute, p.encode, p.decode, p.replay, p.idle
            );
        }
        fn profile_json(out: &mut String, p: &WorkerProfile) {
            out.push_str("{\"phases\":");
            phases_json(out, &p.phases);
            out.push_str(",\"round_latency\":");
            hist_json(out, &p.round_latency);
            out.push_str(",\"encode_time\":");
            hist_json(out, &p.encode_time);
            out.push_str(",\"decode_time\":");
            hist_json(out, &p.decode_time);
            out.push_str(",\"batch_bytes\":");
            hist_json(out, &p.batch_bytes);
            out.push_str(",\"per_round\":[");
            for (i, (round, totals)) in p.per_round.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"round\":{round},\"phases\":");
                phases_json(out, totals);
                out.push('}');
            }
            out.push_str("]}");
        }

        let mut out = String::with_capacity(4096);
        let base = match self.base {
            TimeBase::WallMicros => "wall_micros",
            TimeBase::VirtualTicks => "virtual_ticks",
        };
        let _ = write!(out, "{{\"time_base\":\"{base}\",\"workers\":[");
        for (i, (w, p)) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"processor\":{w},\"profile\":");
            profile_json(&mut out, p);
            out.push('}');
        }
        out.push_str("],\"merged\":");
        profile_json(&mut out, &self.merged);

        out.push_str(",\"time_by_rule\":[");
        for (i, t) in self.time_by_rule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{t}");
        }
        out.push_str("],\"firings_by_rule\":[");
        for (i, f) in self.firings_by_rule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{f}");
        }
        out.push_str("],\"chunk_service\":");
        hist_json(&mut out, &self.chunk_service);

        out.push_str(",\"rounds\":[");
        for (i, rc) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"round\":{},\"straggler\":{},\"straggler_time\":{},\"dominant_phase\":\"{}\",\
                 \"compute\":{},\"comm\":{},\"idle\":{}}}",
                rc.round, rc.straggler, rc.straggler_time, rc.dominant_phase, rc.compute, rc.comm,
                rc.idle
            );
        }
        out.push_str("],\"hot_rules\":[");
        for (i, h) in self.hot_rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"rule\":{},\"time\":{},\"firings\":{}", h.rule, h.time, h.firings);
            if let Some(label) = self.rule_label(h.rule) {
                let _ = write!(out, ",\"label\":\"{}\"", label.escape_default());
            }
            out.push('}');
        }
        out.push_str("],\"idle_gaps\":[");
        for (i, g) in self.idle_gaps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"worker\":{},\"round\":{},\"idle\":{}}}",
                g.worker, g.round, g.idle
            );
        }
        out.push_str("]}");
        out
    }

    /// Prometheus-style text exposition (the `--metrics-out` format) —
    /// counters and summaries a scrape endpoint could serve as-is.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        let unit = self.unit();
        let _ = writeln!(
            out,
            "# HELP pdatalog_phase_time_total Time per worker per phase ({unit})."
        );
        let _ = writeln!(out, "# TYPE pdatalog_phase_time_total counter");
        for (w, p) in &self.workers {
            for (name, v) in PHASES.iter().zip(p.phases.as_array()) {
                let _ = writeln!(
                    out,
                    "pdatalog_phase_time_total{{worker=\"{w}\",phase=\"{name}\"}} {v}"
                );
            }
        }
        for (label, h) in [
            ("round_latency", &self.merged.round_latency),
            ("encode_time", &self.merged.encode_time),
            ("decode_time", &self.merged.decode_time),
            ("batch_bytes", &self.merged.batch_bytes),
            ("chunk_service", &self.chunk_service),
        ] {
            let _ = writeln!(out, "# TYPE pdatalog_{label} summary");
            for (q, ql) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                let _ = writeln!(
                    out,
                    "pdatalog_{label}{{quantile=\"{ql}\"}} {}",
                    h.quantile(q)
                );
            }
            let _ = writeln!(out, "pdatalog_{label}_sum {}", h.sum);
            let _ = writeln!(out, "pdatalog_{label}_count {}", h.count);
        }
        let _ = writeln!(out, "# TYPE pdatalog_rule_time_total counter");
        for (rule, &t) in self.time_by_rule.iter().enumerate() {
            let _ = writeln!(out, "pdatalog_rule_time_total{{rule=\"{rule}\"}} {t}");
        }
        let _ = writeln!(out, "# TYPE pdatalog_rule_firings_total counter");
        for (rule, &f) in self.firings_by_rule.iter().enumerate() {
            let _ = writeln!(out, "pdatalog_rule_firings_total{{rule=\"{rule}\"}} {f}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn totals(compute: u64, encode: u64, decode: u64, replay: u64, idle: u64) -> PhaseTotals {
        PhaseTotals {
            compute,
            encode,
            decode,
            replay,
            idle,
        }
    }

    #[test]
    fn dominant_breaks_ties_deterministically() {
        assert_eq!(totals(5, 5, 0, 0, 0).dominant(), ("compute", 5));
        assert_eq!(totals(0, 0, 0, 0, 7).dominant(), ("idle", 7));
        assert_eq!(totals(0, 0, 0, 0, 0).dominant(), ("compute", 0));
    }

    #[test]
    fn profile_add_attributes_phases_per_round() {
        let mut p = WorkerProfile::default();
        p.add(PHASE_COMPUTE, 1, 10);
        p.add(PHASE_ENCODE, 1, 3);
        p.add(PHASE_COMPUTE, 2, 5);
        p.add(PHASE_REPLAY, 1, 2); // out-of-order: folds into round 1
        assert_eq!(p.phases.compute, 15);
        assert_eq!(p.phases.encode, 3);
        assert_eq!(p.phases.replay, 2);
        assert_eq!(p.per_round.len(), 2);
        assert_eq!(p.per_round[0], (1, totals(10, 3, 0, 2, 0)));
        assert_eq!(p.per_round[1], (2, totals(5, 0, 0, 0, 0)));
    }

    #[test]
    fn profile_merge_combines_rounds_by_key() {
        let mut a = WorkerProfile::default();
        a.add(PHASE_COMPUTE, 0, 4);
        a.add(PHASE_IDLE, 2, 9);
        a.round_latency.record(4);
        let mut b = WorkerProfile::default();
        b.add(PHASE_COMPUTE, 0, 6);
        b.add(PHASE_DECODE, 1, 2);
        b.round_latency.record(6);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba, "merge is order-independent");
        assert_eq!(ab.phases.compute, 10);
        assert_eq!(ab.per_round.len(), 3);
        assert_eq!(ab.per_round[0].0, 0);
        assert_eq!(ab.per_round[1].0, 1);
        assert_eq!(ab.per_round[2].0, 2);
        assert_eq!(ab.round_latency.count, 2);
    }

    #[test]
    fn ticks_profiler_is_deterministic() {
        let build = || {
            let mut p = Profiler::ticks();
            p.set_now(10);
            let t0 = p.start();
            assert!(t0.is_none(), "ticks mode never reads the wall clock");
            let d = p.stop(t0, 42);
            p.add(PHASE_COMPUTE, 0, d);
            p.step_end();
            p.set_now(25);
            p.idle_gap(1);
            p.profile
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert_eq!(a.phases.compute, 42);
        assert_eq!(a.phases.idle, 15);
    }

    #[test]
    fn wall_profiler_measures_nonnegative_micros() {
        let mut p = Profiler::wall();
        let t0 = p.start();
        assert!(t0.is_some());
        let d = p.stop(t0, 999);
        assert_ne!(d, 999, "wall mode ignores the proxy (elapsed ~0us)");
        p.add(PHASE_ENCODE, 0, d);
        p.step_end();
        p.idle_gap(0); // gap measured from step_end; tiny but valid
    }

    #[test]
    fn report_json_is_well_formed_and_deterministic() {
        let mut p0 = WorkerProfile::default();
        p0.add(PHASE_COMPUTE, 0, 100);
        p0.add(PHASE_IDLE, 1, 30);
        p0.round_latency.record(100);
        p0.batch_bytes.record(64);
        let mut p1 = WorkerProfile::default();
        p1.add(PHASE_COMPUTE, 0, 40);
        p1.add(PHASE_ENCODE, 0, 10);
        p1.round_latency.record(40);

        let report = ProfileReport {
            base: TimeBase::VirtualTicks,
            workers: vec![(0, p0.clone()), (1, p1.clone())],
            merged: {
                let mut m = p0.clone();
                m.merge(&p1);
                m
            },
            time_by_rule: vec![90, 50],
            firings_by_rule: vec![9, 5],
            chunk_service: Histogram::new(),
            rounds: Vec::new(),
            hot_rules: vec![HotRule { rule: 0, time: 90, firings: 9 }],
            idle_gaps: vec![IdleGap { worker: 0, round: 1, idle: 30 }],
            rule_labels: Vec::new(),
        };
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "rendering is deterministic");
        assert!(a.starts_with("{\"time_base\":\"virtual_ticks\""));
        assert!(a.contains("\"workers\":[{\"processor\":0"));
        assert!(a.contains("\"hot_rules\":[{\"rule\":0,\"time\":90,\"firings\":9}]"));
        assert!(a.contains("\"idle_gaps\":[{\"worker\":0,\"round\":1,\"idle\":30}]"));
        let human = report.render_human();
        assert!(human.contains("w0"));
        assert!(human.contains("hot rules"));
        let prom = report.to_prometheus();
        assert!(prom.contains("pdatalog_phase_time_total{worker=\"0\",phase=\"compute\"} 100"));
        assert!(prom.contains("pdatalog_phase_time_total{worker=\"1\",phase=\"compute\"} 40"));
        assert!(prom.contains("pdatalog_round_latency_count 2"));

        // Provenance labels are strictly additive: labeled rules gain a
        // "label" key and a human-report suffix, rules without a label
        // (index past the vector, or an empty string) render as before.
        let labeled = report
            .clone()
            .with_rule_labels(vec!["anc^bf [magic r1]".into()]);
        let lj = labeled.to_json();
        assert!(lj.contains(
            "\"hot_rules\":[{\"rule\":0,\"time\":90,\"firings\":9,\"label\":\"anc^bf [magic r1]\"}]"
        ));
        let lh = labeled.render_human();
        assert!(lh.contains("firings  anc^bf [magic r1]"));
        let unlabeled = labeled.with_rule_labels(vec![String::new()]);
        assert!(unlabeled
            .to_json()
            .contains("\"hot_rules\":[{\"rule\":0,\"time\":90,\"firings\":9}]"));
    }
}
