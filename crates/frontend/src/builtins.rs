//! Built-in comparison constraints: `X < Y`, `X >= 3`, `X != Y`, `X = Y`.
//!
//! These are surface-syntax instances of the same [`Constraint`] interface
//! the parallelization schemes use for their discriminating conditions
//! `h(v(r)) = i`: opaque boolean tests over bound variables, pushed into
//! the join by the planner as soon as their variables bind. Like
//! discriminating sequences (paper §3), every variable in a comparison
//! must also appear in a body *atom* — comparisons test values, they do
//! not generate them — which the planner enforces.
//!
//! Ordering across value kinds follows [`gst_common::Value`]'s total
//! order (integers sort before symbols; symbols compare by interning
//! order). Cross-kind comparisons are deterministic but carry no domain
//! meaning; programs normally compare like with like.

use gst_common::{Interner, Value};

use crate::ast::{Constraint, Term, Variable};

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CompareOp {
    /// Apply the operator to two values.
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        match self {
            CompareOp::Lt => lhs < rhs,
            CompareOp::Le => lhs <= rhs,
            CompareOp::Gt => lhs > rhs,
            CompareOp::Ge => lhs >= rhs,
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ne => lhs != rhs,
        }
    }

    /// Surface-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
        }
    }
}

/// The constraint literal `lhs op rhs`.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Term,
    /// The operator.
    pub op: CompareOp,
    /// Right operand.
    pub rhs: Term,
    /// Distinct variables of the two operands, in `lhs, rhs` order —
    /// the binding order [`Constraint::holds`] receives.
    vars: Vec<Variable>,
}

impl Comparison {
    /// Build a comparison literal.
    pub fn new(lhs: Term, op: CompareOp, rhs: Term) -> Self {
        let mut vars = Vec::with_capacity(2);
        for term in [&lhs, &rhs] {
            if let Term::Var(v) = term {
                if !vars.contains(v) {
                    vars.push(*v);
                }
            }
        }
        Comparison { lhs, op, rhs, vars }
    }

    fn value_of(&self, term: &Term, bound: &[Value]) -> Value {
        match term {
            Term::Const(c) => *c,
            Term::Var(v) => {
                let k = self
                    .vars
                    .iter()
                    .position(|bv| bv == v)
                    .expect("operand variable is in vars");
                bound[k]
            }
        }
    }
}

impl Constraint for Comparison {
    fn variables(&self) -> &[Variable] {
        &self.vars
    }

    fn holds(&self, bound: &[Value]) -> bool {
        self.op
            .eval(self.value_of(&self.lhs, bound), self.value_of(&self.rhs, bound))
    }

    fn describe(&self, interner: &Interner) -> String {
        format!(
            "{} {} {}",
            crate::pretty::term(&self.lhs, interner),
            self.op.symbol(),
            crate::pretty::term(&self.rhs, interner),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(interner: &Interner, name: &str) -> Variable {
        Variable(interner.intern(name))
    }

    #[test]
    fn operators_evaluate() {
        let (a, b) = (Value::Int(1), Value::Int(2));
        assert!(CompareOp::Lt.eval(a, b));
        assert!(!CompareOp::Lt.eval(b, a));
        assert!(CompareOp::Le.eval(a, a));
        assert!(CompareOp::Gt.eval(b, a));
        assert!(CompareOp::Ge.eval(b, b));
        assert!(CompareOp::Eq.eval(a, a));
        assert!(CompareOp::Ne.eval(a, b));
    }

    #[test]
    fn var_var_comparison() {
        let i = Interner::new();
        let c = Comparison::new(
            Term::Var(v(&i, "X")),
            CompareOp::Lt,
            Term::Var(v(&i, "Y")),
        );
        assert_eq!(c.variables().len(), 2);
        assert!(c.holds(&[Value::Int(1), Value::Int(5)]));
        assert!(!c.holds(&[Value::Int(5), Value::Int(1)]));
    }

    #[test]
    fn var_const_comparison() {
        let i = Interner::new();
        let c = Comparison::new(Term::Var(v(&i, "X")), CompareOp::Ge, Term::Const(Value::Int(3)));
        assert_eq!(c.variables().len(), 1);
        assert!(c.holds(&[Value::Int(3)]));
        assert!(!c.holds(&[Value::Int(2)]));
    }

    #[test]
    fn repeated_variable_binds_once() {
        let i = Interner::new();
        let x = v(&i, "X");
        let c = Comparison::new(Term::Var(x), CompareOp::Eq, Term::Var(x));
        assert_eq!(c.variables(), &[x]);
        assert!(c.holds(&[Value::Int(9)]));
    }

    #[test]
    fn const_const_comparison_has_no_vars() {
        let c = Comparison::new(
            Term::Const(Value::Int(1)),
            CompareOp::Ne,
            Term::Const(Value::Int(2)),
        );
        assert!(c.variables().is_empty());
        assert!(c.holds(&[]));
    }

    #[test]
    fn describe_renders_surface_syntax() {
        let i = Interner::new();
        let c = Comparison::new(Term::Var(v(&i, "X")), CompareOp::Le, Term::Const(Value::Int(7)));
        assert_eq!(c.describe(&i), "X <= 7");
    }
}
