//! Mergeable log-bucketed histograms.
//!
//! Profiling a parallel run needs distribution shape — p50/p95/p99 round
//! latency, batch sizes, chunk service times — not just totals, and it
//! needs them *mergeable*: every worker records locally and the
//! coordinator folds the per-worker histograms into one without keeping
//! raw samples. [`Histogram`] uses power-of-two buckets (bucket `i ≥ 1`
//! covers `[2^(i-1), 2^i)`; bucket 0 is exactly the value 0), so `merge`
//! is element-wise addition and quantiles are conservative upper bounds
//! with at most one octave of error. Everything is integer arithmetic on
//! whatever unit the caller records (microseconds, virtual ticks, bytes),
//! so merged results are bit-deterministic for deterministic inputs.

/// Number of buckets: bucket 0 for zero, buckets 1..=63 for each octave.
pub const HIST_BUCKETS: usize = 64;

/// A fixed-size log-bucketed histogram of `u64` samples.
///
/// Unit-agnostic: callers record microseconds, virtual ticks, bytes or
/// counts; the histogram only assumes "non-negative integer". Two
/// histograms over the same unit merge by element-wise addition, which is
/// associative and commutative — the property tests in this module pin
/// that, because the runtime relies on it when folding per-worker
/// profiles in arbitrary completion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Sample count per bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total number of recorded samples.
    pub count: u64,
    /// Saturating sum of all recorded samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, otherwise `floor(log2(v)) + 1`,
/// clamped into the table (the last bucket absorbs the top octave).
fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` — what `quantile` reports for a
/// rank that lands in that bucket.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Fold `other` into `self`: element-wise bucket addition plus
    /// combined count/sum/min/max. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (slot, &n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Conservative `q`-quantile (`0.0 ..= 1.0`): the inclusive upper
    /// bound of the bucket holding the sample of rank `ceil(q · count)`,
    /// clamped to the observed `max`. The result is never below the true
    /// quantile and overshoots by less than one octave (2×). Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; q=0 means the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded samples, rounded down. 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nonzero buckets as `(bucket_index, count)` pairs — the sparse
    /// representation used by the wire codec and the JSON export.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
    }

    /// Rebuild from the sparse representation plus scalar summary fields.
    /// Out-of-range bucket indices land in the last bucket (the decoder
    /// must never panic on adversarial input).
    pub fn from_sparse(pairs: &[(usize, u64)], count: u64, sum: u64, min: u64, max: u64) -> Self {
        let mut h = Histogram {
            count,
            sum,
            min,
            max,
            ..Default::default()
        };
        for &(i, n) in pairs {
            h.buckets[i.min(HIST_BUCKETS - 1)] += n;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng;

    fn seeded_samples(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Mix magnitudes: small counts, mid-range, and an
                // occasional huge outlier, so every regime is exercised.
                match rng.next_u64() % 10 {
                    0 => 0,
                    1..=5 => rng.next_u64() % 100,
                    6..=8 => rng.next_u64() % 1_000_000,
                    _ => rng.next_u64(),
                }
            })
            .collect()
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        for i in 1..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower bound of {i}");
            if i < 63 {
                assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound of {i}");
            }
        }
    }

    #[test]
    fn record_tracks_summary_fields() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(0);
        h.record(900);
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 907);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 900);
        assert_eq!(h.mean(), 302);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    /// Quantile bound property on seeded inputs: the reported quantile is
    /// at least the true quantile and at most the upper bound of the true
    /// quantile's bucket (≤ one octave overshoot), clamped to max.
    #[test]
    fn quantile_bounds_on_seeded_inputs() {
        for seed in 0..20u64 {
            let samples = seeded_samples(seed, 500);
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for &q in &[0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let est = h.quantile(q);
                assert!(
                    est >= truth,
                    "seed {seed} q {q}: estimate {est} below true {truth}"
                );
                let ceiling = bucket_upper(bucket_index(truth)).min(h.max);
                assert!(
                    est <= ceiling,
                    "seed {seed} q {q}: estimate {est} above bucket ceiling {ceiling}"
                );
            }
        }
    }

    /// Merge associativity on seeded inputs: (a ∪ b) ∪ c == a ∪ (b ∪ c),
    /// and merging in either order equals recording every sample into one
    /// histogram directly.
    #[test]
    fn merge_is_associative_and_commutative() {
        for seed in 0..20u64 {
            let parts: Vec<Vec<u64>> = (0..3)
                .map(|i| seeded_samples(seed * 3 + i, 200))
                .collect();
            let hist_of = |samples: &[u64]| {
                let mut h = Histogram::new();
                for &s in samples {
                    h.record(s);
                }
                h
            };
            let (a, b, c) = (hist_of(&parts[0]), hist_of(&parts[1]), hist_of(&parts[2]));

            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);

            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);

            let mut direct = Histogram::new();
            for part in &parts {
                for &s in part {
                    direct.record(s);
                }
            }

            let mut reversed = c.clone();
            reversed.merge(&b);
            reversed.merge(&a);

            assert_eq!(left, right, "seed {seed}: merge not associative");
            assert_eq!(left, direct, "seed {seed}: merge differs from direct recording");
            assert_eq!(left, reversed, "seed {seed}: merge not commutative");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
        let mut empty = Histogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn sparse_round_trip() {
        let mut h = Histogram::new();
        for v in [0, 1, 5, 5, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        let pairs: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        let back = Histogram::from_sparse(&pairs, h.count, h.sum, h.min, h.max);
        assert_eq!(h, back);
    }

    #[test]
    fn from_sparse_clamps_wild_indices() {
        let h = Histogram::from_sparse(&[(usize::MAX, 3)], 3, 9, 1, 5);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 3);
    }
}
