//! Wire format between workers.

use std::sync::Arc;

use gst_eval::plan::RelationId;

use crate::termination::TokenMsg;

/// An immutable, cheaply cloneable serialized batch. Cloning an envelope
/// (e.g. when the fault injector duplicates a delivery) copies a pointer,
/// not the payload.
pub type Payload = Arc<Vec<u8>>;

/// A message traveling on a channel `i → j`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// A serialized batch of derived tuples for the destination's inbox
    /// predicate (see [`crate::codec`]). This is the paper's channel
    /// relation `t_ij`: "addition of tuples to the predicate `t_ij` ...
    /// should be interpreted as processor i sending the tuples to
    /// processor j". Batches travel encoded so communication is measured
    /// in wire bytes. The inbox rides in the envelope, not the payload:
    /// payload bytes are destination-independent, so a broadcast encodes
    /// its delta once and every destination shares the same `Arc`.
    Batch {
        /// The destination's inbox predicate the tuples inject into.
        inbox: RelationId,
        /// The encoded columnar batch.
        payload: Payload,
        /// Delete-marked batch: the tuples are retractions (facts of a
        /// DRed `~del` predicate shipped during an update round's
        /// over-deletion phase) rather than derivations. Injection and
        /// replay are identical to ordinary batches — the deletion
        /// phase is itself a monotone fixpoint over `~del` facts — but
        /// receivers account the traffic separately.
        retract: bool,
    },
    /// Safra's termination-detection token, traveling the ring.
    Token(TokenMsg),
    /// Global termination announcement (from the ring initiator).
    Terminate,
    /// Ring repair: processor `restarted` was rebuilt; every receiver
    /// enters `epoch`, voids pre-epoch accounting, and answers with
    /// [`Message::AckSync`] so senders know where to replay from.
    Recover {
        /// The new recovery epoch.
        epoch: u64,
        /// The processor that was restarted.
        restarted: usize,
    },
    /// Recovery handshake: "my contiguous receive watermark for your link
    /// is `acked` — replay everything from there". Sent to every peer on
    /// [`Message::Recover`].
    AckSync {
        /// All batch sequence numbers `< acked` on this link have been
        /// absorbed by the sender of this message.
        acked: u64,
    },
    /// Replay of a compacted log prefix: the union of every batch with
    /// sequence number `< upto` on this link, one payload per inbox
    /// predicate. Sets the receiver's watermark to `upto`.
    Snapshot {
        /// One encoded batch per inbox the compacted prefix touched.
        payloads: Vec<(RelationId, Payload)>,
        /// The watermark this snapshot stands in for.
        upto: u64,
    },
    /// Fatal-error broadcast from the supervisor: tear down immediately
    /// instead of idling into the watchdog.
    Abort {
        /// Human-readable cause (the originating worker's error).
        reason: String,
    },
}

impl Message {
    /// Short tag for traces and diagnostics.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Batch { .. } => MessageKind::Batch,
            Message::Token(_) => MessageKind::Token,
            Message::Terminate => MessageKind::Terminate,
            Message::Recover { .. } => MessageKind::Recover,
            Message::AckSync { .. } => MessageKind::AckSync,
            Message::Snapshot { .. } => MessageKind::Snapshot,
            Message::Abort { .. } => MessageKind::Abort,
        }
    }
}

/// The variant of a [`Message`], without its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageKind {
    /// A tuple batch (the only kind subject to duplication/drop faults).
    Batch,
    /// A termination-detection token.
    Token,
    /// The termination broadcast.
    Terminate,
    /// The ring-repair broadcast.
    Recover,
    /// The recovery watermark handshake.
    AckSync,
    /// A compacted replay-log prefix.
    Snapshot,
    /// The fatal-error teardown broadcast.
    Abort,
}

impl std::fmt::Display for MessageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MessageKind::Batch => write!(f, "batch"),
            MessageKind::Token => write!(f, "token"),
            MessageKind::Terminate => write!(f, "terminate"),
            MessageKind::Recover => write!(f, "recover"),
            MessageKind::AckSync => write!(f, "ack-sync"),
            MessageKind::Snapshot => write!(f, "snapshot"),
            MessageKind::Abort => write!(f, "abort"),
        }
    }
}

/// A message with its routing metadata, as delivered to a worker's queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending processor index.
    pub from: usize,
    /// Per-link sequence number, assigned by the sender. Batches draw from
    /// a dense per-link space (so the receiver can keep a contiguous
    /// watermark for replay truncation); control messages draw from a
    /// separate space used only for traces. A transport that duplicates a
    /// delivery (fault injection) reuses the sequence number, so the
    /// receiver can keep the termination detector's message accounting
    /// exact while still absorbing the duplicate payload (harmless under
    /// set semantics).
    pub seq: u64,
    /// Recovery epoch the envelope was sent in. Receivers in a later epoch
    /// drop the envelope uncounted — its content is guaranteed by replay.
    pub epoch: u64,
    /// Piggybacked cumulative acknowledgement: the sender's contiguous
    /// receive watermark for the *destination's* link. Lets the receiver
    /// truncate (compact) its replay log for this link.
    pub ack: u64,
    /// Payload.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::termination::{Color, TokenMsg};
    use gst_common::ituple;

    #[test]
    fn envelope_carries_payloads() {
        let interner = gst_common::Interner::new();
        let pred = (interner.intern("anc_in"), 2);
        let payload = crate::codec::encode_batch(pred.1, &[ituple![1, 2]]).unwrap();
        let env = Envelope {
            from: 3,
            seq: 0,
            epoch: 0,
            ack: 0,
            message: Message::Batch { inbox: pred, payload, retract: false },
        };
        assert_eq!(env.from, 3);
        assert_eq!(env.message.kind(), MessageKind::Batch);
        match env.message {
            Message::Batch { inbox, payload, retract: false } => {
                assert_eq!(inbox, pred, "the inbox rides in the envelope");
                let tuples = crate::codec::decode_batch(&payload).unwrap();
                assert_eq!(tuples, vec![ituple![1, 2]]);
            }
            _ => panic!("wrong variant"),
        }
        let tok = Envelope {
            from: 0,
            seq: 1,
            epoch: 0,
            ack: 0,
            message: Message::Token(TokenMsg {
                color: Color::White,
                count: 0,
                epoch: 0,
            }),
        };
        assert_eq!(tok.message.kind(), MessageKind::Token);
        let term = Envelope {
            from: 0,
            seq: 2,
            epoch: 0,
            ack: 0,
            message: Message::Terminate,
        };
        assert_eq!(term.message.kind(), MessageKind::Terminate);
    }

    #[test]
    fn envelope_clone_shares_payload() {
        let interner = gst_common::Interner::new();
        let pred = (interner.intern("t_in"), 1);
        let payload = crate::codec::encode_batch(pred.1, &[ituple![7]]).unwrap();
        let env = Envelope {
            from: 1,
            seq: 9,
            epoch: 0,
            ack: 0,
            message: Message::Batch { inbox: pred, payload, retract: false },
        };
        let dup = env.clone();
        match (&env.message, &dup.message) {
            (Message::Batch { payload: a, .. }, Message::Batch { payload: b, .. }) => {
                assert!(std::sync::Arc::ptr_eq(a, b), "clone is pointer-cheap");
            }
            _ => panic!("wrong variants"),
        }
        assert_eq!(env, dup);
    }

    #[test]
    fn recovery_kinds_have_display_tags() {
        for (msg, tag) in [
            (Message::Recover { epoch: 1, restarted: 2 }, "recover"),
            (Message::AckSync { acked: 3 }, "ack-sync"),
            (Message::Snapshot { payloads: vec![], upto: 4 }, "snapshot"),
            (Message::Abort { reason: "boom".into() }, "abort"),
        ] {
            assert_eq!(msg.kind().to_string(), tag);
        }
    }
}
