//! S1: execution cost along the §6 spectrum — each α value is one point
//! between the non-redundant and zero-communication extremes.

use std::sync::Arc;

use gst_bench::micro::{BenchmarkId, Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_core::discriminator::{DiscriminatorRef, HashMod, Mixed};
use gst_core::prelude::{rewrite_generalized, GeneralizedConfig};
use gst_frontend::{LinearSirup, Variable};
use gst_workloads::{grid, linear_ancestor};

fn bench_tradeoff(c: &mut Criterion) {
    let n = 4;
    let fx = linear_ancestor();
    let db = fx.database(&grid(7, 7));
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let var = |name: &str| Variable(fx.program.interner.get(name).unwrap());
    let base: DiscriminatorRef = Arc::new(HashMod::new(n, 23));

    let mut group = c.benchmark_group("tradeoff-grid7x7");
    group.sample_size(10);
    for alpha in [0.0, 0.5, 1.0] {
        let h_locals: Vec<DiscriminatorRef> = (0..n)
            .map(|i| Arc::new(Mixed::new(i, base.clone(), alpha, 31)) as DiscriminatorRef)
            .collect();
        let cfg = GeneralizedConfig {
            v_r: vec![var("Z")],
            v_e: vec![var("X")],
            h_prime: base.clone(),
            h_locals,
        };
        let scheme = rewrite_generalized(&sirup, &cfg, &db).unwrap();
        group.bench_with_input(
            BenchmarkId::new("alpha", format!("{alpha:.1}")),
            &scheme,
            |b, s| b.iter(|| s.run().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_tradeoff);
criterion_main!(benches);
