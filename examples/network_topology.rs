//! Section 5 of the paper, live: dataflow graphs (Figures 1–2), minimal
//! network graphs derived at compile time (Figures 3–4), and a runtime
//! validation that observed channel traffic stays inside the derived
//! network.
//!
//! ```text
//! cargo run --release --example network_topology
//! ```

use std::sync::Arc;

use parallel_datalog::core::dataflow::DataflowGraph;
use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{chain_sirup, example6_sirup, linear_ancestor, random_digraph};

fn main() -> Result<()> {
    // ---- Figure 1: dataflow graph of the chain sirup ----------------
    let fx = chain_sirup();
    let s = LinearSirup::from_program(&fx.program)?;
    let g = DataflowGraph::of(&s);
    println!("Figure 1 — dataflow graph of p(U,V,W) :- p(V,W,Z), q(U,Z):");
    println!("  {}\n", g.display());

    // ---- Figure 2: ancestor has a cycle → Theorem 3 applies ---------
    let fx_anc = linear_ancestor();
    let s_anc = LinearSirup::from_program(&fx_anc.program)?;
    let g_anc = DataflowGraph::of(&s_anc);
    println!("Figure 2 — dataflow graph of anc(X,Y) :- par(X,Z), anc(Z,Y):");
    println!("  {} (a cycle)", g_anc.display());
    let choice = zero_comm_choice(&s_anc)?;
    println!(
        "  Theorem 3 chooses v(r) = ⟨{}⟩ ⇒ communication-free execution\n",
        choice
            .v_r
            .iter()
            .map(|v| v.name(&fx_anc.program.interner))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // ---- Figure 3: Example 6's network on four processors -----------
    let fx6 = example6_sirup();
    let s6 = LinearSirup::from_program(&fx6.program)?;
    let var = |name: &str| Variable(fx6.program.interner.get(name).unwrap());
    let h6 = BitVector::new(BitFn::new(1), 2);
    let net6 = derive_network(&s6, &[var("Y"), var("Z")], &[var("X"), var("Y")], &h6)?;
    println!("Figure 3 — minimal network for Example 6, h(a,b) = (g(a),g(b)):");
    for line in net6.display().lines() {
        println!("  {line}");
    }
    let (have, possible) = net6.density();
    println!("  ({have} of {possible} possible channels)\n");

    // ---- Figure 4: Example 7's network from the linear system -------
    let s7 = LinearSirup::from_program(&chain_sirup().program)?;
    let var7 = |name: &str| Variable(chain_sirup().program.interner.get(name).unwrap());
    let _ = var7; // names resolved on fx's interner below
    let i7 = &s7.program.interner;
    let v = |n: &str| Variable(i7.get(n).unwrap());
    let h7 = Linear::new(BitFn::new(1), vec![1, -1, 1]);
    println!(
        "Figure 4 — minimal network for Example 7, h = g(a1)-g(a2)+g(a3), P = {:?}:",
        h7.processor_values()
    );
    let net7 = derive_network(&s7, &[v("V"), v("W"), v("Z")], &[v("U"), v("V"), v("W")], &h7)?;
    for line in net7.display().lines() {
        println!("  {line}");
    }
    let (have, possible) = net7.density();
    println!("  ({have} of {possible} possible channels)\n");

    // ---- Runtime validation: observed traffic ⊆ derived network -----
    println!("validating Example 6's network against a real execution…");
    let edges = random_digraph(40, 90, 7);
    let r_edges = random_digraph(40, 120, 8);
    let db = fx6.database_multi(&[edges, r_edges]);
    let h: DiscriminatorRef = Arc::new(h6.clone());
    let cfg = NonRedundantConfig {
        v_r: vec![var("Y"), var("Z")],
        v_e: vec![var("X"), var("Y")],
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let scheme = rewrite_non_redundant(&s6, &cfg, &db)?;
    let outcome = scheme.run()?;
    let used = outcome.stats.used_channels();
    println!(
        "  channels used at runtime: {:?}",
        used.iter()
            .map(|&(i, j)| format!("{}→{}", net6.labels[i], net6.labels[j]))
            .collect::<Vec<_>>()
    );
    assert!(
        net6.covers(&used),
        "soundness: every used channel must be predicted"
    );
    println!("  all observed traffic is inside the derived network ✓");
    Ok(())
}
