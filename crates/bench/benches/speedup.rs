//! P1: scaling of the zero-communication scheme with worker count on a
//! wide layered workload (plus the sequential baseline for reference).

use gst_bench::micro::{BenchmarkId, Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_core::prelude::example1_wolfson;
use gst_eval::seminaive_eval;
use gst_frontend::LinearSirup;
use gst_workloads::{layered, linear_ancestor};

fn bench_speedup(c: &mut Criterion) {
    let fx = linear_ancestor();
    let edges = layered(6, 120, 3, 99);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program).unwrap();

    let mut group = c.benchmark_group("speedup-layered");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| seminaive_eval(&fx.program, &db).unwrap())
    });
    for n in [1usize, 2, 4, 8] {
        let scheme = example1_wolfson(&sirup, n, &db).unwrap();
        group.bench_with_input(BenchmarkId::new("workers", n), &scheme, |b, s| {
            b.iter(|| s.run().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
