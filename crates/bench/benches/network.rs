//! F3/F4: compile-time derivation of the minimal network graphs of
//! Examples 6 and 7 (bit-vector and linear discriminating functions).

use gst_bench::micro::{Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_core::discriminator::{BitFn, BitVector, Linear};
use gst_core::network::derive_network;
use gst_frontend::{LinearSirup, Variable};
use gst_workloads::{chain_sirup, example6_sirup};

fn bench_network(c: &mut Criterion) {
    let fx6 = example6_sirup();
    let s6 = LinearSirup::from_program(&fx6.program).unwrap();
    let v = |n: &str| Variable(fx6.program.interner.get(n).unwrap());
    let (vr6, ve6) = (vec![v("Y"), v("Z")], vec![v("X"), v("Y")]);
    let bv = BitVector::new(BitFn::new(1), 2);
    c.bench_function("network/figure3-example6", |b| {
        b.iter(|| derive_network(&s6, &vr6, &ve6, &bv).unwrap())
    });

    let fx7 = chain_sirup();
    let s7 = LinearSirup::from_program(&fx7.program).unwrap();
    let v7 = |n: &str| Variable(fx7.program.interner.get(n).unwrap());
    let (vr7, ve7) = (
        vec![v7("V"), v7("W"), v7("Z")],
        vec![v7("U"), v7("V"), v7("W")],
    );
    let lin = Linear::new(BitFn::new(1), vec![1, -1, 1]);
    c.bench_function("network/figure4-example7", |b| {
        b.iter(|| derive_network(&s7, &vr7, &ve7, &lin).unwrap())
    });
}

criterion_group!(benches, bench_network);
criterion_main!(benches);
