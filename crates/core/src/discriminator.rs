//! Discriminating functions (paper §3).
//!
//! A discriminating function maps ground instances of a *discriminating
//! sequence of variables* to processors:
//!
//! ```text
//! h : set of ground instances of v(r) → P
//! ```
//!
//! Every concrete function here is deterministic and free of per-instance
//! state, so all workers of a run — and repeated runs — agree on every
//! assignment. The implementations cover each function the paper uses:
//!
//! * [`HashMod`] — an arbitrary hash partition (the "discriminating
//!   functions based on hashing" of §3, and Examples 1/3);
//! * [`SymmetricHashMod`] — order-invariant hashing, the function family
//!   that realizes Theorem 3's zero-communication choice for cyclic
//!   dataflow graphs (the cycle permutes the sequence, so `h` must not
//!   care about order);
//! * [`BitVector`] — `h(a₁…a_L) = (g(a₁), …, g(a_L))` over a bit-valued
//!   `g`, the four-processor function of Example 6;
//! * [`Linear`] — `h(a₁…a_L) = Σ c_k · g(a_k)`, the linear function of
//!   Example 7 whose network graph is derived by solving linear systems;
//! * [`FragmentOwner`] — `h(t) = i ⇔ t ∈ fragmentⁱ`, Example 2's
//!   function; **not locally evaluable** (processor `i` cannot test
//!   membership in a fragment it does not store), which is exactly why
//!   Example 2 broadcasts;
//! * [`Constant`] — `h_i(x) = i`, the keep-everything-local choice that
//!   §6 shows degenerates to the redundant, communication-free scheme of
//!   [Wolfson 88];
//! * [`Mixed`] — keep a tuple local with probability `α` (deterministic
//!   per tuple), else defer to a base function: the knob that sweeps §6's
//!   redundancy/communication spectrum.

use std::sync::Arc;

use gst_common::fxhash::hash_one;
use gst_common::{Error, Interner, Result, Value};
use gst_frontend::{Constraint, Variable};
use gst_storage::Fragmentation;

/// A discriminating function: ground tuple → processor.
pub trait Discriminator: Send + Sync {
    /// Number of processors in the range `P = {0, …, processors()-1}`.
    fn processors(&self) -> usize;

    /// Assign a ground instance to a processor.
    fn assign(&self, ground: &[Value]) -> usize;

    /// Whether a processor can evaluate this function from a tuple alone.
    /// When `false`, sending rules cannot carry the `h(v(r)) = j`
    /// condition and the scheme falls back to broadcasting (paper §4,
    /// Example 2: "the second conjunct ... cannot be verified at
    /// processor i. Hence, all tuples ... are communicated").
    fn locally_evaluable(&self) -> bool {
        true
    }

    /// Human-readable name for reports.
    fn describe(&self) -> String;

    /// Append this function's wire encoding to `buf`, or return `false`
    /// when the implementation cannot travel across a process boundary.
    ///
    /// Every concrete function in this module encodes itself (the format
    /// lives in [`decode_constraint`]); the default covers out-of-tree
    /// implementations, which a multi-process transport rejects with a
    /// clean error instead of shipping an unevaluable rule.
    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        let _ = buf;
        false
    }

    /// The set of processors a ground instance could be assigned to when
    /// only a leading `prefix` of the discriminating sequence is known, or
    /// `None` when the prefix does not narrow the range (the default).
    ///
    /// This is the hook behind §6-style replication: a fragmenting base
    /// atom that binds only the key prefix of an extended sequence keeps a
    /// tuple at every processor in the returned set. Implementations must
    /// stay consistent with [`Discriminator::assign`]: for every full
    /// ground instance extending `prefix`, the assigned processor must be
    /// a member of the returned set.
    fn assign_prefix(&self, prefix: &[Value]) -> Option<Vec<usize>> {
        let _ = prefix;
        None
    }
}

/// Shared handle to a discriminating function.
pub type DiscriminatorRef = Arc<dyn Discriminator>;

/// The bit-valued helper `g : constants → {0, 1}` of Examples 6 and 7.
///
/// "Let g be any arbitrary function on the domain ... with range {0,1}" —
/// we use one hash bit, parameterized by `seed` so experiments can draw
/// several independent `g`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BitFn {
    /// Seed mixed into the hash, selecting one function from the family.
    pub seed: u64,
}

impl BitFn {
    /// The function `g` with the given seed.
    pub fn new(seed: u64) -> Self {
        BitFn { seed }
    }

    /// Evaluate `g(value) ∈ {0, 1}`.
    pub fn bit(&self, value: Value) -> u8 {
        // Take the top bit: FxHash's final multiply mixes high bits far
        // better than low ones (the low bit survives odd multiplication).
        (hash_one(&(self.seed, value)) >> 63) as u8
    }
}

/// `h(ā) = hash(ā) mod n` — an arbitrary hash partition.
#[derive(Debug, Clone)]
pub struct HashMod {
    n: usize,
    seed: u64,
}

impl HashMod {
    /// A hash partition over `n` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one processor");
        HashMod { n, seed }
    }
}

impl Discriminator for HashMod {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, ground: &[Value]) -> usize {
        (hash_one(&(self.seed, ground)) % self.n as u64) as usize
    }

    fn describe(&self) -> String {
        format!("hash mod {}", self.n)
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_HASH_MOD);
        wire::put_uv(buf, self.n as u64);
        wire::put_uv(buf, self.seed);
        true
    }
}

/// Order-invariant hash partition: `h(ā) = (Σ hash(a_k)) mod n`.
///
/// Realizes Theorem 3: when the discriminating positions lie on a cycle of
/// the dataflow graph, the multiset of values at those positions is
/// preserved from consumed tuple to produced tuple, so a symmetric `h`
/// keeps every derivation on one processor.
#[derive(Debug, Clone)]
pub struct SymmetricHashMod {
    n: usize,
    seed: u64,
}

impl SymmetricHashMod {
    /// A symmetric hash partition over `n` processors.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1);
        SymmetricHashMod { n, seed }
    }
}

impl Discriminator for SymmetricHashMod {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, ground: &[Value]) -> usize {
        let sum: u64 = ground
            .iter()
            .map(|v| hash_one(&(self.seed, v)))
            .fold(0u64, u64::wrapping_add);
        (sum % self.n as u64) as usize
    }

    fn describe(&self) -> String {
        format!("symmetric hash mod {}", self.n)
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_SYMMETRIC);
        wire::put_uv(buf, self.n as u64);
        wire::put_uv(buf, self.seed);
        true
    }
}

/// Example 6's function: `h(a₁…a_L) = (g(a₁), …, g(a_L))`, a bit string
/// read big-endian as the processor index; `2^L` processors.
#[derive(Debug, Clone)]
pub struct BitVector {
    g: BitFn,
    len: usize,
}

impl BitVector {
    /// Bit-vector function over sequences of length `len`.
    pub fn new(g: BitFn, len: usize) -> Self {
        assert!((1..=16).contains(&len), "2^len processors must stay sane");
        BitVector { g, len }
    }

    /// Render a processor index as the paper's bit-string, e.g. `(01)`.
    pub fn processor_name(&self, index: usize) -> String {
        let mut s = String::with_capacity(self.len + 2);
        s.push('(');
        for k in 0..self.len {
            let bit = (index >> (self.len - 1 - k)) & 1;
            s.push(if bit == 1 { '1' } else { '0' });
        }
        s.push(')');
        s
    }
}

impl Discriminator for BitVector {
    fn processors(&self) -> usize {
        1 << self.len
    }

    fn assign(&self, ground: &[Value]) -> usize {
        debug_assert_eq!(ground.len(), self.len);
        ground
            .iter()
            .fold(0usize, |acc, &v| (acc << 1) | self.g.bit(v) as usize)
    }

    fn describe(&self) -> String {
        format!("(g(a1),…,g(a{})) bit vector", self.len)
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_BIT_VECTOR);
        wire::put_uv(buf, self.g.seed);
        wire::put_uv(buf, self.len as u64);
        true
    }
}

/// Example 7's function: `h(a₁…a_L) = Σ c_k · g(a_k)`; the processor set
/// is the set of achievable sums (e.g. `{0, 1, −1, 2}` for `+1 −1 +1`),
/// indexed in sorted order.
#[derive(Debug, Clone)]
pub struct Linear {
    g: BitFn,
    coefficients: Vec<i64>,
    /// Sorted distinct achievable values; index = processor id.
    values: Vec<i64>,
}

impl Linear {
    /// Linear function with the given ±1 (or any integer) coefficients.
    pub fn new(g: BitFn, coefficients: Vec<i64>) -> Self {
        assert!(!coefficients.is_empty() && coefficients.len() <= 20);
        let values = achievable_sums(&coefficients);
        Linear {
            g,
            coefficients,
            values,
        }
    }

    /// The achievable sums, sorted: the paper's processor set `P`.
    pub fn processor_values(&self) -> &[i64] {
        &self.values
    }

    /// Processor index of an achievable sum.
    pub fn processor_of_value(&self, value: i64) -> Option<usize> {
        self.values.binary_search(&value).ok()
    }

    /// The coefficients `c_k`.
    pub fn coefficients(&self) -> &[i64] {
        &self.coefficients
    }
}

/// All sums `Σ c_k·b_k` over `b ∈ {0,1}^L`, sorted and deduplicated.
pub fn achievable_sums(coefficients: &[i64]) -> Vec<i64> {
    let mut values = vec![0i64];
    for &c in coefficients {
        let mut next = Vec::with_capacity(values.len() * 2);
        for &v in &values {
            next.push(v);
            next.push(v + c);
        }
        next.sort_unstable();
        next.dedup();
        values = next;
    }
    values
}

impl Discriminator for Linear {
    fn processors(&self) -> usize {
        self.values.len()
    }

    fn assign(&self, ground: &[Value]) -> usize {
        debug_assert_eq!(ground.len(), self.coefficients.len());
        let sum: i64 = ground
            .iter()
            .zip(&self.coefficients)
            .map(|(&v, &c)| c * self.g.bit(v) as i64)
            .sum();
        self.processor_of_value(sum)
            .expect("every bit assignment yields an achievable sum")
    }

    fn describe(&self) -> String {
        let terms: Vec<String> = self
            .coefficients
            .iter()
            .enumerate()
            .map(|(k, c)| match c {
                1 => format!("+g(a{})", k + 1),
                -1 => format!("-g(a{})", k + 1),
                c => format!("{:+}·g(a{})", c, k + 1),
            })
            .collect();
        format!("linear {}", terms.join(" "))
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_LINEAR);
        wire::put_uv(buf, self.g.seed);
        wire::put_uv(buf, self.coefficients.len() as u64);
        for &c in &self.coefficients {
            wire::put_sv(buf, c);
        }
        true
    }
}

/// Example 2's function: `h(t) = i ⇔ t ∈ fragmentⁱ`. Only the site
/// storing the fragment can evaluate membership, so this function is not
/// locally evaluable and forces broadcasting.
#[derive(Debug, Clone)]
pub struct FragmentOwner {
    fragmentation: Arc<Fragmentation>,
}

impl FragmentOwner {
    /// Ownership function of an existing fragmentation.
    pub fn new(fragmentation: Arc<Fragmentation>) -> Self {
        FragmentOwner { fragmentation }
    }
}

impl Discriminator for FragmentOwner {
    fn processors(&self) -> usize {
        self.fragmentation.len()
    }

    fn assign(&self, ground: &[Value]) -> usize {
        // Tuples outside every fragment can never fire a processing rule;
        // parking them on processor 0 is safe and keeps `assign` total.
        self.fragmentation
            .owner_of(&gst_common::Tuple::new(ground))
            .unwrap_or(0)
    }

    fn locally_evaluable(&self) -> bool {
        false
    }

    fn describe(&self) -> String {
        format!("fragment owner over {} fragments", self.fragmentation.len())
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        // The fragments themselves travel: ownership is defined by
        // membership, so the function *is* the data.
        buf.push(wire::DISC_FRAGMENT_OWNER);
        wire::put_uv(buf, self.fragmentation.len() as u64);
        let arity = self
            .fragmentation
            .fragments()
            .first()
            .map_or(0, |f| f.arity());
        wire::put_uv(buf, arity as u64);
        for fragment in self.fragmentation.fragments() {
            wire::put_uv(buf, fragment.len() as u64);
            for tuple in fragment.iter() {
                for &value in tuple.as_slice() {
                    wire::put_value(buf, value);
                }
            }
        }
        true
    }
}

/// `h_i(x) = i` — route everything to a fixed processor (§6: with every
/// processor using its own constant, no tuple ever leaves its producer).
#[derive(Debug, Clone)]
pub struct Constant {
    n: usize,
    target: usize,
}

impl Constant {
    /// The constant function onto `target` out of `n` processors.
    pub fn new(n: usize, target: usize) -> Self {
        assert!(target < n);
        Constant { n, target }
    }
}

impl Discriminator for Constant {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, _ground: &[Value]) -> usize {
        self.target
    }

    fn describe(&self) -> String {
        format!("constant {}", self.target)
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_CONSTANT);
        wire::put_uv(buf, self.n as u64);
        wire::put_uv(buf, self.target as u64);
        true
    }
}

/// §6 spectrum knob: keep a tuple on `local` with probability `alpha`
/// (decided by a deterministic hash of the tuple), otherwise defer to
/// `base`. `alpha = 0` reproduces the non-redundant scheme, `alpha = 1`
/// the redundant zero-communication scheme.
#[derive(Clone)]
pub struct Mixed {
    local: usize,
    base: DiscriminatorRef,
    alpha: f64,
    seed: u64,
}

impl Mixed {
    /// Keep-local mix for processor `local`.
    pub fn new(local: usize, base: DiscriminatorRef, alpha: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&alpha));
        assert!(local < base.processors());
        Mixed {
            local,
            base,
            alpha,
            seed,
        }
    }
}

impl Discriminator for Mixed {
    fn processors(&self) -> usize {
        self.base.processors()
    }

    fn assign(&self, ground: &[Value]) -> usize {
        let draw = hash_one(&(self.seed, ground)) as f64 / u64::MAX as f64;
        if draw < self.alpha {
            self.local
        } else {
            self.base.assign(ground)
        }
    }

    fn describe(&self) -> String {
        format!(
            "keep-local(p={}, α={:.2}) else {}",
            self.local,
            self.alpha,
            self.base.describe()
        )
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_MIXED);
        wire::put_uv(buf, self.local as u64);
        wire::put_uv(buf, self.alpha.to_bits());
        wire::put_uv(buf, self.seed);
        self.base.wire_encode_into(buf)
    }
}

/// Skew-aware hash partition over an *extended* discriminating sequence
/// (ROADMAP item 4 / §6 `R_i` trade-off).
///
/// The sequence is `key ++ rest`: the first `key_len` positions are the
/// join key the classic [`HashMod`] would partition on, the remainder are
/// the other variables of the recursive atom. Cold keys route exactly like
/// `HashMod` on the key prefix, so the scheme degenerates to the uniform
/// plan when no skew is detected. Keys sampled as *hot* at compile time
/// carry an explicit split set of `k` processors, and each full instance
/// picks one member by a secondary hash over the whole sequence — the
/// firings of one hot key spread across `k` workers instead of melting
/// one. Correctness is the standard Theorem 1/2 argument: this is just a
/// deterministic total function over a longer valid discriminating
/// sequence. The price is §6's `R_i` redundancy: the complementary base
/// fragment of a hot key must be replicated to every processor in its
/// split set, which [`Discriminator::assign_prefix`] exposes to the
/// fragmenter.
#[derive(Debug, Clone)]
pub struct SkewAwareHashMod {
    n: usize,
    key_len: usize,
    seed: u64,
    secondary_seed: u64,
    /// Hot keys with their split sets, sorted by key for deterministic
    /// lookup and wire encoding. Split sets are sorted, deduplicated, and
    /// non-empty, with every member `< n`.
    hot: Vec<(Vec<Value>, Vec<usize>)>,
}

impl SkewAwareHashMod {
    /// A skew-aware partition over `n` processors with a `key_len`-value
    /// key prefix and no hot keys (behaves exactly like [`HashMod`] over
    /// the prefix).
    pub fn new(n: usize, key_len: usize, seed: u64, secondary_seed: u64) -> Self {
        assert!(n >= 1, "need at least one processor");
        assert!(key_len >= 1, "key prefix must be non-empty");
        SkewAwareHashMod {
            n,
            key_len,
            seed,
            secondary_seed,
            hot: Vec::new(),
        }
    }

    /// Register hot keys with their split sets. Keys must have exactly
    /// `key_len` values; split sets are sorted and deduplicated, must be
    /// non-empty, and every member must be a valid processor.
    pub fn with_hot_keys(mut self, hot: impl IntoIterator<Item = (Vec<Value>, Vec<usize>)>) -> Self {
        for (key, mut targets) in hot {
            assert_eq!(key.len(), self.key_len, "hot key length mismatch");
            targets.sort_unstable();
            targets.dedup();
            assert!(!targets.is_empty(), "hot key needs at least one target");
            assert!(
                targets.iter().all(|&t| t < self.n),
                "hot key target out of range"
            );
            self.hot.push((key, targets));
        }
        self.hot.sort();
        self.hot.dedup_by(|a, b| a.0 == b.0);
        self
    }

    /// Number of hot keys carrying a split set — the `hot_keys_split`
    /// figure surfaced in `--stats`.
    pub fn hot_key_count(&self) -> usize {
        self.hot.len()
    }

    /// The base assignment of a key prefix, ignoring hot-key splitting.
    fn base_assign(&self, key: &[Value]) -> usize {
        (hash_one(&(self.seed, key)) % self.n as u64) as usize
    }

    /// The split set of a hot key, if the key is hot.
    fn split_set(&self, key: &[Value]) -> Option<&[usize]> {
        self.hot
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.hot[i].1.as_slice())
    }
}

impl Discriminator for SkewAwareHashMod {
    fn processors(&self) -> usize {
        self.n
    }

    fn assign(&self, ground: &[Value]) -> usize {
        debug_assert!(ground.len() >= self.key_len);
        let key = &ground[..self.key_len.min(ground.len())];
        match self.split_set(key) {
            Some(targets) => {
                let pick = hash_one(&(self.secondary_seed, ground)) % targets.len() as u64;
                targets[pick as usize]
            }
            None => self.base_assign(key),
        }
    }

    fn assign_prefix(&self, prefix: &[Value]) -> Option<Vec<usize>> {
        if prefix.len() < self.key_len {
            return None;
        }
        let key = &prefix[..self.key_len];
        Some(match self.split_set(key) {
            Some(targets) => targets.to_vec(),
            None => vec![self.base_assign(key)],
        })
    }

    fn describe(&self) -> String {
        format!(
            "skew-aware hash mod {} (key {}, {} hot)",
            self.n,
            self.key_len,
            self.hot.len()
        )
    }

    fn wire_encode_into(&self, buf: &mut Vec<u8>) -> bool {
        buf.push(wire::DISC_SKEW_AWARE);
        wire::put_uv(buf, self.n as u64);
        wire::put_uv(buf, self.key_len as u64);
        wire::put_uv(buf, self.seed);
        wire::put_uv(buf, self.secondary_seed);
        wire::put_uv(buf, self.hot.len() as u64);
        for (key, targets) in &self.hot {
            for &value in key {
                wire::put_value(buf, value);
            }
            wire::put_uv(buf, targets.len() as u64);
            for &t in targets {
                wire::put_uv(buf, t as u64);
            }
        }
        true
    }
}

/// The constraint literal `h(v) = expect` that the rewriting schemes
/// insert into rule bodies.
pub struct DiscConstraint {
    /// The discriminating sequence `v`.
    pub vars: Vec<Variable>,
    /// The function `h`.
    pub disc: DiscriminatorRef,
    /// The processor the instance must hash to.
    pub expect: usize,
}

impl DiscConstraint {
    /// Build the constraint `disc(vars) = expect` as a shareable literal.
    pub fn literal(
        vars: Vec<Variable>,
        disc: DiscriminatorRef,
        expect: usize,
    ) -> gst_frontend::ast::ConstraintRef {
        Arc::new(DiscConstraint { vars, disc, expect })
    }
}

impl Constraint for DiscConstraint {
    fn variables(&self) -> &[Variable] {
        &self.vars
    }

    fn holds(&self, bound: &[Value]) -> bool {
        self.disc.assign(bound) == self.expect
    }

    fn describe(&self, interner: &Interner) -> String {
        let names: Vec<String> = self.vars.iter().map(|v| v.name(interner)).collect();
        format!(
            "h({}) = {} [{}]",
            names.join(", "),
            self.expect,
            self.disc.describe()
        )
    }

    fn wire_encode(&self) -> Option<Vec<u8>> {
        let mut buf = Vec::with_capacity(16 + self.vars.len() * 2);
        buf.push(wire::CONSTRAINT_MAGIC);
        wire::put_uv(&mut buf, self.vars.len() as u64);
        for v in &self.vars {
            wire::put_uv(&mut buf, v.0 .0 as u64);
        }
        wire::put_uv(&mut buf, self.expect as u64);
        if self.disc.wire_encode_into(&mut buf) {
            Some(buf)
        } else {
            None
        }
    }

    fn may_hold_prefix(&self, bound: &[Value]) -> bool {
        if bound.len() == self.vars.len() {
            return self.holds(bound);
        }
        match self.disc.assign_prefix(bound) {
            Some(targets) => targets.contains(&self.expect),
            None => true,
        }
    }
}

/// Byte format of serialized constraints (`h(v) = i` literals).
///
/// Shared between [`Discriminator::wire_encode_into`] producers and the
/// [`decode_constraint`] consumer; symbol ids are raw interner indexes, so
/// the decoding side must have rebuilt the sender's symbol table first
/// (the multi-process transport ships it once per job).
///
/// ```text
/// constraint := 0xD5 | nvars:uv | symid:uv × nvars | expect:uv | disc
/// disc       := tag:u8 | body
///   0 HashMod          n:uv seed:uv
///   1 SymmetricHashMod n:uv seed:uv
///   2 BitVector        gseed:uv len:uv
///   3 Linear           gseed:uv ncoef:uv coef:sv × ncoef
///   4 FragmentOwner    nfrags:uv arity:uv × (count:uv (value × arity) × count)
///   5 Constant         n:uv target:uv
///   6 Mixed            local:uv alpha:uv(f64 bits) seed:uv base:disc
///   7 SkewAwareHashMod n:uv keylen:uv seed:uv seed2:uv nhot:uv
///                      × (value × keylen ntargets:uv target:uv × ntargets)
/// value      := 0 int:sv | 1 sym:uv
/// uv = unsigned LEB128 varint, sv = zigzag LEB128 varint
/// ```
mod wire {
    use gst_common::{SymbolId, Value};

    pub(super) const CONSTRAINT_MAGIC: u8 = 0xD5;
    pub(super) const DISC_HASH_MOD: u8 = 0;
    pub(super) const DISC_SYMMETRIC: u8 = 1;
    pub(super) const DISC_BIT_VECTOR: u8 = 2;
    pub(super) const DISC_LINEAR: u8 = 3;
    pub(super) const DISC_FRAGMENT_OWNER: u8 = 4;
    pub(super) const DISC_CONSTANT: u8 = 5;
    pub(super) const DISC_MIXED: u8 = 6;
    pub(super) const DISC_SKEW_AWARE: u8 = 7;
    const VALUE_INT: u8 = 0;
    const VALUE_SYM: u8 = 1;

    pub(super) fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    pub(super) fn put_sv(buf: &mut Vec<u8>, n: i64) {
        put_uv(buf, ((n << 1) ^ (n >> 63)) as u64);
    }

    pub(super) fn put_value(buf: &mut Vec<u8>, value: Value) {
        match value {
            Value::Int(n) => {
                buf.push(VALUE_INT);
                put_sv(buf, n);
            }
            Value::Sym(s) => {
                buf.push(VALUE_SYM);
                put_uv(buf, s.0 as u64);
            }
        }
    }

    /// A bounds-checked reader mirroring the runtime codec's discipline:
    /// truncation and overlong varints yield `None`, never a panic.
    pub(super) struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        pub(super) fn new(bytes: &'a [u8]) -> Self {
            Reader { bytes, pos: 0 }
        }

        pub(super) fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        pub(super) fn get_u8(&mut self) -> Option<u8> {
            let b = *self.bytes.get(self.pos)?;
            self.pos += 1;
            Some(b)
        }

        pub(super) fn get_uv(&mut self) -> Option<u64> {
            let mut value = 0u64;
            for shift in 0..10 {
                let byte = self.get_u8()?;
                let bits = (byte & 0x7f) as u64;
                if shift == 9 && bits > 1 {
                    return None;
                }
                value |= bits << (shift * 7);
                if byte & 0x80 == 0 {
                    return Some(value);
                }
            }
            None
        }

        pub(super) fn get_sv(&mut self) -> Option<i64> {
            let v = self.get_uv()?;
            Some(((v >> 1) as i64) ^ -((v & 1) as i64))
        }

        pub(super) fn get_value(&mut self) -> Option<Value> {
            match self.get_u8()? {
                VALUE_INT => Some(Value::Int(self.get_sv()?)),
                VALUE_SYM => {
                    let v = self.get_uv()?;
                    u32::try_from(v).ok().map(|s| Value::Sym(SymbolId(s)))
                }
                _ => None,
            }
        }
    }
}

/// Sanity bound shared with the runtime codec: no real scheme uses 65k
/// processors, variables, or coefficients.
const IMPLAUSIBLE: usize = 1 << 16;

fn corrupt(what: &str) -> Error {
    Error::Discriminator(format!("corrupt constraint encoding: {what}"))
}

fn decode_disc(r: &mut wire::Reader<'_>, depth: usize) -> Result<DiscriminatorRef> {
    if depth > 8 {
        return Err(corrupt("discriminator nesting too deep"));
    }
    let bounded = |name: &str, v: u64| -> Result<usize> {
        let v = v as usize;
        if v == 0 || v > IMPLAUSIBLE {
            return Err(corrupt(&format!("implausible {name} {v}")));
        }
        Ok(v)
    };
    match r.get_u8() {
        None => Err(corrupt("truncated discriminator tag")),
        Some(wire::DISC_HASH_MOD) => {
            let n = bounded("processor count", r.get_uv().ok_or_else(|| corrupt("truncated HashMod"))?)?;
            let seed = r.get_uv().ok_or_else(|| corrupt("truncated HashMod"))?;
            Ok(Arc::new(HashMod::new(n, seed)))
        }
        Some(wire::DISC_SYMMETRIC) => {
            let n = bounded("processor count", r.get_uv().ok_or_else(|| corrupt("truncated SymmetricHashMod"))?)?;
            let seed = r.get_uv().ok_or_else(|| corrupt("truncated SymmetricHashMod"))?;
            Ok(Arc::new(SymmetricHashMod::new(n, seed)))
        }
        Some(wire::DISC_BIT_VECTOR) => {
            let seed = r.get_uv().ok_or_else(|| corrupt("truncated BitVector"))?;
            let len = r.get_uv().ok_or_else(|| corrupt("truncated BitVector"))? as usize;
            if !(1..=16).contains(&len) {
                return Err(corrupt("BitVector length out of range"));
            }
            Ok(Arc::new(BitVector::new(BitFn::new(seed), len)))
        }
        Some(wire::DISC_LINEAR) => {
            let seed = r.get_uv().ok_or_else(|| corrupt("truncated Linear"))?;
            let ncoef = r.get_uv().ok_or_else(|| corrupt("truncated Linear"))? as usize;
            if !(1..=20).contains(&ncoef) {
                return Err(corrupt("Linear coefficient count out of range"));
            }
            let mut coefficients = Vec::with_capacity(ncoef);
            for _ in 0..ncoef {
                coefficients.push(r.get_sv().ok_or_else(|| corrupt("truncated Linear coefficient"))?);
            }
            Ok(Arc::new(Linear::new(BitFn::new(seed), coefficients)))
        }
        Some(wire::DISC_FRAGMENT_OWNER) => {
            let nfrags = bounded("fragment count", r.get_uv().ok_or_else(|| corrupt("truncated FragmentOwner"))?)?;
            let arity = r.get_uv().ok_or_else(|| corrupt("truncated FragmentOwner"))? as usize;
            if arity > IMPLAUSIBLE {
                return Err(corrupt("implausible fragment arity"));
            }
            let mut fragments = Vec::with_capacity(nfrags);
            for _ in 0..nfrags {
                let count = r.get_uv().ok_or_else(|| corrupt("truncated fragment"))? as usize;
                // Every value costs at least one tag byte, so a lying
                // count is rejected before any allocation is sized by it.
                if count
                    .checked_mul(arity.max(1))
                    .is_none_or(|b| b > r.remaining() + 1)
                {
                    return Err(corrupt("fragment count implausible for payload size"));
                }
                let mut fragment = gst_storage::Relation::with_capacity(arity, count);
                let mut row = Vec::with_capacity(arity);
                for _ in 0..count {
                    row.clear();
                    for _ in 0..arity {
                        row.push(r.get_value().ok_or_else(|| corrupt("truncated fragment tuple"))?);
                    }
                    fragment
                        .insert(gst_common::Tuple::new(&row))
                        .map_err(|e| corrupt(&format!("fragment tuple rejected: {e}")))?;
                }
                fragments.push(fragment);
            }
            let fragmentation = Fragmentation::from_fragments(fragments)
                .map_err(|e| corrupt(&format!("fragmentation rejected: {e}")))?;
            Ok(Arc::new(FragmentOwner::new(Arc::new(fragmentation))))
        }
        Some(wire::DISC_CONSTANT) => {
            let n = bounded("processor count", r.get_uv().ok_or_else(|| corrupt("truncated Constant"))?)?;
            let target = r.get_uv().ok_or_else(|| corrupt("truncated Constant"))? as usize;
            if target >= n {
                return Err(corrupt("Constant target out of range"));
            }
            Ok(Arc::new(Constant::new(n, target)))
        }
        Some(wire::DISC_MIXED) => {
            let local = r.get_uv().ok_or_else(|| corrupt("truncated Mixed"))? as usize;
            let alpha = f64::from_bits(r.get_uv().ok_or_else(|| corrupt("truncated Mixed"))?);
            let seed = r.get_uv().ok_or_else(|| corrupt("truncated Mixed"))?;
            if !(0.0..=1.0).contains(&alpha) {
                return Err(corrupt("Mixed alpha out of range"));
            }
            let base = decode_disc(r, depth + 1)?;
            if local >= base.processors() {
                return Err(corrupt("Mixed local processor out of range"));
            }
            Ok(Arc::new(Mixed::new(local, base, alpha, seed)))
        }
        Some(wire::DISC_SKEW_AWARE) => {
            let n = bounded("processor count", r.get_uv().ok_or_else(|| corrupt("truncated SkewAware"))?)?;
            let key_len = bounded("key length", r.get_uv().ok_or_else(|| corrupt("truncated SkewAware"))?)?;
            let seed = r.get_uv().ok_or_else(|| corrupt("truncated SkewAware"))?;
            let secondary_seed = r.get_uv().ok_or_else(|| corrupt("truncated SkewAware"))?;
            let nhot = r.get_uv().ok_or_else(|| corrupt("truncated SkewAware"))? as usize;
            // Every hot entry costs at least keylen value tags plus one
            // count byte, so a lying count is rejected before any
            // allocation is sized by it.
            if nhot
                .checked_mul(key_len + 1)
                .is_none_or(|b| b > r.remaining() + 1)
            {
                return Err(corrupt("hot key count implausible for payload size"));
            }
            let mut hot = Vec::with_capacity(nhot);
            for _ in 0..nhot {
                let mut key = Vec::with_capacity(key_len);
                for _ in 0..key_len {
                    key.push(r.get_value().ok_or_else(|| corrupt("truncated hot key"))?);
                }
                let ntargets = r.get_uv().ok_or_else(|| corrupt("truncated hot key targets"))? as usize;
                if ntargets == 0 || ntargets > n || ntargets > r.remaining() + 1 {
                    return Err(corrupt("hot key target count out of range"));
                }
                let mut targets = Vec::with_capacity(ntargets);
                for _ in 0..ntargets {
                    let t = r.get_uv().ok_or_else(|| corrupt("truncated hot key target"))? as usize;
                    if t >= n {
                        return Err(corrupt("hot key target out of range"));
                    }
                    targets.push(t);
                }
                hot.push((key, targets));
            }
            Ok(Arc::new(
                SkewAwareHashMod::new(n, key_len, seed, secondary_seed).with_hot_keys(hot),
            ))
        }
        Some(tag) => Err(corrupt(&format!("unknown discriminator tag {tag}"))),
    }
}

/// Decode a constraint serialized by [`Constraint::wire_encode`] back into
/// an evaluable literal.
///
/// This is the callback a multi-process transport injects into its worker
/// loop (`gst-runtime` cannot depend on this crate, so the binary wires
/// the two together). Malformed input never panics: every failure is a
/// typed [`Error::Discriminator`].
///
/// # Errors
/// Rejects truncated input, unknown tags, out-of-range parameters, and
/// trailing bytes.
pub fn decode_constraint(bytes: &[u8]) -> Result<gst_frontend::ast::ConstraintRef> {
    let mut r = wire::Reader::new(bytes);
    match r.get_u8() {
        Some(wire::CONSTRAINT_MAGIC) => {}
        Some(b) => return Err(corrupt(&format!("bad magic byte {b:#x}"))),
        None => return Err(corrupt("empty input")),
    }
    let nvars = r.get_uv().ok_or_else(|| corrupt("truncated variable count"))? as usize;
    if nvars > IMPLAUSIBLE || nvars > r.remaining() {
        return Err(corrupt("implausible variable count"));
    }
    let mut vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let raw = r.get_uv().ok_or_else(|| corrupt("truncated variable id"))?;
        let raw = u32::try_from(raw).map_err(|_| corrupt("variable id overflows u32"))?;
        vars.push(Variable(gst_common::SymbolId(raw)));
    }
    let expect = r.get_uv().ok_or_else(|| corrupt("truncated expected processor"))? as usize;
    let disc = decode_disc(&mut r, 0)?;
    if r.remaining() > 0 {
        return Err(corrupt("trailing bytes"));
    }
    if expect >= disc.processors() {
        return Err(corrupt("expected processor out of range"));
    }
    Ok(DiscConstraint::literal(vars, disc, expect))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::ituple;
    use gst_storage::{hash_fragment, Relation};

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn hash_mod_is_deterministic_and_in_range() {
        let h = HashMod::new(4, 1);
        for k in 0..100i64 {
            let a = h.assign(&vals(&[k, k + 1]));
            assert!(a < 4);
            assert_eq!(a, h.assign(&vals(&[k, k + 1])));
        }
    }

    #[test]
    fn hash_mod_spreads() {
        let h = HashMod::new(4, 1);
        let mut hit = [false; 4];
        for k in 0..64i64 {
            hit[h.assign(&vals(&[k]))] = true;
        }
        assert!(hit.iter().all(|&b| b), "all processors used");
    }

    #[test]
    fn symmetric_is_order_invariant() {
        let h = SymmetricHashMod::new(8, 3);
        for k in 0..50i64 {
            assert_eq!(h.assign(&vals(&[k, k + 7])), h.assign(&vals(&[k + 7, k])));
        }
    }

    #[test]
    fn plain_hash_is_order_sensitive_somewhere() {
        let h = HashMod::new(8, 3);
        let sensitive = (0..100i64)
            .any(|k| h.assign(&vals(&[k, k + 1])) != h.assign(&vals(&[k + 1, k])));
        assert!(sensitive);
    }

    #[test]
    fn bit_vector_composes_g() {
        let g = BitFn::new(5);
        let h = BitVector::new(g, 2);
        assert_eq!(h.processors(), 4);
        for a in 0..10i64 {
            for b in 0..10i64 {
                let expect =
                    ((g.bit(Value::Int(a)) as usize) << 1) | g.bit(Value::Int(b)) as usize;
                assert_eq!(h.assign(&vals(&[a, b])), expect);
            }
        }
        assert_eq!(h.processor_name(0b10), "(10)");
        assert_eq!(h.processor_name(0), "(00)");
    }

    #[test]
    fn linear_matches_example7() {
        // h = g(a1) - g(a2) + g(a3): P = {-1, 0, 1, 2} (sorted).
        let h = Linear::new(BitFn::new(9), vec![1, -1, 1]);
        assert_eq!(h.processor_values(), &[-1, 0, 1, 2]);
        assert_eq!(h.processors(), 4);
        // Every assignment lands on an achievable value.
        for a in 0..20i64 {
            let p = h.assign(&vals(&[a, a + 1, a + 2]));
            assert!(p < 4);
        }
        assert_eq!(h.processor_of_value(2), Some(3));
        assert_eq!(h.processor_of_value(5), None);
    }

    #[test]
    fn achievable_sums_enumerates() {
        assert_eq!(achievable_sums(&[1, 1]), vec![0, 1, 2]);
        assert_eq!(achievable_sums(&[1, -1]), vec![-1, 0, 1]);
        assert_eq!(achievable_sums(&[2]), vec![0, 2]);
    }

    #[test]
    fn fragment_owner_matches_fragments() {
        let rel: Relation = (0..40i64).map(|k| ituple![k, k + 1]).collect();
        let frag = Arc::new(hash_fragment(&rel, &[0], 4).unwrap());
        let h = FragmentOwner::new(frag.clone());
        assert!(!h.locally_evaluable());
        for t in rel.iter() {
            let owner = h.assign(t.as_slice());
            assert!(frag.fragment(owner).contains(t));
        }
        // Unknown tuples park on 0.
        assert_eq!(h.assign(&vals(&[999, 999])), 0);
    }

    #[test]
    fn constant_routes_to_target() {
        let h = Constant::new(5, 3);
        assert_eq!(h.assign(&vals(&[1])), 3);
        assert_eq!(h.assign(&vals(&[99, 4])), 3);
        assert_eq!(h.processors(), 5);
    }

    #[test]
    fn mixed_extremes_degenerate() {
        let base: DiscriminatorRef = Arc::new(HashMod::new(4, 2));
        let all_local = Mixed::new(1, base.clone(), 1.0, 7);
        let never_local = Mixed::new(1, base.clone(), 0.0, 7);
        for k in 0..50i64 {
            let v = vals(&[k, k * 3]);
            assert_eq!(all_local.assign(&v), 1);
            assert_eq!(never_local.assign(&v), base.assign(&v));
        }
    }

    #[test]
    fn mixed_midpoint_is_a_true_mix() {
        let base: DiscriminatorRef = Arc::new(HashMod::new(4, 2));
        let mixed = Mixed::new(1, base.clone(), 0.5, 7);
        let mut kept = 0;
        let mut routed = 0;
        for k in 0..400i64 {
            let v = vals(&[k]);
            let a = mixed.assign(&v);
            if a == base.assign(&v) && a != 1 {
                routed += 1;
            } else if a == 1 {
                kept += 1;
            }
        }
        assert!(kept > 100, "keeps a fair share: {kept}");
        assert!(routed > 100, "routes a fair share: {routed}");
    }

    #[test]
    fn constraint_literal_evaluates() {
        let interner = Interner::new();
        let x = Variable(interner.intern("X"));
        let h: DiscriminatorRef = Arc::new(HashMod::new(3, 0));
        let expect = h.assign(&vals(&[42]));
        let c = DiscConstraint::literal(vec![x], h, expect);
        assert!(c.holds(&vals(&[42])));
        let miss = (0..10i64)
            .map(Value::Int)
            .any(|v| !c.holds(&[v]));
        assert!(miss, "some value hashes elsewhere");
        assert!(c.describe(&interner).contains("h(X)"));
    }

    #[test]
    fn bitfn_seeds_differ() {
        let g1 = BitFn::new(1);
        let g2 = BitFn::new(2);
        let differs = (0..64i64).any(|k| g1.bit(Value::Int(k)) != g2.bit(Value::Int(k)));
        assert!(differs);
    }

    #[test]
    fn skew_aware_cold_keys_match_prefix_hash() {
        let h = SkewAwareHashMod::new(4, 1, 0x5A, 0x5B);
        let plain = HashMod::new(4, 0x5A);
        for k in 0..100i64 {
            // Cold key routing depends only on the key prefix, matching a
            // plain hash of the one-value key.
            let a = h.assign(&vals(&[k, 7]));
            assert_eq!(a, h.assign(&vals(&[k, 99])));
            assert_eq!(a, plain.assign(&vals(&[k])));
        }
    }

    #[test]
    fn skew_aware_splits_hot_key_across_targets() {
        let h = SkewAwareHashMod::new(8, 1, 1, 2)
            .with_hot_keys([(vals(&[0]), vec![1, 3, 5])]);
        let mut hit = [0usize; 8];
        for y in 0..300i64 {
            let a = h.assign(&vals(&[0, y]));
            assert!([1, 3, 5].contains(&a), "hot key stays in its split set");
            assert_eq!(a, h.assign(&vals(&[0, y])), "deterministic");
            hit[a] += 1;
        }
        assert!(hit[1] > 50 && hit[3] > 50 && hit[5] > 50, "spread: {hit:?}");
        // Cold keys are untouched by the hot table.
        let cold = SkewAwareHashMod::new(8, 1, 1, 2);
        for k in 1..50i64 {
            assert_eq!(h.assign(&vals(&[k, 0])), cold.assign(&vals(&[k, 0])));
        }
    }

    #[test]
    fn skew_aware_prefix_is_consistent_with_assign() {
        let h = SkewAwareHashMod::new(6, 1, 3, 4)
            .with_hot_keys([(vals(&[2]), vec![0, 4]), (vals(&[5]), vec![1, 2, 3])]);
        assert_eq!(h.assign_prefix(&[]), None, "short prefix narrows nothing");
        for k in 0..20i64 {
            let targets = h.assign_prefix(&vals(&[k])).unwrap();
            for y in 0..40i64 {
                let a = h.assign(&vals(&[k, y]));
                assert!(targets.contains(&a), "assign ∈ assign_prefix set");
            }
        }
        assert_eq!(h.assign_prefix(&vals(&[2])).unwrap(), vec![0, 4]);
        assert_eq!(h.assign_prefix(&vals(&[5])).unwrap().len(), 3);
        assert_eq!(h.assign_prefix(&vals(&[7])).unwrap().len(), 1);
    }

    #[test]
    fn skew_aware_constraint_prefix_replicates_hot_keys() {
        let interner = Interner::new();
        let z = Variable(interner.intern("Z"));
        let y = Variable(interner.intern("Y"));
        let h: DiscriminatorRef = Arc::new(
            SkewAwareHashMod::new(4, 1, 9, 10).with_hot_keys([(vals(&[1]), vec![0, 2])]),
        );
        for expect in 0..4 {
            let c = DiscConstraint::literal(vec![z, y], h.clone(), expect);
            // Hot key 1 may land on workers 0 and 2 only.
            assert_eq!(c.may_hold_prefix(&vals(&[1])), expect == 0 || expect == 2);
            // Cold keys land exactly where the base hash says.
            let base = h.assign_prefix(&vals(&[3])).unwrap()[0];
            assert_eq!(c.may_hold_prefix(&vals(&[3])), expect == base);
            // A full binding decides exactly.
            assert_eq!(c.may_hold_prefix(&vals(&[1, 8])), h.assign(&vals(&[1, 8])) == expect);
        }
    }

    #[test]
    fn default_constraint_prefix_is_conservative() {
        let interner = Interner::new();
        let z = Variable(interner.intern("Z"));
        let y = Variable(interner.intern("Y"));
        let h: DiscriminatorRef = Arc::new(HashMod::new(4, 1));
        let c = DiscConstraint::literal(vec![z, y], h, 3);
        // HashMod cannot narrow a prefix, so fragmentation must keep the
        // tuple.
        assert!(c.may_hold_prefix(&vals(&[5])));
    }

    #[test]
    fn skew_aware_wire_roundtrip() {
        let interner = Interner::new();
        let z = Variable(interner.intern("Z"));
        let y = Variable(interner.intern("Y"));
        let h: DiscriminatorRef = Arc::new(
            SkewAwareHashMod::new(4, 1, 0xAB, 0xCD)
                .with_hot_keys([(vals(&[0]), vec![0, 1, 2, 3]), (vals(&[-7]), vec![1, 3])]),
        );
        let c = DiscConstraint::literal(vec![z, y], h.clone(), 2);
        let bytes = c.wire_encode().expect("skew-aware travels");
        let decoded = decode_constraint(&bytes).expect("roundtrip");
        assert_eq!(decoded.variables(), c.variables());
        for k in -10..10i64 {
            for v in 0..10i64 {
                let ground = vals(&[k, v]);
                assert_eq!(decoded.holds(&ground), c.holds(&ground));
                assert_eq!(
                    decoded.may_hold_prefix(&vals(&[k])),
                    c.may_hold_prefix(&vals(&[k]))
                );
            }
        }
    }

    #[test]
    fn skew_aware_decode_rejects_corruption() {
        let interner = Interner::new();
        let z = Variable(interner.intern("Z"));
        let h: DiscriminatorRef =
            Arc::new(SkewAwareHashMod::new(4, 1, 1, 2).with_hot_keys([(vals(&[0]), vec![1, 2])]));
        let bytes = DiscConstraint::literal(vec![z], h, 1)
            .wire_encode()
            .unwrap();
        // Truncations never panic.
        for cut in 0..bytes.len() {
            assert!(decode_constraint(&bytes[..cut]).is_err());
        }
        // A lying hot-key count is rejected by the plausibility bound.
        let mut lying = bytes.clone();
        // Find the nhot byte: magic, nvars=1, symid, expect=1, tag=7,
        // n=4, keylen=1, seed=1, seed2=2, nhot — position 9.
        lying[9] = 0x7f;
        assert!(decode_constraint(&lying).is_err());
    }
}
