//! Compile-time choice of discriminating sequences.
//!
//! Section 5 closes with: the network derivation "can be performed at
//! compile time and can be used to adapt the parallel execution onto an
//! existing parallel architecture". This module is that compiler pass for
//! linear sirups: enumerate the position-based candidate sequences,
//! derive each candidate's properties — zero-communication (Theorem 3),
//! network density under a bit-vector function, whether sends can be
//! routed point-to-point, whether the base relations can be fragmented —
//! and rank them against a target architecture's preferences.
//!
//! Candidates are *position subsets* of the recursive body `t`-atom `Ȳ`
//! whose positions are variables in both `Ȳ` and the exit head `Z̄`
//! (the pairing Examples 1/3 and Theorem 3 use: `v(r) = Ȳ|C`,
//! `v(e) = Z̄|C`). This covers all of §4's algorithms except Example 2,
//! whose fragment-ownership function is not position-based.

use gst_common::Result;
use gst_frontend::{LinearSirup, Term, Variable};

use crate::dataflow::DataflowGraph;
use crate::discriminator::{BitFn, BitVector};
use crate::network::derive_network;

/// One evaluated candidate discriminating choice.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The chosen positions of `Ȳ`/`Z̄` (0-based).
    pub positions: Vec<usize>,
    /// `v(r)`: the `Ȳ` variables at those positions.
    pub v_r: Vec<Variable>,
    /// `v(e)`: the exit-head variables at those positions.
    pub v_e: Vec<Variable>,
    /// Data-independently communication-free (empty derived network).
    pub communication_free: bool,
    /// Derived channels / possible channels under a 1-bit-per-position
    /// bit-vector function (lower = sparser network).
    pub network_density: (usize, usize),
    /// Sending rules can evaluate `h` per tuple (no broadcast needed);
    /// true by construction for position-based candidates.
    pub point_to_point: bool,
    /// Some base atom of the recursive rule binds every `v(r)` variable:
    /// [`crate::schemes::BaseDistribution::MinimalFragments`] will
    /// fragment it instead of replicating (Example 3's storage win).
    pub base_fragmentable: bool,
}

/// What the target architecture cares about, in priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArchitecturePreference {
    /// Shared/replicated base data is cheap; avoid communication above
    /// all (Example 1's habitat).
    MinimizeCommunication,
    /// Memory per node is scarce; prefer fragmentable bases, then less
    /// communication (Example 3's habitat).
    MinimizeReplication,
}

/// Enumerate and evaluate all position-based candidates (subsets of size
/// 1 and 2; larger sequences only densify the network). Returns an empty
/// list when no position of `Ȳ` is a variable that also has a variable
/// exit-head position.
pub fn candidates(sirup: &LinearSirup) -> Result<Vec<Candidate>> {
    let m = sirup.head.len();
    let usable: Vec<usize> = (0..m)
        .filter(|&p| {
            matches!(sirup.recursive_args.get(p), Some(Term::Var(_)))
                && matches!(sirup.exit_head.get(p), Some(Term::Var(_)))
        })
        .collect();

    let mut subsets: Vec<Vec<usize>> = usable.iter().map(|&p| vec![p]).collect();
    for (a, &p) in usable.iter().enumerate() {
        for &q in &usable[a + 1..] {
            subsets.push(vec![p, q]);
        }
    }

    let graph = DataflowGraph::of(sirup);
    let base_vars: Vec<Variable> = sirup
        .base_atoms
        .iter()
        .flat_map(|a| a.variables().collect::<Vec<_>>())
        .collect();

    let mut out = Vec::with_capacity(subsets.len());
    for positions in subsets {
        let v_r: Vec<Variable> = positions
            .iter()
            .map(|&p| match sirup.recursive_args[p] {
                Term::Var(v) => v,
                Term::Const(_) => unreachable!("filtered above"),
            })
            .collect();
        let v_e: Vec<Variable> = positions
            .iter()
            .map(|&p| match sirup.exit_head[p] {
                Term::Var(v) => v,
                Term::Const(_) => unreachable!("filtered above"),
            })
            .collect();
        let h = BitVector::new(BitFn::new(1), positions.len());
        let network = derive_network(sirup, &v_r, &v_e, &h)?;
        // Fragmentable: one base atom binds every v(r) variable.
        let base_fragmentable = sirup.base_atoms.iter().any(|atom| {
            v_r.iter().all(|v| {
                atom.terms
                    .iter()
                    .any(|t| matches!(t, Term::Var(tv) if tv == v))
            })
        });
        out.push(Candidate {
            communication_free: network.edges.is_empty(),
            network_density: network.density(),
            point_to_point: true,
            base_fragmentable,
            positions,
            v_r,
            v_e,
        });
    }
    let _ = (graph, base_vars); // graph informs docs; density is decisive
    Ok(out)
}

/// Rank candidates for `preference`; the first element is the advisor's
/// pick. Ties break toward smaller sequences (cheaper hashing).
pub fn advise(sirup: &LinearSirup, preference: ArchitecturePreference) -> Result<Vec<Candidate>> {
    let mut list = candidates(sirup)?;
    let density = |c: &Candidate| -> (usize, usize) { c.network_density };
    match preference {
        ArchitecturePreference::MinimizeCommunication => list.sort_by_key(|c| {
            (
                !c.communication_free as usize,
                density(c).0,
                c.positions.len(),
            )
        }),
        ArchitecturePreference::MinimizeReplication => list.sort_by_key(|c| {
            (
                !c.base_fragmentable as usize,
                !c.communication_free as usize,
                density(c).0,
                c.positions.len(),
            )
        }),
    }
    Ok(list)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_frontend::parse_program;

    fn sirup(src: &str) -> LinearSirup {
        LinearSirup::from_program(&parse_program(src).unwrap().program).unwrap()
    }

    fn names(vars: &[Variable], s: &LinearSirup) -> Vec<String> {
        vars.iter().map(|v| v.name(&s.program.interner)).collect()
    }

    #[test]
    fn ancestor_candidates_cover_examples_1_and_3() {
        let s = sirup("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).");
        let list = candidates(&s).unwrap();
        // Positions {0}, {1}, {0,1} of Ȳ = (Z, Y).
        assert_eq!(list.len(), 3);
        let ex3 = list.iter().find(|c| c.positions == vec![0]).unwrap();
        assert_eq!(names(&ex3.v_r, &s), vec!["Z"]);
        assert_eq!(names(&ex3.v_e, &s), vec!["X"]);
        assert!(!ex3.communication_free);
        assert!(ex3.base_fragmentable, "Z occurs in par(X,Z)");

        let ex1 = list.iter().find(|c| c.positions == vec![1]).unwrap();
        assert_eq!(names(&ex1.v_r, &s), vec!["Y"]);
        assert!(ex1.communication_free, "Theorem 3 through the §5 lens");
        assert!(!ex1.base_fragmentable, "Y occurs in no base atom");
    }

    #[test]
    fn advisor_picks_example1_for_comm_and_example3_for_memory() {
        let s = sirup("anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).");
        let comm = advise(&s, ArchitecturePreference::MinimizeCommunication).unwrap();
        assert_eq!(names(&comm[0].v_r, &s), vec!["Y"], "Example 1's choice");

        let memory = advise(&s, ArchitecturePreference::MinimizeReplication).unwrap();
        assert_eq!(names(&memory[0].v_r, &s), vec!["Z"], "Example 3's choice");
        assert!(memory[0].base_fragmentable);
    }

    #[test]
    fn chain_sirup_has_no_zero_comm_candidate() {
        let s = sirup("p(U,V,W) :- s(U,V,W).\np(U,V,W) :- p(V,W,Z), q(U,Z).");
        let list = candidates(&s).unwrap();
        assert!(!list.is_empty());
        assert!(
            list.iter().all(|c| !c.communication_free),
            "acyclic dataflow graph: Theorem 3 cannot apply"
        );
        // Some candidate still prunes channels: the 2-position choice
        // (V, W) is Example-6-shaped with a 6-of-12 network.
        assert!(
            list.iter()
                .any(|c| c.network_density.0 < c.network_density.1),
            "{list:?}"
        );
    }

    #[test]
    fn constant_positions_are_excluded() {
        let s = sirup("t(X,Y) :- s(X,Y).\nt(X,Y) :- t(0,Z), e(Z,X,Y).");
        // Position 0 of Ȳ is the constant 0: only position 1 is usable.
        let list = candidates(&s).unwrap();
        assert!(list.iter().all(|c| !c.positions.contains(&0)));
    }

    #[test]
    fn same_generation_candidates_exist_but_need_sharing() {
        let s = sirup(
            "sg(X,Y) :- flat(X,Y).\nsg(X,Y) :- up(X,U), sg(U,V), down(V,Y).",
        );
        let list = candidates(&s).unwrap();
        // Ȳ = (U, V): both vars exist and map to exit-head X, Y.
        assert_eq!(list.len(), 3);
        assert!(list.iter().all(|c| !c.communication_free));
        // U is bound by up(X,U), V by down(V,Y): singletons fragment.
        assert!(list.iter().filter(|c| c.positions.len() == 1).all(|c| c.base_fragmentable));
    }
}
