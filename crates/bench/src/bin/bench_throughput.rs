//! Wall-clock throughput harness for the parallel runtime.
//!
//! The paper's own experiments stop at firing and tuple counts; this
//! binary measures what the ROADMAP's "as fast as the hardware allows"
//! goal is actually stated over — wall-clock fixpoint time, tuples per
//! second, per-round latency, and wire bytes shipped — across the
//! transitive-closure workload matrix:
//!
//! * graphs: chain, grid, random digraph, layered DAG, star, zipf
//!   (power-law out-degree — the skew stressor);
//! * processors: N ∈ {1, 2, 4, 8};
//! * schemes: §4 Example 1 (zero-communication), §3 Q_i (Example 3 hash
//!   partition), §4 Example 2 (broadcast); on the skewed workloads also
//!   `skew-hash` (hot keys split, §6 R_i) and, on zipf, `skew-morsels`
//!   (skew-aware + 4 morsel threads per worker).
//!
//! The chain/random/zipf workloads additionally run two demand-driven
//! point-query cells (DESIGN.md §15): `rl-full` computes the whole
//! closure of the right-linear TC under the Q_i hash partition, and
//! `magic-point` answers one bound-first goal over the same EDB via the
//! magic rewrite on the demand-aware partition. The `magic-point` row
//! carries a `demand_ratio` field — its firings divided by the
//! `rl-full` cell's — so the fraction of full-closure work a point
//! query pays is visible per cell.
//!
//! Every row records a `worker_firings` array (per-processor processing
//! firings in processor order) so per-cell load skew is visible in the
//! JSON, not just the aggregate.
//!
//! ```text
//! cargo run --release -p gst-bench --bin bench_throughput                  # full matrix
//! cargo run --release -p gst-bench --bin bench_throughput -- --smoke      # CI-sized subset
//! cargo run --release -p gst-bench --bin bench_throughput -- --out X.json # report path
//! cargo run --release -p gst-bench --bin bench_throughput -- \
//!     --guard BENCH_wire_guard.json                                        # wire regression guard
//! ```
//!
//! `--guard` is the CI wire-format regression check: it re-measures two
//! fixed full-size cells (grid/qi-hash/N=4 and chain/ex2-broadcast/N=4),
//! asserts oracle correctness and bit-identical firing counts against the
//! committed row-format reference, and fails unless `bytes_shipped` is at
//! least 2× smaller than that reference. Each cell is measured twice: on
//! the threaded transport and over the TCP multi-process transport
//! (loopback sockets via `NetCoordinator`), so the framed wire protocol
//! is held to the same byte envelope. The reference file
//! (`BENCH_wire_guard.json`) is a frozen snapshot of the pre-columnar
//! baseline and is intentionally *not* regenerated with
//! `BENCH_throughput_baseline.json` — regenerating it would make the guard
//! compare the codec against itself.
//!
//! `--batch-baseline FILE` (only with `--guard`) additionally pins the
//! guarded cells against the *current* columnar baseline: batch-mode
//! firing counts must be bit-identical and `bytes_shipped` must not
//! regress. This is the update-session isolation check — incremental
//! maintenance promotes base predicates to `local_idb` only inside a
//! session, so ordinary batch compilation must produce exactly the
//! plans, firings, and wire bytes it produced before the session layer
//! existed.
//!
//! Every row is checked against the sequential semi-naive oracle (same
//! least model) before its timing is trusted, and the report records the
//! firing counts so a storage-engine change that silently alters
//! semantics fails loudly. Results land in `BENCH_throughput.json`.

use std::time::Instant;

use gst_bench::json::{count, num, s, Json};
use gst_bench::table::Table;
use gst_common::Value;
use gst_core::prelude::{
    compile_demand, example1_wolfson, example2_valduriez, example3_hash_partition,
    skew_aware_hash_partition, SkewPolicy,
};
use gst_core::schemes::CompiledScheme;
use gst_eval::seminaive_eval;
use gst_frontend::magic::magic_rewrite;
use gst_frontend::{Atom, LinearSirup, Term, Variable};
use gst_runtime::{RuntimeConfig, Transport};
use gst_storage::{round_robin_fragment, Relation};
use gst_workloads::{
    chain, grid, layered, linear_ancestor, random_digraph, right_linear_ancestor, star,
    zipf_digraph,
};

/// One measured configuration.
struct Row {
    workload: &'static str,
    scheme: &'static str,
    n: usize,
    /// Best-of-reps wall time of the parallel section, milliseconds.
    wall_ms: f64,
    /// Distinct tuples in the pooled answer.
    tuples: u64,
    /// `tuples / wall` — fixpoint throughput.
    tuples_per_sec: f64,
    /// Engine rounds of the slowest worker.
    rounds: u64,
    /// `wall / rounds` — mean round latency, milliseconds.
    round_ms: f64,
    /// Wire bytes shipped between distinct processors.
    bytes_shipped: u64,
    /// Tuples shipped between distinct processors.
    comm_tuples: u64,
    /// Total rule firings across workers (semantics fingerprint).
    firings: u64,
    /// Processing firings per worker, in processor order — the per-cell
    /// load-skew record.
    worker_firings: Vec<u64>,
    /// Merged phase-attributed time across workers, microseconds, in
    /// `[compute, encode, decode, replay, idle]` order (all zeros when
    /// the run was not profiled, e.g. under `--guard`).
    phase_us: [u64; 5],
    /// Model equals the sequential oracle.
    correct: bool,
    /// Point-query cells only: this row's firings over the matching
    /// `rl-full` full-closure cell's firings. `None` everywhere else.
    demand_ratio: Option<f64>,
    /// Per-worker round time series + channel matrix of the kept rep,
    /// for the `<out>_rounds.json` companion report.
    rounds_series: Json,
}

/// The per-round metrics of one kept outcome: channel matrix plus, per
/// worker, one record per engine round (submitted/fresh from the eval
/// stats, sent = channel tuples shipped at that local round).
fn rounds_series(outcome: &gst_runtime::ExecutionOutcome) -> Json {
    let workers = outcome
        .stats
        .workers
        .iter()
        .map(|w| {
            let rounds = w
                .eval
                .per_round
                .iter()
                .map(|sample| {
                    let sent = w
                        .sent_per_round
                        .iter()
                        .filter(|(r, _)| *r == sample.round)
                        .map(|(_, t)| t)
                        .sum::<u64>();
                    Json::obj(vec![
                        ("round", count(sample.round)),
                        ("submitted", count(sample.submitted)),
                        ("fresh", count(sample.fresh)),
                        ("sent", count(sent)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("worker", count(w.processor as u64)),
                ("rounds", Json::Arr(rounds)),
            ])
        })
        .collect();
    let matrix = outcome
        .stats
        .channel_matrix
        .iter()
        .map(|row| Json::Arr(row.iter().map(|&v| count(v)).collect()))
        .collect();
    Json::obj(vec![
        ("channel_matrix", Json::Arr(matrix)),
        ("workers", Json::Arr(workers)),
    ])
}

fn measure(
    label: (&'static str, &'static str),
    n: usize,
    scheme: &CompiledScheme,
    oracle: &Relation,
    anc: (gst_common::SymbolId, usize),
    reps: usize,
    config: &RuntimeConfig,
) -> Row {
    let mut best_ms = f64::INFINITY;
    let mut kept = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let outcome = scheme.execute(config).expect("benchmark run failed");
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        if wall_ms < best_ms {
            best_ms = wall_ms;
            kept = Some(outcome);
        }
    }
    let outcome = kept.expect("at least one rep");
    let rounds = outcome
        .stats
        .workers
        .iter()
        .map(|w| w.eval.rounds)
        .max()
        .unwrap_or(0);
    let answer = outcome.relation(anc);
    let tuples = answer.len() as u64;
    let mut by_worker: Vec<(usize, u64)> = outcome
        .stats
        .workers
        .iter()
        .map(|w| (w.processor, w.processing_firings))
        .collect();
    by_worker.sort_by_key(|(p, _)| *p);
    let worker_firings = by_worker.into_iter().map(|(_, f)| f).collect();
    let mut phase_us = [0u64; 5];
    for w in &outcome.stats.workers {
        if let Some(p) = &w.profile {
            for (total, v) in phase_us.iter_mut().zip(p.phases.as_array()) {
                *total += v;
            }
        }
    }
    Row {
        workload: label.0,
        scheme: label.1,
        n,
        wall_ms: best_ms,
        tuples,
        tuples_per_sec: tuples as f64 / (best_ms / 1e3),
        rounds,
        round_ms: if rounds > 0 { best_ms / rounds as f64 } else { 0.0 },
        bytes_shipped: outcome.stats.total_bytes_sent(),
        comm_tuples: outcome.stats.total_tuples_sent(),
        firings: outcome.stats.total_firings(),
        worker_firings,
        phase_us,
        correct: answer.set_eq(oracle),
        demand_ratio: None,
        rounds_series: rounds_series(&outcome),
    }
}

/// The bound-first query constant a workload's point-query cells use,
/// if it runs any. Fixed non-hub nodes that exist at both smoke and
/// full sizes, so smoke and full reports stay comparable.
fn point_constant(workload: &str) -> Option<i64> {
    match workload {
        "chain" => Some(3),
        "random" => Some(77),
        "zipf" => Some(3),
        _ => None,
    }
}

/// Find the reference row for `(workload, scheme, n)` in a parsed
/// `bench_throughput` report.
fn baseline_row<'a>(base: &'a Json, workload: &str, scheme: &str, n: usize) -> Option<&'a Json> {
    base.get("rows")?.as_arr()?.iter().find(|r| {
        r.get("workload").and_then(Json::as_str) == Some(workload)
            && r.get("scheme").and_then(Json::as_str) == Some(scheme)
            && r.get("n").and_then(Json::as_num) == Some(n as f64)
    })
}

/// The `--guard` mode: measure the two fixed wire-guard cells and compare
/// them against the frozen row-format reference — plus, when
/// `batch_baseline` is given, against the current columnar baseline
/// (bit-identical firings, no byte regression). Returns the process exit
/// code (0 = guard holds).
fn run_guard(baseline_path: &str, batch_baseline: Option<&str>) -> i32 {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read guard baseline {baseline_path}: {e}"));
    let base = Json::parse(&text)
        .unwrap_or_else(|e| panic!("cannot parse guard baseline {baseline_path}: {e}"));
    let current = batch_baseline.map(|p| {
        let text = std::fs::read_to_string(p)
            .unwrap_or_else(|e| panic!("cannot read batch baseline {p}: {e}"));
        Json::parse(&text).unwrap_or_else(|e| panic!("cannot parse batch baseline {p}: {e}"))
    });

    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let anc = fx.output_id();
    let n = 4;

    // The guarded cells: one hash-partition scheme (per-destination
    // channels) and one broadcast scheme (shared multicast channel), both
    // at full workload size so the byte counts are load-bearing.
    let cells: Vec<(&'static str, Relation, &'static str)> = vec![
        ("grid", grid(20, 20), "qi-hash"),
        ("chain", chain(192), "ex2-broadcast"),
    ];

    let mut ok = true;
    for (wname, data, sname) in &cells {
        let db = fx.database(data);
        let oracle = seminaive_eval(&fx.program, &db).unwrap();
        let reference = oracle.relation(anc);
        let scheme = match *sname {
            "qi-hash" => example3_hash_partition(&sirup, n, &db).unwrap(),
            "ex2-broadcast" => {
                let frag = round_robin_fragment(data, n).unwrap();
                example2_valduriez(&sirup, frag, &db).unwrap()
            }
            other => panic!("unknown guard scheme {other}"),
        };
        let row = measure(
            (*wname, *sname),
            n,
            &scheme,
            &reference,
            anc,
            1,
            &RuntimeConfig::default(),
        );

        let Some(base_row) = baseline_row(&base, wname, sname, n) else {
            eprintln!("guard: {wname}/{sname}/n={n} missing from {baseline_path}");
            ok = false;
            continue;
        };
        let base_bytes = base_row
            .get("bytes_shipped")
            .and_then(Json::as_num)
            .expect("baseline row has bytes_shipped") as u64;
        let base_firings = base_row
            .get("firings")
            .and_then(Json::as_num)
            .expect("baseline row has firings") as u64;

        let correct = row.correct;
        let shrink_ok = row.bytes_shipped * 2 <= base_bytes;
        let firings_ok = row.firings == base_firings;
        let ratio = base_bytes as f64 / row.bytes_shipped.max(1) as f64;
        println!(
            "guard {wname}/{sname}/n={n}: bytes {} -> {} ({ratio:.2}x), firings {} -> {}, \
             correct={correct} shrink_ok={shrink_ok} firings_ok={firings_ok}",
            base_bytes, row.bytes_shipped, base_firings, row.firings,
        );
        if !correct {
            eprintln!("guard FAIL: {wname}/{sname}/n={n} diverged from the sequential oracle");
            ok = false;
        }
        if !shrink_ok {
            eprintln!(
                "guard FAIL: {wname}/{sname}/n={n} shipped {} bytes; \
                 needs <= {} (2x under the row-format reference {})",
                row.bytes_shipped,
                base_bytes / 2,
                base_bytes,
            );
            ok = false;
        }
        if !firings_ok {
            eprintln!(
                "guard FAIL: {wname}/{sname}/n={n} fired {} rules; \
                 reference fired {} (semantics fingerprint changed)",
                row.firings, base_firings,
            );
            ok = false;
        }

        // TCP-loopback pass: the same cell through the multi-process
        // transport (real loopback sockets, one length-prefixed frame
        // stream per worker) must stay inside the same frozen wire
        // envelope — the framing layer may not bloat shipments past the
        // 2x-under-row-format bar, and the least model must not change.
        let net = gst_runtime::NetCoordinator::new(
            std::sync::Arc::new(gst_runtime::InProcessLauncher {
                decoder: Some(gst_core::prelude::decode_constraint),
            }),
            gst_runtime::NetConfig::default(),
        );
        let net_outcome = net
            .execute(scheme.workers.clone(), &RuntimeConfig::default())
            .expect("tcp-loopback guard run failed");
        let net_bytes = net_outcome.stats.total_bytes_sent();
        let net_correct = net_outcome.relation(anc).set_eq(&reference);
        let net_shrink_ok = net_bytes * 2 <= base_bytes;
        println!(
            "guard {wname}/{sname}/n={n} (tcp loopback): bytes {} -> {} ({:.2}x), \
             correct={net_correct} shrink_ok={net_shrink_ok}",
            base_bytes,
            net_bytes,
            base_bytes as f64 / net_bytes.max(1) as f64,
        );
        if !net_correct {
            eprintln!(
                "guard FAIL: {wname}/{sname}/n={n} over TCP diverged from the sequential oracle"
            );
            ok = false;
        }
        if !net_shrink_ok {
            eprintln!(
                "guard FAIL: {wname}/{sname}/n={n} over TCP shipped {} bytes; \
                 needs <= {} (2x under the row-format reference {})",
                net_bytes,
                base_bytes / 2,
                base_bytes,
            );
            ok = false;
        }

        // Batch-mode invariance against the current columnar baseline:
        // the update-session layer must leave ordinary batch compilation
        // byte-for-byte alone.
        let Some(current) = &current else { continue };
        let Some(cur_row) = baseline_row(current, wname, sname, n) else {
            eprintln!("guard: {wname}/{sname}/n={n} missing from the batch baseline");
            ok = false;
            continue;
        };
        let cur_bytes = cur_row
            .get("bytes_shipped")
            .and_then(Json::as_num)
            .expect("batch baseline row has bytes_shipped") as u64;
        let cur_firings = cur_row
            .get("firings")
            .and_then(Json::as_num)
            .expect("batch baseline row has firings") as u64;
        println!(
            "guard {wname}/{sname}/n={n} (batch baseline): bytes {} -> {}, firings {} -> {}",
            cur_bytes, row.bytes_shipped, cur_firings, row.firings,
        );
        if row.firings != cur_firings {
            eprintln!(
                "guard FAIL: {wname}/{sname}/n={n} batch-mode firings changed \
                 ({} vs baseline {}) — the session layer leaked into batch plans",
                row.firings, cur_firings,
            );
            ok = false;
        }
        // Byte counts on the threaded transport jitter by a few tenths
        // of a percent run to run (coalescing merges pending batches, so
        // the header count depends on thread scheduling); 1% headroom
        // absorbs that while still catching any systematic growth, e.g.
        // a retract flag leaking onto the batch wire.
        if row.bytes_shipped * 100 > cur_bytes * 101 {
            eprintln!(
                "guard FAIL: {wname}/{sname}/n={n} batch-mode bytes regressed \
                 ({} vs baseline {}, >1% growth)",
                row.bytes_shipped, cur_bytes,
            );
            ok = false;
        }
    }
    if ok {
        println!("wire guard holds: >=2x smaller shipments, identical firing counts");
        0
    } else {
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|k| args.get(k + 1).cloned())
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());
    if let Some(guard_path) = args
        .iter()
        .position(|a| a == "--guard")
        .and_then(|k| args.get(k + 1).cloned())
    {
        let batch_baseline = args
            .iter()
            .position(|a| a == "--batch-baseline")
            .and_then(|k| args.get(k + 1).cloned());
        std::process::exit(run_guard(&guard_path, batch_baseline.as_deref()));
    }

    if cfg!(debug_assertions) {
        eprintln!("warning: debug build — timings are not meaningful; use --release");
    }

    // The TC workload matrix. Sizes are chosen so the full matrix finishes
    // in a few minutes while each cell runs long enough to time reliably.
    let workloads: Vec<(&'static str, Relation)> = if smoke {
        vec![
            ("chain", chain(64)),
            ("random", random_digraph(120, 360, 42)),
            ("zipf", zipf_digraph(300, 240, 30, 42)),
        ]
    } else {
        vec![
            ("chain", chain(192)),
            ("grid", grid(20, 20)),
            ("random", random_digraph(280, 840, 42)),
            ("layered", layered(6, 90, 3, 99)),
            ("star", star(256)),
            ("zipf", zipf_digraph(6000, 4800, 30, 42)),
        ]
    };
    let ns: &[usize] = if smoke { &[2] } else { &[1, 2, 4, 8] };
    let reps = if smoke { 1 } else { 3 };

    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let anc = fx.output_id();

    let mut rows: Vec<Row> = Vec::new();
    let mut seq_json = Vec::new();
    for (wname, data) in &workloads {
        let db = fx.database(data);

        // Sequential semi-naive oracle + wall-clock baseline.
        let mut seq_ms = f64::INFINITY;
        let mut oracle = None;
        for _ in 0..reps {
            let t0 = Instant::now();
            let r = seminaive_eval(&fx.program, &db).unwrap();
            seq_ms = seq_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            oracle = Some(r);
        }
        let oracle = oracle.unwrap();
        let reference = oracle.relation(anc);
        println!(
            "== {wname}: {} edges, |anc| = {}, sequential {seq_ms:.1} ms, {:.0} tuples/s",
            data.len(),
            reference.len(),
            reference.len() as f64 / (seq_ms / 1e3),
        );
        seq_json.push(Json::obj(vec![
            ("workload", s(*wname)),
            ("edges", count(data.len() as u64)),
            ("closure", count(reference.len() as u64)),
            ("seq_wall_ms", num(seq_ms)),
            ("seq_firings", count(oracle.stats.firings)),
        ]));

        for &n in ns {
            let frag = round_robin_fragment(data, n).unwrap();
            // Phase timers stay on for the measured matrix (one Instant
            // read per phase per round — noise, not signal, at these cell
            // sizes); the wire guard keeps its plain default config.
            let mut plain = RuntimeConfig::default();
            plain.worker.profile = true;
            let mut schemes: Vec<(&'static str, CompiledScheme, RuntimeConfig)> = vec![
                ("ex1-zerocomm", example1_wolfson(&sirup, n, &db).unwrap(), plain.clone()),
                ("qi-hash", example3_hash_partition(&sirup, n, &db).unwrap(), plain.clone()),
                ("ex2-broadcast", example2_valduriez(&sirup, frag, &db).unwrap(), plain.clone()),
            ];
            // The skewed workloads additionally run the skew-aware
            // partition, and zipf composes it with 4 morsel threads per
            // worker — the acceptance cells for hot-key splitting.
            if matches!(*wname, "star" | "zipf") {
                let skew = SkewPolicy::default();
                schemes.push((
                    "skew-hash",
                    skew_aware_hash_partition(&sirup, n, &db, &skew).unwrap(),
                    plain.clone(),
                ));
                if *wname == "zipf" {
                    let mut morsels = RuntimeConfig::default();
                    morsels.worker.morsel_threads = 4;
                    morsels.worker.profile = true;
                    schemes.push((
                        "skew-morsels",
                        skew_aware_hash_partition(&sirup, n, &db, &skew).unwrap(),
                        morsels,
                    ));
                }
            }
            for (sname, scheme, config) in &schemes {
                rows.push(measure((wname, sname), n, scheme, &reference, anc, reps, config));
            }

            // Demand-driven point-query cells (DESIGN.md §15): the same
            // TC written right-linear, queried at one bound-first
            // constant. `rl-full` is the full closure under the Q_i hash
            // partition; `magic-point` runs the magic rewrite under the
            // demand-aware partition and records what fraction of the
            // full-closure firings the point query paid.
            if let Some(c) = point_constant(wname) {
                let rlfx = right_linear_ancestor();
                let rl_db = rlfx.database(data);
                let rl_sirup = LinearSirup::from_program(&rlfx.program).unwrap();
                let full = measure(
                    (wname, "rl-full"),
                    n,
                    &example3_hash_partition(&rl_sirup, n, &rl_db).unwrap(),
                    &reference,
                    rlfx.output_id(),
                    reps,
                    &plain,
                );
                let goal = Atom::new(
                    rlfx.output_id().0,
                    vec![
                        Term::Const(Value::Int(c)),
                        Term::Var(Variable(rlfx.program.interner.intern("QY"))),
                    ],
                );
                let rw = magic_rewrite(&rlfx.program, &goal).unwrap();
                let mut filtered = Relation::new(rw.answer.arity);
                for t in reference.iter() {
                    if rw.answer_matches(t) {
                        filtered.insert(t.clone()).unwrap();
                    }
                }
                let mut magic = measure(
                    (wname, "magic-point"),
                    n,
                    &compile_demand(&rw, &rl_db, n).unwrap(),
                    &filtered,
                    (rw.answer.name, rw.answer.arity),
                    reps,
                    &plain,
                );
                magic.demand_ratio = Some(magic.firings as f64 / full.firings.max(1) as f64);
                rows.push(full);
                rows.push(magic);
            }
        }
    }

    let mut t = Table::new(vec![
        "workload", "scheme", "n", "wall ms", "ktuples/s", "rounds", "round ms", "KiB shipped",
        "skew", "compute ms", "comm ms", "idle ms", "d-ratio", "ok",
    ]);
    for r in &rows {
        let max = r.worker_firings.iter().copied().max().unwrap_or(0);
        let mean =
            r.worker_firings.iter().sum::<u64>() as f64 / r.worker_firings.len().max(1) as f64;
        let skew = if mean > 0.0 { max as f64 / mean } else { 0.0 };
        let [compute, encode, decode, replay, idle] = r.phase_us;
        t.row(vec![
            r.workload.to_string(),
            r.scheme.to_string(),
            r.n.to_string(),
            format!("{:.1}", r.wall_ms),
            format!("{:.0}", r.tuples_per_sec / 1e3),
            r.rounds.to_string(),
            format!("{:.3}", r.round_ms),
            format!("{:.1}", r.bytes_shipped as f64 / 1024.0),
            format!("{skew:.2}"),
            format!("{:.1}", compute as f64 / 1e3),
            format!("{:.1}", (encode + decode + replay) as f64 / 1e3),
            format!("{:.1}", idle as f64 / 1e3),
            r.demand_ratio.map_or_else(|| "-".to_string(), |d| format!("{d:.4}")),
            r.correct.to_string(),
        ]);
    }
    println!("{}", t.render());

    let all_correct = rows.iter().all(|r| r.correct);
    println!(
        "all {} configurations matched the sequential least model: {all_correct}",
        rows.len()
    );

    let report = Json::obj(vec![
        ("bench", s("throughput")),
        ("smoke", Json::Bool(smoke)),
        ("reps", count(reps as u64)),
        ("sequential", Json::Arr(seq_json)),
        (
            "rows",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        let mut fields = vec![
                            ("workload", s(r.workload)),
                            ("scheme", s(r.scheme)),
                            ("n", count(r.n as u64)),
                            ("wall_ms", num(r.wall_ms)),
                            ("tuples", count(r.tuples)),
                            ("tuples_per_sec", num(r.tuples_per_sec)),
                            ("rounds", count(r.rounds)),
                            ("round_ms", num(r.round_ms)),
                            ("bytes_shipped", count(r.bytes_shipped)),
                            ("comm_tuples", count(r.comm_tuples)),
                            ("firings", count(r.firings)),
                            (
                                "worker_firings",
                                Json::Arr(r.worker_firings.iter().map(|&f| count(f)).collect()),
                            ),
                            ("phase_compute_us", count(r.phase_us[0])),
                            ("phase_encode_us", count(r.phase_us[1])),
                            ("phase_decode_us", count(r.phase_us[2])),
                            ("phase_replay_us", count(r.phase_us[3])),
                            ("phase_idle_us", count(r.phase_us[4])),
                            ("correct", Json::Bool(r.correct)),
                        ];
                        if let Some(d) = r.demand_ratio {
                            fields.push(("demand_ratio", num(d)));
                        }
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        ),
        ("all_correct", Json::Bool(all_correct)),
    ]);
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("cannot create report directory");
        }
    }
    std::fs::write(&out_path, report.render()).expect("cannot write report");
    eprintln!("wrote {out_path}");

    // Companion report: the per-round time series of every kept rep —
    // the §6 duplication/communication trade-off round by round.
    let rounds_path = format!(
        "{}_rounds.json",
        out_path.strip_suffix(".json").unwrap_or(&out_path)
    );
    let rounds_report = Json::obj(vec![
        ("bench", s("throughput-rounds")),
        ("smoke", Json::Bool(smoke)),
        (
            "cells",
            Json::Arr(
                rows.iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("workload", s(r.workload)),
                            ("scheme", s(r.scheme)),
                            ("n", count(r.n as u64)),
                            ("series", r.rounds_series.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&rounds_path, rounds_report.render()).expect("cannot write rounds report");
    eprintln!("wrote {rounds_path}");
    if !all_correct {
        std::process::exit(1);
    }
}
