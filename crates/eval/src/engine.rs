//! The semi-naive fixpoint engine, exposed round-at-a-time.
//!
//! A [`FixpointEngine`] owns the derived-relation state of one evaluation
//! site (the whole computation when sequential; one processor `i` when
//! parallel) and is driven in three strokes:
//!
//! 1. [`FixpointEngine::bootstrap`] — fire the rules with no derived body
//!    atoms (the initialization rules of the paper's schemes) into the
//!    pending pool;
//! 2. [`FixpointEngine::advance`] — end a round: deduplicate pending
//!    tuples into fresh deltas (the paper's "difference operation");
//! 3. [`FixpointEngine::process_round`] — fire every delta version of
//!    every recursive rule against the current deltas, producing the next
//!    pending pool.
//!
//! The parallel runtime interleaves [`FixpointEngine::inject`] (receive)
//! and delta draining (send) between strokes; the sequential drivers
//! [`seminaive_eval`] and [`naive_eval`] just loop.

use std::sync::Arc;

use gst_common::{Error, FxHashMap, Result, Tuple};
use gst_frontend::{Program, ProgramAnalysis};
use gst_storage::{Database, HashIndex, Relation};

use crate::exec::{run_plan, run_plan_morsels_profiled, Access, MorselConfig, MorselPool};
use crate::plan::{compile_rule_with, idb_occurrence_count, AtomSource, PlanOptions, PlanStep, RelationId, RulePlan};
use crate::stats::{EvalStats, TimeMode};

/// Derived-relation state under semi-naive iteration.
///
/// The delta is not a second relation: `full` is an insertion-ordered
/// row arena, and the delta is its suffix `full.rows()[delta_start..]`
/// — the rows the last [`IdbState::advance`] appended. The `Old` view
/// (`T_{i-1}`) is the complementary prefix, so both views are borrowed
/// row ranges of one arena and share its hash indexes.
#[derive(Debug)]
struct IdbState {
    full: Relation,
    /// First arena row of the current delta.
    delta_start: usize,
    pending: Vec<Tuple>,
}

impl IdbState {
    fn new(arity: usize) -> Self {
        IdbState {
            full: Relation::new(arity),
            delta_start: 0,
            pending: Vec::new(),
        }
    }

    /// `pending ∖ full → delta`; returns `(submitted, fresh)`. The set
    /// insert into the arena is the paper's difference operation — the
    /// surviving rows *are* the new delta.
    fn advance(&mut self) -> (u64, u64) {
        let submitted = self.pending.len() as u64;
        self.delta_start = self.full.len();
        let fresh = self.full.insert_batch(&mut self.pending);
        (submitted, fresh)
    }

    /// The current delta as a borrowed arena suffix.
    fn delta_slice(&self) -> &[Tuple] {
        &self.full.rows()[self.delta_start..]
    }

    fn delta_is_empty(&self) -> bool {
        self.delta_start == self.full.len()
    }
}

type IndexKey = (RelationId, Vec<usize>);

/// A resumable semi-naive evaluator for one evaluation site.
pub struct FixpointEngine {
    program: Program,
    edb: Arc<Database>,
    idb: FxHashMap<RelationId, IdbState>,
    /// Plans fired every round (delta versions of rules with derived
    /// body atoms).
    round_plans: Vec<RulePlan>,
    /// Plans fired once at bootstrap (no derived body atoms).
    bootstrap_plans: Vec<RulePlan>,
    edb_indexes: FxHashMap<IndexKey, HashIndex>,
    /// One index per (relation, columns) serves the full, `Old`, and
    /// delta views — they are row ranges of the same arena.
    full_indexes: FxHashMap<IndexKey, HashIndex>,
    stats: EvalStats,
    bootstrapped: bool,
    /// Predicates installed by [`FixpointEngine::preseed`]: bootstrap
    /// must not seed these again from the EDB.
    preseeded: Vec<RelationId>,
    /// Morsel-parallel join settings (disabled by default; the sequential
    /// and morsel paths produce bit-identical results, see
    /// [`run_plan_morsels`]).
    morsels: MorselConfig,
    /// Persistent helper threads for the morsel path, created by
    /// [`FixpointEngine::set_morsels`] when it enables morsels. Spawning
    /// threads per round would cost more than a medium delta's join work.
    pool: Option<MorselPool>,
    /// Per-rule / per-chunk time attribution mode (off by default; the
    /// unprofiled path pays one branch per rule execution).
    time_mode: TimeMode,
    /// Scratch buffer for morsel chunk `(micros, tuples)` samples,
    /// reused across rule executions to avoid per-rule allocation.
    chunk_scratch: Vec<(u64, u64)>,
}

impl FixpointEngine {
    /// Build an engine for `program` over the base relations in `edb`.
    ///
    /// `extra_idb` declares predicates that receive tuples only via
    /// [`FixpointEngine::inject`] (the incoming-channel predicates `t_ji`
    /// of the paper's receive rules); they are treated as derived even
    /// though no rule in `program` defines them.
    pub fn new(program: &Program, edb: Arc<Database>, extra_idb: &[RelationId]) -> Result<Self> {
        Self::with_options(program, edb, extra_idb, PlanOptions::default())
    }

    /// [`FixpointEngine::new`] with explicit [`PlanOptions`] — used by the
    /// ablation benchmarks to disable individual planner optimizations.
    pub fn with_options(
        program: &Program,
        edb: Arc<Database>,
        extra_idb: &[RelationId],
        options: PlanOptions,
    ) -> Result<Self> {
        ProgramAnalysis::new(program)?; // safety check

        let mut idb: FxHashMap<RelationId, IdbState> = FxHashMap::default();
        for rule in &program.rules {
            let id: RelationId = (rule.head.predicate, rule.head.terms.len());
            idb.entry(id).or_insert_with(|| IdbState::new(id.1));
        }
        for &id in extra_idb {
            idb.entry(id).or_insert_with(|| IdbState::new(id.1));
        }

        let idb_ids: Vec<RelationId> = idb.keys().copied().collect();
        let is_idb = move |rel: RelationId| idb_ids.contains(&rel);

        let mut round_plans = Vec::new();
        let mut bootstrap_plans = Vec::new();
        for (rule_index, rule) in program.rules.iter().enumerate() {
            let occurrences = idb_occurrence_count(rule, &is_idb);
            if occurrences == 0 {
                bootstrap_plans.push(compile_rule_with(rule, rule_index, &is_idb, None, options)?);
            } else {
                for version in 0..occurrences {
                    round_plans.push(compile_rule_with(
                        rule,
                        rule_index,
                        &is_idb,
                        Some(version),
                        options,
                    )?);
                }
            }
        }

        let stats = EvalStats::new(program.rules.len());
        Ok(FixpointEngine {
            program: program.clone(),
            edb,
            idb,
            round_plans,
            bootstrap_plans,
            edb_indexes: FxHashMap::default(),
            full_indexes: FxHashMap::default(),
            stats,
            bootstrapped: false,
            preseeded: Vec::new(),
            morsels: MorselConfig::default(),
            pool: None,
            time_mode: TimeMode::Off,
            chunk_scratch: Vec::new(),
        })
    }

    /// Set the morsel-parallel join configuration. Safe to call at any
    /// point: the morsel path is bit-identical to the sequential one, so
    /// this only changes how large leading scans are executed.
    pub fn set_morsels(&mut self, morsels: MorselConfig) {
        self.morsels = morsels;
        if morsels.enabled() {
            if self.pool.as_ref().map(MorselPool::participants) != Some(morsels.threads) {
                self.pool = Some(MorselPool::new(morsels.threads));
            }
        } else {
            self.pool = None;
        }
    }

    /// Set the time-attribution mode. `Wall` splits per-rule compute time
    /// in microseconds; `Ticks` uses deterministic work proxies (firings,
    /// tuples) so simulated runs profile reproducibly; `Off` (default)
    /// records nothing. Safe to call at any point — attribution is purely
    /// observational.
    pub fn set_time_mode(&mut self, mode: TimeMode) {
        self.time_mode = mode;
    }

    /// Install `state` as the complete already-derived relation for
    /// `pred`, with an **empty delta**: the rows are treated as known
    /// from previous evaluation rounds, so no rule refires on them and
    /// they sit below every shipping watermark. This is how an update
    /// session resumes a maintained fixpoint — each round's engine
    /// starts from the previous round's state instead of re-deriving it.
    ///
    /// The relation may carry tombstones (rows deleted between rounds);
    /// dead rows stay out of scans and dedup probes but keep their
    /// arena slots, so `state.len()` is the correct resume watermark.
    ///
    /// Must be called before [`FixpointEngine::bootstrap`]; the EDB
    /// seeding that bootstrap would do for `pred` is skipped (the
    /// preseeded state already includes whatever survived).
    ///
    /// # Errors
    /// `pred` must be a derived predicate of matching arity, and the
    /// engine must not have bootstrapped yet.
    pub fn preseed(&mut self, pred: RelationId, state: Relation) -> Result<()> {
        if self.bootstrapped {
            return Err(Error::Eval("preseed after bootstrap".into()));
        }
        if state.arity() != pred.1 {
            return Err(Error::Eval(format!(
                "preseed arity {} != predicate arity {}",
                state.arity(),
                pred.1
            )));
        }
        let s = self.idb.get_mut(&pred).ok_or_else(|| {
            Error::Eval(format!("preseed of non-derived predicate {pred:?}"))
        })?;
        s.delta_start = state.len();
        s.full = state;
        self.preseeded.push(pred);
        Ok(())
    }

    /// The program this engine runs.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Derived predicates (including injected channel predicates).
    pub fn idb_predicates(&self) -> Vec<RelationId> {
        self.idb.keys().copied().collect()
    }

    /// Everything derived so far for `pred` (None if not derived here).
    pub fn relation(&self, pred: RelationId) -> Option<&Relation> {
        self.idb.get(&pred).map(|s| &s.full)
    }

    /// The previous round's fresh tuples for `pred` — a borrowed slice
    /// of the relation's row arena (what a worker transmits on the
    /// channels after an advance, and encodes without copying).
    pub fn delta_tuples(&self, pred: RelationId) -> &[Tuple] {
        self.idb.get(&pred).map(|s| s.delta_slice()).unwrap_or(&[])
    }

    /// Everything appended to `pred`'s row arena at or after row `from` —
    /// a borrowed slice spanning any number of rounds. Workers that defer
    /// shipping to the local fixpoint read their per-channel backlog this
    /// way: the arena keeps rows in insertion order, so "what I have not
    /// shipped yet" is just a suffix.
    pub fn rows_from(&self, pred: RelationId, from: usize) -> &[Tuple] {
        self.idb
            .get(&pred)
            .map(|s| &s.full.rows()[from.min(s.full.len())..])
            .unwrap_or(&[])
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &EvalStats {
        &self.stats
    }

    /// Queue externally received tuples for `pred` (the receive step).
    pub fn inject(&mut self, pred: RelationId, tuples: impl IntoIterator<Item = Tuple>) -> Result<()> {
        let state = self.idb.get_mut(&pred).ok_or_else(|| {
            Error::Eval(format!("inject into non-derived predicate {pred:?}"))
        })?;
        for t in tuples {
            if t.arity() != pred.1 {
                return Err(Error::Eval(format!(
                    "injected tuple arity {} != predicate arity {}",
                    t.arity(),
                    pred.1
                )));
            }
            state.pending.push(t);
        }
        Ok(())
    }

    /// Queue externally received tuples for `pred` by letting `fill`
    /// append directly into the pending pool — the zero-copy receive
    /// path: a transport decoder writes tuples where the engine will
    /// drain them, with no intermediate buffer. The arity invariant of
    /// [`FixpointEngine::inject`] is preserved by checking the appended
    /// suffix afterwards; on any failure the pool is rolled back to its
    /// pre-call length.
    ///
    /// # Errors
    /// `pred` must be a derived predicate; `fill`'s error is propagated;
    /// appending a tuple of the wrong arity is rejected.
    pub fn inject_with<T>(
        &mut self,
        pred: RelationId,
        fill: impl FnOnce(&mut Vec<Tuple>) -> Result<T>,
    ) -> Result<T> {
        let state = self.idb.get_mut(&pred).ok_or_else(|| {
            Error::Eval(format!("inject into non-derived predicate {pred:?}"))
        })?;
        let before = state.pending.len();
        match fill(&mut state.pending) {
            Ok(v) => {
                if let Some(bad) = state.pending[before..].iter().find(|t| t.arity() != pred.1)
                {
                    let got = bad.arity();
                    state.pending.truncate(before);
                    return Err(Error::Eval(format!(
                        "injected tuple arity {got} != predicate arity {}",
                        pred.1
                    )));
                }
                Ok(v)
            }
            Err(e) => {
                state.pending.truncate(before);
                Err(e)
            }
        }
    }

    /// Queue the current delta of `from` into the pending pool of `to` —
    /// the path for a worker's self-channel (`t_ii`), which needs no wire
    /// format. Equivalent to `inject(to, delta_tuples(from))` but legal
    /// while the delta borrows the engine. Returns the tuples queued.
    ///
    /// # Errors
    /// `to` must be a derived predicate with the same arity as `from`.
    pub fn loopback(&mut self, from: RelationId, to: RelationId) -> Result<u64> {
        let start = self.idb.get(&from).map(|s| s.delta_start).unwrap_or(0);
        self.loopback_from(from, to, start)
    }

    /// Like [`FixpointEngine::loopback`], but queues every row of `from`
    /// at or after arena row `from_row` — the self-channel counterpart of
    /// [`FixpointEngine::rows_from`] for workers that ship at the local
    /// fixpoint instead of every round.
    ///
    /// # Errors
    /// `to` must be a derived predicate with the same arity as `from`.
    pub fn loopback_from(
        &mut self,
        from: RelationId,
        to: RelationId,
        from_row: usize,
    ) -> Result<u64> {
        if !self.idb.contains_key(&to) {
            return Err(Error::Eval(format!(
                "loopback into non-derived predicate {to:?}"
            )));
        }
        if from.1 != to.1 {
            return Err(Error::Eval(format!(
                "loopback arity mismatch: {} -> {}",
                from.1, to.1
            )));
        }
        if from == to || self.idb.get(&from).is_none_or(|s| s.full.len() <= from_row) {
            // Self-loopback would only re-submit rows the arena already
            // holds; an empty backlog ships nothing.
            return Ok(0);
        }
        let mut dst = self.idb.remove(&to).expect("presence checked above");
        let n = {
            let src = &self.idb[&from].full.rows()[from_row..];
            dst.pending.extend_from_slice(src);
            src.len() as u64
        };
        self.idb.insert(to, dst);
        Ok(n)
    }

    /// True when no delta and no pending tuples exist anywhere — the local
    /// idle condition of the paper's termination test.
    pub fn quiescent(&self) -> bool {
        self.idb
            .values()
            .all(|s| s.delta_is_empty() && s.pending.is_empty())
    }

    /// Fire initialization rules (no derived body atoms) and seed derived
    /// predicates that have facts in the EDB. Idempotent.
    pub fn bootstrap(&mut self) -> Result<()> {
        if self.bootstrapped {
            return Ok(());
        }
        self.bootstrapped = true;

        // Facts supplied for derived predicates become part of the input
        // — except for preseeded predicates, whose resumed state already
        // reflects every surviving input fact.
        let edb = Arc::clone(&self.edb);
        for (&id, state) in self.idb.iter_mut() {
            if self.preseeded.contains(&id) {
                continue;
            }
            if let Some(rel) = edb.relation(id) {
                state.pending.extend(rel.iter().cloned());
            }
        }

        for i in 0..self.bootstrap_plans.len() {
            self.run_plan_step(PlanSet::Bootstrap, i);
        }
        Ok(())
    }

    /// End the round: move pending to deltas, update incremental indexes.
    /// Returns the number of fresh tuples across all derived predicates.
    pub fn advance(&mut self) -> u64 {
        let mut fresh_total = 0;
        let mut submitted_total = 0;
        let ids: Vec<RelationId> = self.idb.keys().copied().collect();
        for id in ids {
            let state = self.idb.get_mut(&id).expect("iterating own keys");
            let (submitted, fresh) = state.advance();
            self.stats.record_advance(submitted, fresh);
            submitted_total += submitted;
            fresh_total += fresh;
            if fresh > 0 {
                // Feed the appended arena rows into every cached index of
                // this relation so the fixpoint stays O(total tuples), not
                // O(rounds × tuples). `sync` reads the rows in place — no
                // delta copy, no tuple clones.
                let full = &self.idb[&id].full;
                for ((rel, _cols), index) in self.full_indexes.iter_mut() {
                    if *rel == id {
                        index.sync(full);
                    }
                }
            }
        }
        self.stats.end_round(submitted_total, fresh_total);
        fresh_total
    }

    /// Fire every delta-version plan once, pushing results into pending.
    pub fn process_round(&mut self) {
        for i in 0..self.round_plans.len() {
            self.run_plan_step(PlanSet::Round, i);
        }
    }

    /// Sync indexes, run one plan, and record its firings — plus, when a
    /// [`TimeMode`] is active, its time attribution: per-rule compute
    /// time (wall micros or firings-as-ticks) and per-chunk morsel
    /// service samples. The `Off` path is the pre-profiling code exactly,
    /// modulo two predictable branches.
    fn run_plan_step(&mut self, set: PlanSet, i: usize) {
        self.sync_indexes_for(set, i);
        let plan = self.plan(set, i);
        let head = plan.head;
        let rule_index = plan.rule_index;
        let mut pending = self.take_pending(head);
        let timing = self.time_mode;
        let mut chunk_scratch = std::mem::take(&mut self.chunk_scratch);
        chunk_scratch.clear();
        let t0 = (timing == TimeMode::Wall).then(std::time::Instant::now);
        let collector = (timing != TimeMode::Off).then_some(&mut chunk_scratch);
        let (firings, morsels) = self.run_one_into(set, i, &mut pending, collector);
        match timing {
            TimeMode::Off => {}
            TimeMode::Wall => {
                let micros = t0.expect("wall timer set").elapsed().as_micros() as u64;
                self.stats.record_rule_time(rule_index, micros);
            }
            TimeMode::Ticks => self.stats.record_rule_time(rule_index, firings),
        }
        if timing != TimeMode::Off {
            for &(micros, tuples) in &chunk_scratch {
                let sample = if timing == TimeMode::Wall { micros } else { tuples };
                self.stats.chunk_service.record(sample);
            }
        }
        self.chunk_scratch = chunk_scratch;
        self.stats.record_firings(rule_index, firings);
        self.stats.record_morsels(morsels);
        self.put_pending(head, pending);
    }

    /// Run to the local fixpoint: bootstrap, then advance/process rounds
    /// until nothing new appears. Returns total fresh tuples.
    pub fn run_to_fixpoint(&mut self) -> Result<u64> {
        self.bootstrap()?;
        let mut total = 0;
        loop {
            let fresh = self.advance();
            total += fresh;
            if fresh == 0 {
                return Ok(total);
            }
            self.process_round();
        }
    }

    /// Move a derived relation out of the engine (used by final pooling
    /// to avoid cloning large results). The engine keeps an empty
    /// relation in its place; only call after the fixpoint.
    pub fn take_relation(&mut self, pred: RelationId) -> Option<Relation> {
        self.idb.get_mut(&pred).map(|s| {
            s.delta_start = 0;
            std::mem::replace(&mut s.full, Relation::new(pred.1))
        })
    }

    /// Extract the final derived relations (consumes nothing; clones).
    pub fn snapshot(&self) -> FxHashMap<RelationId, Relation> {
        self.idb
            .iter()
            .map(|(&id, state)| (id, state.full.clone()))
            .collect()
    }

    // ----- internals -------------------------------------------------

    fn plan(&self, set: PlanSet, i: usize) -> &RulePlan {
        match set {
            PlanSet::Bootstrap => &self.bootstrap_plans[i],
            PlanSet::Round => &self.round_plans[i],
        }
    }

    /// Make sure every index a plan's scans need exists and is current.
    fn sync_indexes_for(&mut self, set: PlanSet, i: usize) {
        let needs: Vec<(RelationId, AtomSource, Vec<usize>)> = self
            .plan(set, i)
            .steps
            .iter()
            .filter_map(|s| match s {
                PlanStep::Scan(sc) if !sc.probe_columns.is_empty() => {
                    Some((sc.relation, sc.source, sc.probe_columns.clone()))
                }
                _ => None,
            })
            .collect();

        for (rel, source, cols) in needs {
            let key = (rel, cols.clone());
            match source {
                AtomSource::Edb => {
                    // Borrow the EDB relation in place; a missing relation
                    // gets a permanently-empty index (the EDB never grows
                    // during evaluation).
                    if !self.edb_indexes.contains_key(&key) {
                        let index = match self.edb.relation(rel) {
                            Some(relation) => HashIndex::build(relation, &cols),
                            None => HashIndex::new(&cols),
                        };
                        self.edb_indexes.insert(key, index);
                    }
                }
                AtomSource::IdbFull | AtomSource::IdbOld | AtomSource::IdbDelta => {
                    // All three views share the full-arena index; `sync`
                    // ingests only the rows appended since the last call.
                    let full = &self.idb[&rel].full;
                    self.full_indexes
                        .entry(key)
                        .or_insert_with(|| HashIndex::new(&cols))
                        .sync(full);
                }
            }
        }
    }

    /// Execute one plan against current state. Returns (firings, output).
    /// Borrow the head predicate's pending pool for the duration of one
    /// rule run, so [`FixpointEngine::run_one_into`] can emit straight
    /// into it — no per-rule output buffer, no copy when the round ends.
    /// (Plans never *read* pending, only arenas, so lending it out is
    /// safe.)
    fn take_pending(&mut self, head: RelationId) -> Vec<Tuple> {
        std::mem::take(
            &mut self
                .idb
                .get_mut(&head)
                .expect("head predicate has state")
                .pending,
        )
    }

    /// Return a pending pool borrowed with [`FixpointEngine::take_pending`].
    fn put_pending(&mut self, head: RelationId, pending: Vec<Tuple>) {
        self.idb
            .get_mut(&head)
            .expect("head predicate has state")
            .pending = pending;
    }

    /// Execute one plan against current state, emitting into `out`.
    /// Returns `(firings, morsel_chunks)` — chunks is zero when the
    /// sequential path ran.
    fn run_one_into(
        &self,
        set: PlanSet,
        i: usize,
        out: &mut Vec<Tuple>,
        chunk_times: Option<&mut Vec<(u64, u64)>>,
    ) -> (u64, u64) {
        let plan = self.plan(set, i);
        // EDB relations referenced without data need a live empty relation
        // to borrow; collect owned empties first.
        let accesses: Vec<Option<Access<'_>>> = plan
            .steps
            .iter()
            .map(|s| match s {
                PlanStep::Filter { .. } => None,
                PlanStep::Scan(sc) => Some(self.access_for(sc)),
            })
            .collect();
        if self.morsels.enabled() {
            if let Some((firings, chunks)) = run_plan_morsels_profiled(
                plan,
                &accesses,
                &self.morsels,
                self.pool.as_ref(),
                chunk_times,
                &mut |t| out.push(t),
            ) {
                return (firings, chunks);
            }
        }
        (run_plan(plan, &accesses, &mut |t| out.push(t)), 0)
    }

    fn access_for<'a>(&'a self, scan: &crate::plan::ScanStep) -> Access<'a> {
        let key = (scan.relation, scan.probe_columns.clone());
        match scan.source {
            AtomSource::Edb => {
                if !scan.probe_columns.is_empty() {
                    match (self.edb_indexes.get(&key), self.edb.relation(scan.relation)) {
                        (Some(idx), Some(rel)) => Access::probe_all(idx, rel),
                        _ => Access::Empty,
                    }
                } else {
                    match self.edb.relation(scan.relation) {
                        Some(rel) => Access::scan_all(rel),
                        None => Access::Empty,
                    }
                }
            }
            AtomSource::IdbFull => {
                let state = &self.idb[&scan.relation];
                if state.full.is_empty() {
                    Access::Empty
                } else if !scan.probe_columns.is_empty() {
                    Access::probe_all(&self.full_indexes[&key], &state.full)
                } else {
                    Access::scan_all(&state.full)
                }
            }
            AtomSource::IdbOld => {
                // Old = the arena rows below the delta watermark.
                let state = &self.idb[&scan.relation];
                if state.delta_start == 0 {
                    Access::Empty
                } else if !scan.probe_columns.is_empty() {
                    Access::probe_range(
                        &self.full_indexes[&key],
                        &state.full,
                        0,
                        state.delta_start as u32,
                    )
                } else {
                    Access::scan_range(&state.full, 0, state.delta_start as u32)
                }
            }
            AtomSource::IdbDelta => {
                // Delta = the arena rows at or above the watermark.
                let state = &self.idb[&scan.relation];
                if state.delta_is_empty() {
                    Access::Empty
                } else if !scan.probe_columns.is_empty() {
                    Access::probe_range(
                        &self.full_indexes[&key],
                        &state.full,
                        state.delta_start as u32,
                        state.full.len() as u32,
                    )
                } else {
                    Access::scan_range(&state.full, state.delta_start as u32, state.full.len() as u32)
                }
            }
        }
    }
}

#[derive(Clone, Copy)]
enum PlanSet {
    Bootstrap,
    Round,
}

/// The outcome of a sequential evaluation.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Final interpretation of every derived predicate.
    pub idb: FxHashMap<RelationId, Relation>,
    /// Firing/round statistics.
    pub stats: EvalStats,
}

impl EvalResult {
    /// The relation for a derived predicate, empty if never derived.
    pub fn relation(&self, pred: RelationId) -> Relation {
        self.idb
            .get(&pred)
            .cloned()
            .unwrap_or_else(|| Relation::new(pred.1))
    }
}

/// Sequential semi-naive evaluation of `program` over `edb` — the paper's
/// baseline (§2) against which non-redundancy is defined.
pub fn seminaive_eval(program: &Program, edb: &Database) -> Result<EvalResult> {
    seminaive_eval_with(program, edb, PlanOptions::default())
}

/// [`seminaive_eval`] with explicit [`PlanOptions`] (ablation studies).
pub fn seminaive_eval_with(
    program: &Program,
    edb: &Database,
    options: PlanOptions,
) -> Result<EvalResult> {
    let mut engine =
        FixpointEngine::with_options(program, Arc::new(edb.clone()), &[], options)?;
    engine.run_to_fixpoint()?;
    Ok(EvalResult {
        idb: engine.snapshot(),
        stats: engine.stats().clone(),
    })
}

/// Fire every rule of `program` exactly once, with **every** body atom
/// reading `db` — no derived/base distinction, no deltas, no fixpoint.
/// Returns the emitted head tuples grouped per head predicate
/// (duplicates included; callers dedup against their own state).
///
/// This is the rederivation probe of delete–rederive (DRed): after
/// over-deletion, one naive pass over the database holding the
/// *surviving* state emits exactly the tuples that are one-step
/// rederivable from live support. Everything the over-deletion removed
/// that is still derivable appears here (or cascades from here once the
/// emissions are fed back through the semi-naive loop).
pub fn fire_once(program: &Program, db: &Database) -> Result<Vec<(RelationId, Vec<Tuple>)>> {
    ProgramAnalysis::new(program)?;
    let is_idb = |_: RelationId| false;
    let mut out: FxHashMap<RelationId, Vec<Tuple>> = FxHashMap::default();
    for (i, rule) in program.rules.iter().enumerate() {
        let plan = compile_rule_with(rule, i, &is_idb, None, PlanOptions::default())?;
        let accesses: Vec<Option<Access<'_>>> = plan
            .steps
            .iter()
            .map(|s| match s {
                PlanStep::Filter { .. } => None,
                PlanStep::Scan(sc) => Some(match db.relation(sc.relation) {
                    Some(rel) if !rel.is_empty() => Access::scan_all(rel),
                    _ => Access::Empty,
                }),
            })
            .collect();
        let emitted = out.entry(plan.head).or_default();
        run_plan(&plan, &accesses, &mut |t| emitted.push(t));
    }
    Ok(out.into_iter().collect())
}

/// Naive evaluation: refire *every* rule against *full* relations each
/// round until a fixpoint. Used as a differential-testing oracle (its
/// least model must equal semi-naive's) and to quantify how much work
/// semi-naive saves.
pub fn naive_eval(program: &Program, edb: &Database) -> Result<EvalResult> {
    ProgramAnalysis::new(program)?;
    let edb = Arc::new(edb.clone());
    let mut idb: FxHashMap<RelationId, Relation> = FxHashMap::default();
    for rule in &program.rules {
        let id: RelationId = (rule.head.predicate, rule.head.terms.len());
        idb.entry(id).or_insert_with(|| Relation::new(id.1));
    }
    // Seed derived predicates that have input facts.
    let ids: Vec<RelationId> = idb.keys().copied().collect();
    for id in &ids {
        if let Some(rel) = edb.relation(*id) {
            idb.get_mut(id).expect("own key").absorb(rel).expect("arity agrees");
        }
    }
    let idb_ids = ids.clone();
    let is_idb = move |rel: RelationId| idb_ids.contains(&rel);
    let plans: Vec<RulePlan> = program
        .rules
        .iter()
        .enumerate()
        .map(|(i, r)| compile_rule_with(r, i, &is_idb, None, PlanOptions::default()))
        .collect::<Result<_>>()?;

    let mut stats = EvalStats::new(program.rules.len());
    loop {
        let mut emitted: Vec<(RelationId, Vec<Tuple>)> = Vec::new();
        for plan in &plans {
            let accesses: Vec<Option<Access<'_>>> = plan
                .steps
                .iter()
                .map(|s| match s {
                    PlanStep::Filter { .. } => None,
                    PlanStep::Scan(sc) => Some(match sc.source {
                        AtomSource::Edb => match edb.relation(sc.relation) {
                            Some(rel) => Access::scan_all(rel),
                            None => Access::Empty,
                        },
                        _ => {
                            let rel = &idb[&sc.relation];
                            if rel.is_empty() {
                                Access::Empty
                            } else {
                                Access::scan_all(rel)
                            }
                        }
                    }),
                })
                .collect();
            let mut out = Vec::new();
            let firings = run_plan(plan, &accesses, &mut |t| out.push(t));
            stats.record_firings(plan.rule_index, firings);
            emitted.push((plan.head, out));
        }
        let mut fresh = 0u64;
        let mut submitted = 0u64;
        for (head, out) in emitted {
            let rel = idb.get_mut(&head).expect("head state");
            submitted += out.len() as u64;
            for t in out {
                if rel.insert_unchecked(t) {
                    fresh += 1;
                }
            }
        }
        stats.record_advance(submitted, fresh);
        stats.end_round(submitted, fresh);
        if fresh == 0 {
            break;
        }
    }
    Ok(EvalResult { idb, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::{ituple, Interner};
    use gst_frontend::parse_program;

    /// Load `source`, returning (program, database).
    fn load(source: &str) -> (Program, Database) {
        let unit = parse_program(source).unwrap();
        let mut db = Database::new(unit.program.interner.clone());
        db.load_facts(unit.facts.clone()).unwrap();
        (unit.program, db)
    }

    fn rel(program: &Program, result: &EvalResult, name: &str, arity: usize) -> Relation {
        let id = (program.interner.get(name).unwrap(), arity);
        result.relation(id)
    }

    #[test]
    fn ancestor_on_a_chain() {
        let (p, db) = load(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             par(1,2). par(2,3). par(3,4).",
        );
        let r = seminaive_eval(&p, &db).unwrap();
        let anc = rel(&p, &r, "anc", 2);
        assert_eq!(anc.len(), 6);
        assert!(anc.contains(&ituple![1, 4]));
        assert!(!anc.contains(&ituple![4, 1]));
    }

    #[test]
    fn seminaive_equals_naive_on_ancestor() {
        let (p, db) = load(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             par(1,2). par(2,3). par(3,4). par(2,5). par(5,6). par(6,2).",
        );
        let a = seminaive_eval(&p, &db).unwrap();
        let b = naive_eval(&p, &db).unwrap();
        assert!(rel(&p, &a, "anc", 2).set_eq(&rel(&p, &b, "anc", 2)));
        // Naive refires everything; it can never fire fewer times.
        assert!(b.stats.firings >= a.stats.firings);
    }

    #[test]
    fn nonlinear_equals_linear_ancestor() {
        let facts = "par(1,2). par(2,3). par(3,4). par(4,5). par(5,1). par(3,6).";
        let (pl, dbl) = load(&format!(
            "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).\n{facts}"
        ));
        let (pn, dbn) = load(&format!(
            "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- anc(X,Z), anc(Z,Y).\n{facts}"
        ));
        let a = seminaive_eval(&pl, &dbl).unwrap();
        let b = seminaive_eval(&pn, &dbn).unwrap();
        assert!(rel(&pl, &a, "anc", 2).set_eq(&rel(&pn, &b, "anc", 2)));
    }

    #[test]
    fn seminaive_fires_each_derivation_once_on_a_chain() {
        // On a chain of n edges, linear TC derives each anc(i,j) exactly
        // once: firings == |anc| (+|par| copies from the exit rule).
        let n = 20i64;
        let facts: String = (1..=n).map(|k| format!("par({},{}).", k, k + 1)).collect();
        let (p, db) = load(&format!(
            "anc(X,Y) :- par(X,Y).\nanc(X,Y) :- par(X,Z), anc(Z,Y).\n{facts}"
        ));
        let r = seminaive_eval(&p, &db).unwrap();
        let anc_size = (n * (n + 1) / 2) as u64;
        assert_eq!(rel(&p, &r, "anc", 2).len() as u64, anc_size);
        assert_eq!(r.stats.firings, anc_size);
        assert_eq!(r.stats.duplicates, 0);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let (p, db) = load(
            "t(X,Y) :- e(X,Y).\n\
             t(X,Y) :- e(X,Z), t(Z,Y).\n\
             e(1,2). e(2,3). e(3,1).",
        );
        let r = seminaive_eval(&p, &db).unwrap();
        assert_eq!(rel(&p, &r, "t", 2).len(), 9); // complete digraph on the cycle
    }

    #[test]
    fn multi_rule_multi_predicate_program() {
        let (p, db) = load(
            "tc(X,Y) :- e(X,Y).\n\
             tc(X,Y) :- e(X,Z), tc(Z,Y).\n\
             sym(X,Y) :- tc(X,Y), tc(Y,X).\n\
             e(1,2). e(2,1). e(2,3).",
        );
        let r = seminaive_eval(&p, &db).unwrap();
        let sym = rel(&p, &r, "sym", 2);
        assert!(sym.contains(&ituple![1, 2]));
        assert!(sym.contains(&ituple![1, 1]));
        assert!(!sym.contains(&ituple![1, 3]));
    }

    #[test]
    fn same_generation_program() {
        //      1
        //     / \
        //    2   3
        //   /     \
        //  4       5
        let (p, db) = load(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).\n\
             up(4,2). up(2,1). up(5,3). up(3,1).\n\
             down(1,1).\n\
             flat(1,1).",
        );
        let r = seminaive_eval(&p, &db).unwrap();
        let sg = rel(&p, &r, "sg", 2);
        assert!(sg.contains(&ituple![1, 1]));
        // 2 and 3 are the same generation via up;sg;down? down only has
        // (1,1): sg(2,1)? up(2,1),sg(1,1),down(1,1) => sg(2,1).
        assert!(sg.contains(&ituple![2, 1]));
        assert!(!sg.contains(&ituple![4, 2]));
    }

    #[test]
    fn facts_for_derived_predicates_are_seeded() {
        let (p, db) = load(
            "t(X,Y) :- t(X,Z), t(Z,Y).\n\
             t(X,Y) :- seed(X,Y).\n\
             t(7,8). seed(8,9).",
        );
        let r = seminaive_eval(&p, &db).unwrap();
        let t = rel(&p, &r, "t", 2);
        assert!(t.contains(&ituple![7, 8]));
        assert!(t.contains(&ituple![8, 9]));
        assert!(t.contains(&ituple![7, 9]));
    }

    #[test]
    fn inject_drives_external_tuples() {
        let (p, db) = load("t(X,Y) :- e(X,Z), t(Z,Y).\nt(X,Y) :- s(X,Y).\ne(1,2). s(2,3).");
        let t_id = (p.interner.get("t").unwrap(), 2);
        let mut engine = FixpointEngine::new(&p, Arc::new(db), &[]).unwrap();
        engine.run_to_fixpoint().unwrap();
        assert_eq!(engine.relation(t_id).unwrap().len(), 2); // (2,3), (1,3)
        // Inject t(2,9): expect (1,9) to be derived when we continue.
        engine.inject(t_id, vec![ituple![2, 9]]).unwrap();
        assert!(!engine.quiescent());
        loop {
            if engine.advance() == 0 {
                break;
            }
            engine.process_round();
        }
        assert!(engine.relation(t_id).unwrap().contains(&ituple![1, 9]));
        assert!(engine.quiescent());
    }

    #[test]
    fn inject_rejects_unknown_or_wrong_arity() {
        let (p, db) = load("t(X) :- s(X).");
        let mut engine = FixpointEngine::new(&p, Arc::new(db), &[]).unwrap();
        let t_id = (p.interner.get("t").unwrap(), 1);
        let bogus = (p.interner.intern("zz"), 1);
        assert!(engine.inject(bogus, vec![ituple![1]]).is_err());
        assert!(engine.inject(t_id, vec![ituple![1, 2]]).is_err());
    }

    #[test]
    fn extra_idb_predicates_accept_injection() {
        // channel predicate `in_ch` feeds t but has no defining rule.
        let (p, db) = load("t(X,Y) :- in_ch(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(0,1).");
        let in_ch = (p.interner.get("in_ch").unwrap(), 2);
        let t_id = (p.interner.get("t").unwrap(), 2);
        let mut engine = FixpointEngine::new(&p, Arc::new(db), &[in_ch]).unwrap();
        engine.bootstrap().unwrap();
        engine.inject(in_ch, vec![ituple![1, 5]]).unwrap();
        loop {
            if engine.advance() == 0 {
                break;
            }
            engine.process_round();
        }
        let t = engine.relation(t_id).unwrap();
        assert!(t.contains(&ituple![1, 5]));
        assert!(t.contains(&ituple![0, 5]));
    }

    #[test]
    fn delta_tuples_expose_last_round() {
        let (p, db) = load("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(1,2). e(2,3).");
        let t_id = (p.interner.get("t").unwrap(), 2);
        let mut engine = FixpointEngine::new(&p, Arc::new(db), &[]).unwrap();
        engine.bootstrap().unwrap();
        assert!(engine.advance() > 0);
        let first_delta = engine.delta_tuples(t_id);
        assert_eq!(first_delta.len(), 2); // e copied
        engine.process_round();
        assert_eq!(engine.advance(), 1); // t(1,3)
        assert_eq!(engine.delta_tuples(t_id), vec![ituple![1, 3]]);
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let (p, db) = load("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).");
        let r = seminaive_eval(&p, &db).unwrap();
        assert_eq!(rel(&p, &r, "t", 2).len(), 0);
        assert!(r.stats.firings == 0);
    }

    #[test]
    fn naive_and_seminaive_agree_on_same_generation() {
        let (p, db) = load(
            "sg(X,Y) :- flat(X,Y).\n\
             sg(X,Y) :- up(X,U), sg(U,V), down(V,Y).\n\
             up(2,1). up(3,1). up(4,2). up(5,3).\n\
             flat(1,1). flat(2,3).\n\
             down(1,2). down(1,3). down(2,4). down(3,5).",
        );
        let a = seminaive_eval(&p, &db).unwrap();
        let b = naive_eval(&p, &db).unwrap();
        assert!(rel(&p, &a, "sg", 2).set_eq(&rel(&p, &b, "sg", 2)));
    }

    #[test]
    fn plan_options_are_semantics_preserving() {
        let (p, db) = load(
            "anc(X,Y) :- par(X,Y).\n\
             anc(X,Y) :- par(X,Z), anc(Z,Y).\n\
             par(1,2). par(2,3). par(3,4). par(2,5). par(5,2).",
        );
        let reference = seminaive_eval(&p, &db).unwrap();
        let anc = (p.interner.get("anc").unwrap(), 2);
        for delta_leading in [true, false] {
            for eager_constraints in [true, false] {
                let opts = crate::plan::PlanOptions {
                    delta_leading,
                    eager_constraints,
                };
                let r = seminaive_eval_with(&p, &db, opts).unwrap();
                assert!(
                    r.relation(anc).set_eq(&reference.relation(anc)),
                    "options {opts:?} changed the least model"
                );
                assert_eq!(
                    r.stats.firings, reference.stats.firings,
                    "options {opts:?} changed the firing count"
                );
            }
        }
    }

    #[test]
    fn preseed_resumes_without_refiring() {
        // Fixpoint once; preseed a second engine with the result; it
        // must be quiescent immediately (no refires, no fresh tuples).
        let (p, db) = load("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(1,2). e(2,3).");
        let t_id = (p.interner.get("t").unwrap(), 2);
        let db = Arc::new(db);
        let mut first = FixpointEngine::new(&p, Arc::clone(&db), &[]).unwrap();
        first.run_to_fixpoint().unwrap();
        let state = first.take_relation(t_id).unwrap();
        let len = state.len();

        let mut resumed = FixpointEngine::new(&p, Arc::clone(&db), &[]).unwrap();
        resumed.preseed(t_id, state).unwrap();
        let fresh = resumed.run_to_fixpoint().unwrap();
        assert_eq!(fresh, 0, "preseeded state is already the fixpoint");
        assert_eq!(resumed.relation(t_id).unwrap().len(), len);
        assert!(resumed.rows_from(t_id, len).is_empty(), "nothing above watermark");

        // Injecting a new edge-reachable tuple continues from the state.
        resumed.inject(t_id, vec![ituple![3, 9]]).unwrap();
        loop {
            if resumed.advance() == 0 {
                break;
            }
            resumed.process_round();
        }
        let t = resumed.relation(t_id).unwrap();
        assert!(t.contains(&ituple![1, 9]) && t.contains(&ituple![2, 9]));
        // Exactly the genuinely new tuples sit above the resume watermark.
        assert_eq!(resumed.rows_from(t_id, len).len(), 3);
    }

    #[test]
    fn preseed_accepts_tombstoned_state_and_reships_reinserts() {
        let (p, db) = load("t(X,Y) :- e(X,Y).\nt(X,Y) :- e(X,Z), t(Z,Y).\ne(1,2).");
        let t_id = (p.interner.get("t").unwrap(), 2);
        let db = Arc::new(db);
        let mut first = FixpointEngine::new(&p, Arc::clone(&db), &[]).unwrap();
        first.run_to_fixpoint().unwrap();
        let mut state = first.take_relation(t_id).unwrap();
        assert!(state.delete(&ituple![1, 2]));
        let watermark = state.len();

        let mut resumed = FixpointEngine::new(&p, Arc::clone(&db), &[]).unwrap();
        resumed.preseed(t_id, state).unwrap();
        resumed.inject(t_id, vec![ituple![1, 2]]).unwrap();
        loop {
            if resumed.advance() == 0 {
                break;
            }
            resumed.process_round();
        }
        // The re-inserted tuple landed in a fresh arena row above the
        // watermark — a shipping loop reading `rows_from` re-ships it.
        assert_eq!(resumed.rows_from(t_id, watermark), &[ituple![1, 2]]);
    }

    #[test]
    fn preseed_rejects_bad_calls() {
        let (p, db) = load("t(X) :- s(X).\ns(1).");
        let t_id = (p.interner.get("t").unwrap(), 1);
        let mut engine = FixpointEngine::new(&p, Arc::new(db), &[]).unwrap();
        assert!(engine.preseed((p.interner.intern("zz"), 1), Relation::new(1)).is_err());
        assert!(engine.preseed(t_id, Relation::new(2)).is_err());
        engine.bootstrap().unwrap();
        assert!(engine.preseed(t_id, Relation::new(1)).is_err());
    }

    #[test]
    fn fire_once_emits_one_step_consequences() {
        let (p, db) = load(
            "t(X,Y) :- e(X,Y).\n\
             t(X,Y) :- e(X,Z), t(Z,Y).\n\
             e(1,2). e(2,3).",
        );
        // Against the raw EDB (no t yet), only the copy rule produces.
        let t_id = (p.interner.get("t").unwrap(), 2);
        let out = fire_once(&p, &db).unwrap();
        let t_out: &Vec<Tuple> = &out.iter().find(|(id, _)| *id == t_id).unwrap().1;
        let mut got = t_out.clone();
        got.sort();
        assert_eq!(got, vec![ituple![1, 2], ituple![2, 3]]);

        // With t materialized in the database, the recursive rule joins
        // against it (every atom reads the database, fixpoint-free).
        let mut db2 = db.clone();
        let full = seminaive_eval(&p, &db).unwrap().relation(t_id);
        db2.put_relation(t_id, full).unwrap();
        let out2 = fire_once(&p, &db2).unwrap();
        let n: usize = out2.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(n, 2 + 1); // copy rule: 2 firings; recursive: e(1,2),t(2,3)
    }

    #[test]
    fn snapshot_includes_all_idb() {
        let (p, db) = load("a(X) :- e(X).\nb(X) :- a(X).\ne(1).");
        let mut engine = FixpointEngine::new(&p, Arc::new(db), &[]).unwrap();
        engine.run_to_fixpoint().unwrap();
        let snap = engine.snapshot();
        assert_eq!(snap.len(), 2);
        let interner: &Interner = &p.interner;
        let a_id = (interner.get("a").unwrap(), 1);
        let b_id = (interner.get("b").unwrap(), 1);
        assert_eq!(snap[&a_id].len(), 1);
        assert_eq!(snap[&b_id].len(), 1);
    }
}
