//! Columnar wire format for tuple batches.
//!
//! The paper's abstract channels carry tuples; a real message-passing
//! deployment serializes them. Workers encode every cross-processor batch
//! through this codec so the measured communication cost can be reported
//! in *bytes on the wire*, not just tuple counts — the unit a §8 cost
//! model for a cluster actually charges.
//!
//! The layout is columnar: all values of one tuple position are stored
//! together, so a monotypic column pays one tag byte instead of one per
//! value and integer values compress into LEB128 varints (small ids — the
//! common case for graph workloads — take 1–2 bytes instead of 9).
//!
//! ```text
//! batch     := arity:uv | count:uv | column × arity   (columns only when count > 0)
//! column    := tag:u8 | body
//!   tag 0   Int:      count × sv                  — monotypic Int
//!   tag 1   Sym:      count × uv                  — monotypic Sym
//!   tag 2   Mixed:    count × vtag:u8, then the values in order
//!                     (vtag 0 → sv Int, vtag 1 → uv Sym)
//!   tag 3   IntDelta: first:sv | (count−1) × uv   — nondecreasing Int,
//!                     successive differences
//! uv = unsigned LEB128 varint; sv = zigzag LEB128 varint
//! ```
//!
//! The header does *not* name the destination inbox: payloads are
//! destination-independent so one encoded batch can be multicast to every
//! peer behind an `Arc` (see [`crate::message::Message::Batch`], which
//! carries the inbox out of band).
//!
//! Symbol ids are stable across workers because every processor program
//! shares one interner; a multi-machine deployment would ship the symbol
//! table once up front the same way.
//!
//! Malformed input never panics: every decode failure is a typed
//! [`Error::Runtime`] naming the corruption, so a fault-injected or
//! truncated delivery surfaces as a worker error the coordinator reports.

use gst_common::{Error, Result, SymbolId, Tuple, Value};

use crate::message::Payload;

const COL_INT: u8 = 0;
const COL_SYM: u8 = 1;
const COL_MIXED: u8 = 2;
const COL_INT_DELTA: u8 = 3;
const VTAG_INT: u8 = 0;
const VTAG_SYM: u8 = 1;

/// Sanity bound on header fields: no real scheme ships arity-65k tuples
/// or arity-0 batches with more than 65k units. Shared with the stream
/// framing layer ([`crate::wire`]), which applies the same bound to the
/// relation arities it decodes.
pub(crate) const IMPLAUSIBLE: usize = 1 << 16;

pub(crate) fn put_uv(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(crate) fn put_sv(buf: &mut Vec<u8>, n: i64) {
    put_uv(buf, zigzag(n));
}

/// Serialize a batch of `arity`-ary tuples.
///
/// Two batches with the same tuples in the same order encode to the same
/// bytes regardless of destination — the basis of single-encode multicast.
///
/// # Errors
/// Rejects tuples whose arity differs from `arity` — a misconfigured
/// channel (caught at the sender, where the diagnostic is actionable).
pub fn encode_batch(arity: usize, tuples: &[Tuple]) -> Result<Payload> {
    for t in tuples {
        if t.arity() != arity {
            return Err(Error::Runtime(format!(
                "channel misconfigured: tuple arity {} does not match channel arity {arity}",
                t.arity()
            )));
        }
    }
    let count = tuples.len();
    // Worst case per value: 1 mixed tag + 10 varint bytes.
    let mut buf = Vec::with_capacity(4 + count * arity * 3);
    put_uv(&mut buf, arity as u64);
    put_uv(&mut buf, count as u64);
    if count == 0 {
        return Ok(Payload::new(buf));
    }
    for c in 0..arity {
        encode_column(&mut buf, tuples, c);
    }
    Ok(Payload::new(buf))
}

fn encode_column(buf: &mut Vec<u8>, tuples: &[Tuple], c: usize) {
    let all_int = tuples.iter().all(|t| matches!(t.get(c), Value::Int(_)));
    if all_int {
        let ints = tuples.iter().map(|t| match t.get(c) {
            Value::Int(n) => n,
            Value::Sym(_) => unreachable!("column checked monotypic Int"),
        });
        let nondecreasing = tuples.len() >= 2
            && ints
                .clone()
                .zip(ints.clone().skip(1))
                .all(|(a, b)| a <= b);
        if nondecreasing {
            buf.push(COL_INT_DELTA);
            let mut prev = None;
            for n in ints {
                match prev {
                    None => put_sv(buf, n),
                    // Nondecreasing ⇒ the true difference fits in u64.
                    Some(p) => put_uv(buf, n.wrapping_sub(p) as u64),
                }
                prev = Some(n);
            }
        } else {
            buf.push(COL_INT);
            for n in ints {
                put_sv(buf, n);
            }
        }
        return;
    }
    let all_sym = tuples.iter().all(|t| matches!(t.get(c), Value::Sym(_)));
    if all_sym {
        buf.push(COL_SYM);
        for t in tuples {
            match t.get(c) {
                Value::Sym(s) => put_uv(buf, s.0 as u64),
                Value::Int(_) => unreachable!("column checked monotypic Sym"),
            }
        }
        return;
    }
    buf.push(COL_MIXED);
    for t in tuples {
        buf.push(match t.get(c) {
            Value::Int(_) => VTAG_INT,
            Value::Sym(_) => VTAG_SYM,
        });
    }
    for t in tuples {
        match t.get(c) {
            Value::Int(n) => put_sv(buf, n),
            Value::Sym(s) => put_uv(buf, s.0 as u64),
        }
    }
}

/// A bounds-checked varint reader over a byte slice. Shared with the
/// stream-framing layer ([`crate::wire`]), which extends the same
/// never-panic discipline to whole frames.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn get_u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    /// A length-prefixed byte run (`len:uv | bytes`), borrowed from the
    /// underlying slice; `None` on truncation.
    pub(crate) fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.get_uv()? as usize;
        if self.remaining() < len {
            return None;
        }
        let slice = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Some(slice)
    }

    /// LEB128; `None` on truncation or an encoding longer than 10 bytes /
    /// overflowing 64 bits (an adversarial stream must terminate).
    pub(crate) fn get_uv(&mut self) -> Option<u64> {
        let mut value = 0u64;
        for shift in 0..10 {
            let byte = self.get_u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 9 && bits > 1 {
                return None; // would overflow the 64th bit
            }
            value |= bits << (shift * 7);
            if byte & 0x80 == 0 {
                return Some(value);
            }
        }
        None
    }

    pub(crate) fn get_sv(&mut self) -> Option<i64> {
        self.get_uv().map(unzigzag)
    }
}

/// A length-prefixed byte run for [`Cursor::get_bytes`].
pub(crate) fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_uv(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

/// The batch header `(arity, count)`, read without decoding the body —
/// lets a receiver account tuples (termination detection, stats, traces)
/// before the deferred decode-and-inject pass runs.
///
/// # Errors
/// Returns [`Error::Runtime`] if the header is truncated or implausible.
pub fn peek_batch(bytes: &[u8]) -> Result<(usize, usize)> {
    let mut cur = Cursor::new(bytes);
    let (arity, count) = read_header(&mut cur)?;
    Ok((arity, count))
}

fn corrupt(what: &str) -> Error {
    Error::Runtime(format!("corrupt tuple batch: {what}"))
}

fn read_header(cur: &mut Cursor<'_>) -> Result<(usize, usize)> {
    let arity = cur
        .get_uv()
        .ok_or_else(|| corrupt("truncated header (arity)"))? as usize;
    if arity > IMPLAUSIBLE {
        return Err(corrupt("implausible arity"));
    }
    let count = cur
        .get_uv()
        .ok_or_else(|| corrupt("truncated header (count)"))? as usize;
    Ok((arity, count))
}

/// Deserialize a batch, appending its tuples to `out` — the zero-copy
/// receive path: the transport hands the destination's pending buffer
/// directly, so decoded tuples land where the engine will drain them
/// without an intermediate `Vec`. Returns the tuple count.
///
/// # Errors
/// Returns [`Error::Runtime`] (never panics) for truncated or overlong
/// varints, unknown column tags, implausible counts, or trailing bytes.
/// On error `out` is untouched (columns decode into scratch first).
pub fn decode_batch_into(bytes: &[u8], out: &mut Vec<Tuple>) -> Result<usize> {
    let mut cur = Cursor::new(bytes);
    let (arity, count) = read_header(&mut cur)?;
    if count == 0 {
        if cur.remaining() > 0 {
            return Err(corrupt("trailing bytes"));
        }
        return Ok(0);
    }
    if arity == 0 {
        if count > IMPLAUSIBLE {
            return Err(corrupt("implausible arity-0 tuple count"));
        }
        if cur.remaining() > 0 {
            return Err(corrupt("trailing bytes"));
        }
        out.reserve(count);
        for _ in 0..count {
            out.push(Tuple::unit());
        }
        return Ok(count);
    }
    // Every column costs at least one tag byte plus one byte per value,
    // so a lying count cannot force a huge allocation: it is rejected
    // before any buffer is sized from it.
    let min_needed = count
        .checked_add(1)
        .and_then(|per_col| per_col.checked_mul(arity))
        .ok_or_else(|| corrupt("implausible tuple count"))?;
    if cur.remaining() < min_needed {
        return Err(corrupt("tuple count implausible for payload size"));
    }
    // Column-major scratch: column c occupies flat[c*count .. (c+1)*count].
    let mut flat: Vec<Value> = Vec::with_capacity(arity * count);
    for _ in 0..arity {
        decode_column(&mut cur, count, &mut flat)?;
    }
    if cur.remaining() > 0 {
        return Err(corrupt("trailing bytes"));
    }
    out.reserve(count);
    let mut row: Vec<Value> = Vec::with_capacity(arity);
    for r in 0..count {
        row.clear();
        for c in 0..arity {
            row.push(flat[c * count + r]);
        }
        out.push(Tuple::new(&row));
    }
    Ok(count)
}

fn decode_column(cur: &mut Cursor<'_>, count: usize, flat: &mut Vec<Value>) -> Result<()> {
    match cur.get_u8() {
        None => Err(corrupt("truncated column tag")),
        Some(COL_INT) => {
            for _ in 0..count {
                let n = cur.get_sv().ok_or_else(|| corrupt("truncated Int column"))?;
                flat.push(Value::Int(n));
            }
            Ok(())
        }
        Some(COL_SYM) => {
            for _ in 0..count {
                let v = cur.get_uv().ok_or_else(|| corrupt("truncated Sym column"))?;
                let v = u32::try_from(v).map_err(|_| corrupt("symbol id overflows u32"))?;
                flat.push(Value::Sym(SymbolId(v)));
            }
            Ok(())
        }
        Some(COL_INT_DELTA) => {
            let first = cur
                .get_sv()
                .ok_or_else(|| corrupt("truncated delta column"))?;
            flat.push(Value::Int(first));
            let mut prev = first;
            for _ in 0..count - 1 {
                let d = cur
                    .get_uv()
                    .ok_or_else(|| corrupt("truncated delta column"))?;
                prev = prev.wrapping_add(d as i64);
                flat.push(Value::Int(prev));
            }
            Ok(())
        }
        Some(COL_MIXED) => {
            let start = cur.pos;
            if cur.remaining() < count {
                return Err(corrupt("truncated tag run"));
            }
            cur.pos += count;
            for k in 0..count {
                let value = match cur.bytes[start + k] {
                    VTAG_INT => Value::Int(
                        cur.get_sv()
                            .ok_or_else(|| corrupt("truncated mixed Int value"))?,
                    ),
                    VTAG_SYM => {
                        let v = cur
                            .get_uv()
                            .ok_or_else(|| corrupt("truncated mixed Sym value"))?;
                        let v =
                            u32::try_from(v).map_err(|_| corrupt("symbol id overflows u32"))?;
                        Value::Sym(SymbolId(v))
                    }
                    tag => return Err(corrupt(&format!("unknown value tag {tag}"))),
                };
                flat.push(value);
            }
            Ok(())
        }
        Some(tag) => Err(corrupt(&format!("unknown column tag {tag}"))),
    }
}

/// Walk a batch payload end to end without materializing a single tuple:
/// header, every column tag, every varint, and the no-trailing-bytes
/// invariant — exactly the checks [`decode_batch_into`] performs, minus
/// the allocation. Returns `(arity, count)`.
///
/// This is the relay's admission check: a frame can be structurally
/// complete at the framing layer yet carry a corrupted body (a fault that
/// overwrites a stream's tail cuts exactly this shape), and corruption
/// must be charged to the *sender's* link, not delivered to a receiver
/// whose deferred decode would treat it as its own fatal error.
///
/// # Errors
/// Returns [`Error::Runtime`] (never panics) on any malformed input.
pub fn validate_batch(bytes: &[u8]) -> Result<(usize, usize)> {
    let mut cur = Cursor::new(bytes);
    let (arity, count) = read_header(&mut cur)?;
    if count == 0 || arity == 0 {
        if arity == 0 && count > IMPLAUSIBLE {
            return Err(corrupt("implausible arity-0 tuple count"));
        }
        if cur.remaining() > 0 {
            return Err(corrupt("trailing bytes"));
        }
        return Ok((arity, count));
    }
    let min_needed = count
        .checked_add(1)
        .and_then(|per_col| per_col.checked_mul(arity))
        .ok_or_else(|| corrupt("implausible tuple count"))?;
    if cur.remaining() < min_needed {
        return Err(corrupt("tuple count implausible for payload size"));
    }
    for _ in 0..arity {
        validate_column(&mut cur, count)?;
    }
    if cur.remaining() > 0 {
        return Err(corrupt("trailing bytes"));
    }
    Ok((arity, count))
}

fn validate_column(cur: &mut Cursor<'_>, count: usize) -> Result<()> {
    match cur.get_u8() {
        None => Err(corrupt("truncated column tag")),
        Some(COL_INT) => {
            for _ in 0..count {
                cur.get_sv().ok_or_else(|| corrupt("truncated Int column"))?;
            }
            Ok(())
        }
        Some(COL_SYM) => {
            for _ in 0..count {
                let v = cur.get_uv().ok_or_else(|| corrupt("truncated Sym column"))?;
                u32::try_from(v).map_err(|_| corrupt("symbol id overflows u32"))?;
            }
            Ok(())
        }
        Some(COL_INT_DELTA) => {
            cur.get_sv().ok_or_else(|| corrupt("truncated delta column"))?;
            for _ in 0..count - 1 {
                cur.get_uv().ok_or_else(|| corrupt("truncated delta column"))?;
            }
            Ok(())
        }
        Some(COL_MIXED) => {
            let start = cur.pos;
            if cur.remaining() < count {
                return Err(corrupt("truncated tag run"));
            }
            cur.pos += count;
            for k in 0..count {
                match cur.bytes[start + k] {
                    VTAG_INT => {
                        cur.get_sv()
                            .ok_or_else(|| corrupt("truncated mixed Int value"))?;
                    }
                    VTAG_SYM => {
                        let v = cur
                            .get_uv()
                            .ok_or_else(|| corrupt("truncated mixed Sym value"))?;
                        u32::try_from(v).map_err(|_| corrupt("symbol id overflows u32"))?;
                    }
                    tag => return Err(corrupt(&format!("unknown value tag {tag}"))),
                }
            }
            Ok(())
        }
        Some(tag) => Err(corrupt(&format!("unknown column tag {tag}"))),
    }
}

/// Deserialize a batch; the inverse of [`encode_batch`].
///
/// # Errors
/// Returns [`Error::Runtime`] (never panics) on any malformed input.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<Tuple>> {
    let mut tuples = Vec::new();
    decode_batch_into(bytes, &mut tuples)?;
    Ok(tuples)
}

/// The bytes a naive row-oriented codec (1 tag + 8 payload per value plus
/// a 10-byte header — the previous wire format) would have spent on this
/// batch; the reference point of the journal's compression ratio.
pub fn row_format_bytes(arity: usize, count: usize) -> u64 {
    10 + (count as u64) * (arity as u64) * 9
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::{ituple, Interner, SmallRng};

    #[test]
    fn round_trips_int_tuples() {
        let tuples = vec![ituple![1, -2], ituple![i64::MAX, i64::MIN]];
        let bytes = encode_batch(2, &tuples).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), tuples);
    }

    #[test]
    fn round_trips_symbols_and_mixed() {
        let interner = Interner::new();
        let a = interner.intern("alice");
        let tuples = vec![
            Tuple::new(&[Value::Sym(a), Value::Int(7)]),
            Tuple::new(&[Value::Int(0), Value::Sym(SymbolId(0))]),
        ];
        let bytes = encode_batch(2, &tuples).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), tuples);
    }

    #[test]
    fn empty_batch_and_zero_arity() {
        let bytes = encode_batch(0, &[Tuple::unit()]).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), vec![Tuple::unit()]);

        let bytes = encode_batch(3, &[]).unwrap();
        assert!(decode_batch(&bytes).unwrap().is_empty());
        assert_eq!(peek_batch(&bytes).unwrap(), (3, 0));
    }

    #[test]
    fn small_ints_pack_into_single_bytes() {
        // 10 arity-2 tuples of small values: 2 header bytes + 2 columns ×
        // (1 tag + 10 one-byte varints) ≪ the 190 bytes of the old row
        // format. The first column is constant hence delta-encoded.
        let tuples: Vec<Tuple> = (0..10).map(|k| ituple![5, k - 3]).collect();
        let bytes = encode_batch(2, &tuples).unwrap();
        assert!(
            bytes.len() <= 2 + 2 * (1 + 10),
            "columnar varints should stay tiny, got {}",
            bytes.len()
        );
        assert!((bytes.len() as u64) < row_format_bytes(2, 10) / 4);
        assert_eq!(decode_batch(&bytes).unwrap(), tuples);
    }

    #[test]
    fn sorted_columns_delta_encode() {
        // A strictly increasing column of large values: deltas are 1, so
        // the column body is one varint per value after the first.
        let tuples: Vec<Tuple> = (0..100).map(|k| ituple![1_000_000 + k]).collect();
        let bytes = encode_batch(1, &tuples).unwrap();
        // header ≤ 3 + tag 1 + first ≤ 4 + 99 one-byte deltas.
        assert!(bytes.len() <= 3 + 1 + 4 + 99, "got {}", bytes.len());
        assert_eq!(decode_batch(&bytes).unwrap(), tuples);
    }

    #[test]
    fn delta_encoding_survives_extreme_span() {
        let tuples = vec![ituple![i64::MIN], ituple![-1], ituple![0], ituple![i64::MAX]];
        let bytes = encode_batch(1, &tuples).unwrap();
        assert_eq!(decode_batch(&bytes).unwrap(), tuples);
    }

    #[test]
    fn peek_matches_decode() {
        let tuples = vec![ituple![9, 9], ituple![8, 7]];
        let bytes = encode_batch(2, &tuples).unwrap();
        assert_eq!(peek_batch(&bytes).unwrap(), (2, 2));
        let mut out = Vec::new();
        assert_eq!(decode_batch_into(&bytes, &mut out).unwrap(), 2);
        assert_eq!(out, tuples);
    }

    #[test]
    fn encoding_is_destination_independent_and_deterministic() {
        let tuples = vec![ituple![3, 1], ituple![4, 1], ituple![5, 9]];
        let a = encode_batch(2, &tuples).unwrap();
        let b = encode_batch(2, &tuples).unwrap();
        assert_eq!(*a, *b, "same tuples, same bytes — multicast-safe");
    }

    #[test]
    fn arity_mismatch_rejected_at_sender() {
        let err = encode_batch(2, &[ituple![1]]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)), "typed error, not a panic");
        assert!(err.to_string().contains("arity"));
    }

    /// Every malformed-input class yields a typed `Error::Runtime` naming
    /// the corruption — never a panic, never a silent partial decode.
    #[test]
    fn corrupt_input_is_rejected_with_typed_errors() {
        // Empty input.
        let err = decode_batch(&[]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(err.to_string().contains("truncated header"));

        // Arity varint present, count missing.
        let err = decode_batch(&[2]).unwrap_err();
        assert!(err.to_string().contains("truncated header (count)"));

        // Unknown column tag.
        let good = encode_batch(1, &[ituple![5]]).unwrap();
        let mut bad = good.to_vec();
        bad[2] = 9;
        let err = decode_batch(&bad).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));
        assert!(err.to_string().contains("unknown column tag 9"));

        // Count promises tuples the payload does not contain.
        let empty = encode_batch(1, &[]).unwrap();
        let mut lying = empty.to_vec();
        lying[1] = 2; // count 0 → 2, no column bytes follow
        let err = decode_batch(&lying).unwrap_err();
        assert!(err.to_string().contains("implausible"));

        // Trailing garbage.
        let mut extended = good.to_vec();
        extended.push(0);
        let err = decode_batch(&extended).unwrap_err();
        assert!(err.to_string().contains("trailing bytes"));

        // A varint that never terminates (10 continuation bytes).
        let err = decode_batch(&[0x80; 12]).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));

        // Mixed column with a bad per-value tag.
        let interner = Interner::new();
        let s = interner.intern("x");
        let mixed =
            encode_batch(1, &[ituple![1], Tuple::new(&[Value::Sym(s)])]).unwrap();
        let mut bad_vtag = mixed.to_vec();
        bad_vtag[3] = 7; // first entry of the tag run
        let err = decode_batch(&bad_vtag).unwrap_err();
        assert!(err.to_string().contains("unknown value tag 7"));
    }

    /// An adversarial count field must not cause a huge preallocation or
    /// a panic — just a typed error.
    #[test]
    fn huge_count_is_rejected_cheaply() {
        let mut lying = Vec::new();
        put_uv(&mut lying, 2); // arity
        put_uv(&mut lying, u32::MAX as u64); // count
        let err = decode_batch(&lying).unwrap_err();
        assert!(matches!(err, Error::Runtime(_)));

        // Arity-0 counts are bounded explicitly.
        let mut lying = Vec::new();
        put_uv(&mut lying, 0);
        put_uv(&mut lying, u64::MAX);
        let err = decode_batch(&lying).unwrap_err();
        assert!(err.to_string().contains("implausible"));
    }

    /// On decode failure the output buffer is untouched (columns decode
    /// into scratch before any tuple is assembled).
    #[test]
    fn failed_decode_leaves_output_untouched() {
        let good = encode_batch(2, &[ituple![1, 2], ituple![3, 4]]).unwrap();
        let mut out = vec![ituple![9, 9]];
        assert!(decode_batch_into(&good[..good.len() - 1], &mut out).is_err());
        assert_eq!(out, vec![ituple![9, 9]]);
    }

    fn random_tuples(rng: &mut SmallRng, arity: usize, count: usize) -> Vec<Tuple> {
        (0..count)
            .map(|_| {
                let values: Vec<Value> = (0..arity)
                    .map(|_| match rng.gen_below(6) {
                        0 => Value::Int(i64::MIN),
                        1 => Value::Int(i64::MAX),
                        2 => Value::Sym(SymbolId(rng.gen_below(u32::MAX as u64 + 1) as u32)),
                        3 => Value::Int(rng.gen_range_i64(-100..100)),
                        _ => Value::Int(rng.gen_range_i64(i64::MIN / 2..i64::MAX / 2)),
                    })
                    .collect();
                Tuple::new(&values)
            })
            .collect()
    }

    /// Seeded roundtrip fuzz: random batches across arities 0–5, empty
    /// through a few hundred tuples, extreme ints and mixed Int/Sym
    /// columns all survive encode → decode bit-exactly.
    #[test]
    fn fuzz_roundtrip_random_batches() {
        let mut rng = SmallRng::seed_from_u64(0xC0DEC);
        for case in 0..400 {
            let arity = rng.gen_below(6) as usize;
            let count = match rng.gen_below(4) {
                0 => 0,
                1 => rng.gen_below(4) as usize,
                2 => rng.gen_below(40) as usize,
                _ => rng.gen_below(300) as usize,
            };
            let tuples = random_tuples(&mut rng, arity, count);
            let bytes = encode_batch(arity, &tuples).unwrap();
            let decoded = decode_batch(&bytes).unwrap_or_else(|e| {
                panic!("case {case} (arity {arity}, count {count}) failed: {e}")
            });
            assert_eq!(decoded, tuples, "case {case}");
            assert_eq!(peek_batch(&bytes).unwrap(), (arity, count), "case {case}");
        }
    }

    /// Truncation sweep: *every* strict prefix of a valid encoding decodes
    /// to a typed `Error::Runtime` — never a panic, never a silent accept.
    #[test]
    fn every_truncation_prefix_is_a_typed_error() {
        let mut rng = SmallRng::seed_from_u64(0x7A71C);
        let mut encodings: Vec<Vec<u8>> = vec![
            encode_batch(0, &[Tuple::unit(), Tuple::unit()]).unwrap().to_vec(),
            encode_batch(3, &[]).unwrap().to_vec(),
            encode_batch(2, &(0..50).map(|k| ituple![k, k * k]).collect::<Vec<_>>())
                .unwrap()
                .to_vec(),
        ];
        for _ in 0..20 {
            let arity = 1 + rng.gen_below(4) as usize;
            let count = 1 + rng.gen_below(30) as usize;
            let tuples = random_tuples(&mut rng, arity, count);
            encodings.push(encode_batch(arity, &tuples).unwrap().to_vec());
        }
        for (i, full) in encodings.iter().enumerate() {
            for len in 0..full.len() {
                let result = std::panic::catch_unwind(|| decode_batch(&full[..len]));
                let outcome = result.unwrap_or_else(|_| {
                    panic!("encoding {i} truncated to {len}/{} panicked", full.len())
                });
                let err = match outcome {
                    Ok(_) => panic!(
                        "encoding {i} truncated to {len}/{} decoded successfully",
                        full.len()
                    ),
                    Err(e) => e,
                };
                assert!(
                    matches!(err, Error::Runtime(_)),
                    "encoding {i} at {len}: wrong error type {err:?}"
                );
            }
        }
    }
}
