//! Architecture-aware scheme selection (paper §8).
//!
//! "The particular scheme used in a compiler may be dependent on the
//! underlying characteristics of the architecture e.g., computation cost
//! as opposed to communication cost." This module is that compiler
//! decision: given measured (or estimated) firing and communication
//! volumes per candidate scheme and a machine's cost ratio, pick the
//! cheapest execution.
//!
//! It also holds the compile-time *skew sampler* behind the skew-aware
//! scheme (ROADMAP item 4): a pass over an EDB relation's key column(s)
//! that measures per-key frequency and flags the keys hot enough to melt
//! one worker under a uniform hash partition.

use std::collections::BTreeMap;
use std::sync::Arc;

use gst_common::{Error, Result, Value};
use gst_frontend::magic::MagicRewrite;
use gst_frontend::Variable;
use gst_storage::Relation;

use crate::discriminator::{DiscriminatorRef, HashMod};
use crate::schemes::common::validate_sequence;
use crate::schemes::general::RuleChoice;

/// Knobs of the hot-key detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewPolicy {
    /// A key is *hot* when its frequency exceeds `hot_factor` fair shares,
    /// i.e. `count · n > hot_factor · total`. At the default 1.0 a key
    /// whose own weight exceeds one worker's uniform share (`total / n`)
    /// gets split: such a key caps the best achievable balance all by
    /// itself, which is exactly when §6's `R_i` replication pays off.
    pub hot_factor: f64,
    /// Processors each hot key splits across; `0` means all `n`.
    pub split_k: usize,
}

impl Default for SkewPolicy {
    fn default() -> Self {
        SkewPolicy {
            hot_factor: 1.0,
            split_k: 0,
        }
    }
}

/// Frequency census of an EDB relation's key column(s).
#[derive(Debug, Clone)]
pub struct KeyFrequencyProfile {
    /// Number of tuples sampled.
    pub total: u64,
    /// Distinct keys with their frequencies, most frequent first (ties in
    /// key order, so the census is deterministic).
    pub counts: Vec<(Vec<Value>, u64)>,
}

impl KeyFrequencyProfile {
    /// The keys hot enough to split under `policy` when partitioning
    /// across `n` processors, most frequent first.
    ///
    /// The rule *peels* the head of the distribution: a key is hot when it
    /// exceeds `hot_factor` fair shares of the mass **remaining after the
    /// hotter keys above it were split away** — a split key spreads
    /// (near-)uniformly, so it stops constraining the achievable maximum,
    /// and the next key down is judged against the load that is actually
    /// left to balance. Peeling stops at the first key that fits, since
    /// every later (smaller) key fits the same remainder a fortiori.
    pub fn hot_keys(&self, n: usize, policy: &SkewPolicy) -> Vec<(Vec<Value>, u64)> {
        if n <= 1 || self.total == 0 {
            return Vec::new();
        }
        let mut hot = Vec::new();
        let mut remaining = self.total;
        for (key, count) in &self.counts {
            if (count * n as u64) as f64 <= policy.hot_factor * remaining as f64 {
                break;
            }
            hot.push((key.clone(), *count));
            remaining -= count;
        }
        hot
    }
}

/// Census the frequencies of `columns` projections over `rel` — the
/// compile-time sampling pass of the skew-aware discriminator. The cost is
/// one scan of the relation; for the workloads this system targets the
/// EDB is already resident, so "sampling" reads every tuple.
pub fn sample_key_frequencies(rel: &Relation, columns: &[usize]) -> KeyFrequencyProfile {
    let mut by_key: BTreeMap<Vec<Value>, u64> = BTreeMap::new();
    let mut total = 0u64;
    for t in rel.iter() {
        let row = t.as_slice();
        let key: Vec<Value> = columns.iter().map(|&c| row[c]).collect();
        *by_key.entry(key).or_insert(0) += 1;
        total += 1;
    }
    let mut counts: Vec<(Vec<Value>, u64)> = by_key.into_iter().collect();
    counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    KeyFrequencyProfile { total, counts }
}

/// Relative costs of the three resources a scheme spends: computation
/// (rule firings), communication (tuples shipped), and storage (base
/// tuples replicated or fragmented to the workers — Example 1 pays
/// `n·|base|`, Example 3 about `2·|base|`, Example 2 exactly `|base|`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cost of one rule firing (computation).
    pub firing_cost: f64,
    /// Cost of shipping one tuple between processors (communication).
    pub tuple_send_cost: f64,
    /// Cost of storing one base tuple at one worker (replication).
    pub base_tuple_cost: f64,
}

impl CostModel {
    /// A machine where communication costs `ratio`× as much as a firing
    /// and storage is free.
    pub fn with_comm_ratio(ratio: f64) -> Self {
        CostModel {
            firing_cost: 1.0,
            tuple_send_cost: ratio,
            base_tuple_cost: 0.0,
        }
    }

    /// Additionally charge `storage` per base tuple per worker.
    pub fn with_storage_cost(mut self, storage: f64) -> Self {
        self.base_tuple_cost = storage;
        self
    }

    /// Total modeled cost of a profile.
    pub fn cost(&self, profile: &SchemeProfile) -> f64 {
        self.firing_cost * profile.firings as f64
            + self.tuple_send_cost * profile.tuples_sent as f64
            + self.base_tuple_cost * profile.base_tuples as f64
    }
}

/// Measured resource consumption of one candidate scheme.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemeProfile {
    /// Display name.
    pub name: String,
    /// Total processing-rule firings across processors.
    pub firings: u64,
    /// Total tuples shipped between distinct processors.
    pub tuples_sent: u64,
    /// Total base tuples held across all workers.
    pub base_tuples: u64,
}

impl SchemeProfile {
    /// Build a profile from an execution outcome; `scheme` supplies the
    /// per-worker base storage.
    pub fn from_run(
        name: impl Into<String>,
        scheme: &crate::schemes::CompiledScheme,
        outcome: &gst_runtime::ExecutionOutcome,
    ) -> Self {
        SchemeProfile {
            name: name.into(),
            firings: outcome.stats.total_processing_firings(),
            tuples_sent: outcome.stats.total_tuples_sent(),
            base_tuples: scheme
                .workers
                .iter()
                .map(|w| w.edb.total_tuples() as u64)
                .sum(),
        }
    }

    /// Build a profile from an execution outcome alone (no storage term).
    pub fn from_outcome(name: impl Into<String>, outcome: &gst_runtime::ExecutionOutcome) -> Self {
        SchemeProfile {
            name: name.into(),
            firings: outcome.stats.total_processing_firings(),
            tuples_sent: outcome.stats.total_tuples_sent(),
            base_tuples: 0,
        }
    }
}

/// Pick the cheapest profile under the model. Ties go to the earlier
/// entry (stable). Returns `None` on an empty slate.
pub fn choose<'a>(profiles: &'a [SchemeProfile], model: &CostModel) -> Option<&'a SchemeProfile> {
    profiles.iter().min_by(|a, b| {
        model
            .cost(a)
            .partial_cmp(&model.cost(b))
            .expect("costs are finite")
    })
}

/// The comm-cost ratio at which two profiles break even, if one exists
/// for positive ratios: solves `f_a + r·s_a = f_b + r·s_b` for `r`.
pub fn crossover(a: &SchemeProfile, b: &SchemeProfile) -> Option<f64> {
    let df = b.firings as f64 - a.firings as f64;
    let ds = a.tuples_sent as f64 - b.tuples_sent as f64;
    if ds == 0.0 {
        return None;
    }
    let r = df / ds;
    (r > 0.0).then_some(r)
}

/// Hash seed shared by every rule of a demand-partitioned magic program.
///
/// One seed across all rules is what makes the strategy *co-locating*:
/// `h(c)` computes the same worker whether `c` arrives as a magic
/// (demand) tuple, as the bound column of an adorned answer, or as the
/// join column of a base fragment.
pub const DEMAND_HASH_SEED: u64 = 0xD17;

/// Demand-aware partitioning for a magic-sets rewrite: one
/// [`RuleChoice`] per generated rule, discriminating on the rule's
/// *demand key* — the variables of its magic guard, i.e. the bound
/// columns of the demanded predicate — under a single shared
/// [`HashMod`].
///
/// Why this beats the generic first-body-variable choice for magic
/// programs: every magic atom's argument pattern *is* its guard key, so
/// magic (demand) tuples always route point-to-point to `h(key)` — they
/// never broadcast — and [`crate::schemes::BaseDistribution::MinimalFragments`] places
/// the base fragments whose join column carries the same key on the same
/// worker. Demand lands where the data lives. An adorned answer
/// occurrence whose pattern does not contain the demand key (e.g. the
/// recursive atom of the *left*-linear ancestor rule) falls back to
/// replication — `rewrite_general`'s broadcast path — which ships only
/// the demand-bounded answer set, not the full closure.
///
/// Rules whose guard binds no variable (an all-free sub-adornment, or a
/// constant-bound head) fall back to the first body-atom variable.
pub fn demand_choices(
    rewrite: &MagicRewrite,
    workers: usize,
    seed: u64,
) -> Result<Vec<RuleChoice>> {
    let h: DiscriminatorRef = Arc::new(HashMod::new(workers, seed));
    rewrite
        .program
        .rules
        .iter()
        .zip(&rewrite.rules)
        .enumerate()
        .map(|(k, (rule, info))| {
            let v: Vec<Variable> = if info.guard.is_empty() {
                rule.body_atoms()
                    .flat_map(|a| a.variables().collect::<Vec<_>>())
                    .take(1)
                    .collect()
            } else {
                info.guard.clone()
            };
            if v.is_empty() {
                return Err(Error::Discriminator(format!(
                    "rule {k} of the magic program has no body variable to \
                     discriminate on"
                )));
            }
            validate_sequence(rule, &v, &format!("demand v(r{k})"))?;
            Ok(RuleChoice { v, h: h.clone() })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(name: &str, firings: u64, sent: u64) -> SchemeProfile {
        SchemeProfile {
            name: name.into(),
            firings,
            tuples_sent: sent,
            base_tuples: 0,
        }
    }

    #[test]
    fn cheap_communication_prefers_non_redundant() {
        // Non-redundant: fewer firings, more traffic.
        let profiles = vec![
            profile("non-redundant", 1_000, 500),
            profile("no-comm", 3_000, 0),
        ];
        let fast_net = CostModel::with_comm_ratio(0.1);
        assert_eq!(choose(&profiles, &fast_net).unwrap().name, "non-redundant");
    }

    #[test]
    fn expensive_communication_prefers_redundant() {
        let profiles = vec![
            profile("non-redundant", 1_000, 500),
            profile("no-comm", 3_000, 0),
        ];
        let slow_net = CostModel::with_comm_ratio(10.0);
        assert_eq!(choose(&profiles, &slow_net).unwrap().name, "no-comm");
    }

    #[test]
    fn crossover_sits_between_the_regimes() {
        let a = profile("non-redundant", 1_000, 500);
        let b = profile("no-comm", 3_000, 0);
        let r = crossover(&a, &b).unwrap();
        assert!((r - 4.0).abs() < 1e-9);
        // Below r, a wins; above, b wins.
        assert_eq!(
            choose(&[a.clone(), b.clone()], &CostModel::with_comm_ratio(3.9))
                .unwrap()
                .name,
            "non-redundant"
        );
        assert_eq!(
            choose(&[a, b], &CostModel::with_comm_ratio(4.1)).unwrap().name,
            "no-comm"
        );
    }

    #[test]
    fn crossover_none_for_equal_communication() {
        let a = profile("a", 10, 5);
        let b = profile("b", 20, 5);
        assert_eq!(crossover(&a, &b), None);
    }

    #[test]
    fn crossover_none_when_one_dominates() {
        // b is worse on both axes: no positive break-even ratio.
        let a = profile("a", 10, 5);
        let b = profile("b", 20, 9);
        assert_eq!(crossover(&a, &b), None);
    }

    #[test]
    fn storage_cost_penalizes_replication() {
        let mut replicated = profile("example1", 1_000, 0);
        replicated.base_tuples = 4_000; // 4 workers × full base
        let mut fragmented = profile("example3", 1_000, 300);
        fragmented.base_tuples = 1_500;
        let free_storage = CostModel::with_comm_ratio(1.0);
        assert_eq!(
            choose(&[replicated.clone(), fragmented.clone()], &free_storage)
                .unwrap()
                .name,
            "example1"
        );
        let tight_storage = CostModel::with_comm_ratio(1.0).with_storage_cost(1.0);
        assert_eq!(
            choose(&[replicated, fragmented], &tight_storage).unwrap().name,
            "example3"
        );
    }

    #[test]
    fn choose_on_empty_is_none() {
        assert!(choose(&[], &CostModel::with_comm_ratio(1.0)).is_none());
    }

    #[test]
    fn tie_breaks_stably() {
        let a = profile("first", 100, 0);
        let b = profile("second", 100, 0);
        assert_eq!(
            choose(&[a, b], &CostModel::with_comm_ratio(2.0)).unwrap().name,
            "first"
        );
    }

    #[test]
    fn sampler_counts_and_ranks_keys() {
        use gst_common::ituple;
        // Column 1 frequencies: 0 appears 6×, 1 appears 2×, others once.
        let rel: gst_storage::Relation = (0..6i64)
            .map(|k| ituple![k + 10, 0])
            .chain((0..2i64).map(|k| ituple![k + 20, 1]))
            .chain((0..4i64).map(|k| ituple![k + 30, k + 2]))
            .collect();
        let profile = sample_key_frequencies(&rel, &[1]);
        assert_eq!(profile.total, 12);
        assert_eq!(profile.counts[0], (vec![Value::Int(0)], 6));
        assert_eq!(profile.counts[1], (vec![Value::Int(1)], 2));
        // Peeling at n=4 under the default policy: key 0 carries 6/12 = 2
        // fair shares (hot); with it split away 6 tuples remain, against
        // which key 1's 2·4 = 8 > 6 also exceeds a share (hot); the next
        // count (1) fits the remaining 4 exactly, so peeling stops.
        let hot = profile.hot_keys(4, &SkewPolicy::default());
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].0, vec![Value::Int(0)]);
        assert_eq!(hot[1].0, vec![Value::Int(1)]);
        // A stricter factor suppresses it: 6·4 = 24 > 2·12 fails strictly.
        let strict = SkewPolicy {
            hot_factor: 2.0,
            split_k: 0,
        };
        assert!(profile.hot_keys(4, &strict).is_empty());
        // Degenerate cases never split.
        assert!(profile.hot_keys(1, &SkewPolicy::default()).is_empty());
        assert!(
            sample_key_frequencies(&gst_storage::Relation::new(2), &[1])
                .hot_keys(4, &SkewPolicy::default())
                .is_empty()
        );
    }
}
