//! Demand-driven point-query scheme: the §7 general scheme `T_i` applied
//! to a magic-sets rewrite under demand-aware partitioning.
//!
//! The front end ([`gst_frontend::magic`]) turns `?- anc("ann", Y).` into
//! an ordinary program of magic and adorned rules plus one seed fact;
//! [`compile_demand`] loads the seed under its auxiliary base predicate,
//! partitions every generated rule on its *demand key* (the magic
//! guard's bound columns) with one shared hash
//! ([`crate::strategy::demand_choices`]), and hands the result to
//! [`rewrite_general`] — so semi-naive evaluation, every transport,
//! crash recovery, update sessions and profiling run the demand-bounded
//! fixpoint unchanged.
//!
//! Base relations are distributed as
//! [`BaseDistribution::MinimalFragments`]: a base atom whose join column
//! carries the demand key is fragmented by the same hash that routes the
//! demand tuples, co-locating demand with data.

use gst_common::Result;
use gst_frontend::magic::MagicRewrite;
use gst_storage::Database;

use crate::schemes::common::BaseDistribution;
use crate::schemes::general::rewrite_general;
use crate::schemes::CompiledScheme;
use crate::strategy::{demand_choices, DEMAND_HASH_SEED};

/// Compile a magic-sets rewrite into a demand-partitioned parallel
/// scheme over `workers` processors.
///
/// The returned scheme's answer relations are the rewrite's derived
/// predicates; filter [`MagicRewrite::answer`]'s relation through
/// [`MagicRewrite::answer_matches`] to obtain exactly the query's
/// answers (the adorned relation also holds answers for transitively
/// demanded bindings).
pub fn compile_demand(
    rewrite: &MagicRewrite,
    db: &Database,
    workers: usize,
) -> Result<CompiledScheme> {
    let mut seeded = db.clone();
    seeded.insert(
        (rewrite.seed_predicate.name, rewrite.seed_predicate.arity),
        rewrite.seed_fact.clone(),
    )?;
    let choices = demand_choices(rewrite, workers, DEMAND_HASH_SEED)?;
    let mut scheme = rewrite_general(
        &rewrite.program,
        &choices,
        &seeded,
        BaseDistribution::MinimalFragments,
    )?;
    scheme.kind = "demand-driven magic (§7 T_i, demand-keyed)";
    Ok(scheme)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gst_common::{Value, Tuple};
    use gst_eval::seminaive_eval;
    use gst_frontend::magic::magic_rewrite;
    use gst_frontend::{Atom, Term, Variable};
    use gst_storage::Relation;
    use gst_workloads::{
        chain, linear_ancestor, random_digraph, right_linear_ancestor, zipf_digraph, Fixture,
    };

    /// Bound-first point query `anc(c, Y)` against a fixture.
    fn point_query(fx: &Fixture, c: i64) -> Atom {
        let anc = fx.output_id().0;
        let y = Variable(fx.program.interner.intern("QY"));
        Atom::new(anc, vec![Term::Const(Value::Int(c)), Term::Var(y)])
    }

    /// The full closure filtered to the query, via sequential evaluation
    /// of the *original* program.
    fn oracle(fx: &Fixture, db: &Database, rw: &MagicRewrite) -> Relation {
        let seq = seminaive_eval(&fx.program, db).unwrap();
        let mut out = Relation::new(fx.output_id().1);
        for t in seq.relation(fx.output_id()).iter() {
            if rw.answer_matches(t) {
                out.insert(t.clone()).unwrap();
            }
        }
        out
    }

    fn answers(outcome: &gst_runtime::ExecutionOutcome, rw: &MagicRewrite) -> Relation {
        let rel = outcome.relation((rw.answer.name, rw.answer.arity));
        let mut out = Relation::new(rw.answer.arity);
        for t in rel.iter() {
            if rw.answer_matches(t) {
                out.insert(t.clone()).unwrap();
            }
        }
        out
    }

    #[test]
    fn left_linear_point_query_matches_filtered_closure() {
        let fx = linear_ancestor();
        let db = fx.database(&chain(24));
        let rw = magic_rewrite(&fx.program, &point_query(&fx, 5)).unwrap();
        let scheme = compile_demand(&rw, &db, 3).unwrap();
        let outcome = scheme.run().unwrap();
        assert!(answers(&outcome, &rw).set_eq(&oracle(&fx, &db, &rw)));
    }

    #[test]
    fn right_linear_demand_stays_at_the_seed() {
        // Right-linear recursion keeps the demand set = {c}: the adorned
        // relation holds answers for the queried constant only.
        let fx = right_linear_ancestor();
        let db = fx.database(&random_digraph(40, 90, 7));
        let rw = magic_rewrite(&fx.program, &point_query(&fx, 0)).unwrap();
        let scheme = compile_demand(&rw, &db, 4).unwrap();
        let outcome = scheme.run().unwrap();
        let adorned = outcome.relation((rw.answer.name, rw.answer.arity));
        assert!(adorned.iter().all(|t| t.get(0) == Value::Int(0)));
        assert!(answers(&outcome, &rw).set_eq(&oracle(&fx, &db, &rw)));
    }

    #[test]
    fn magic_tuples_route_instead_of_broadcasting() {
        // Every magic atom's pattern contains its rule's demand key, so
        // demand never broadcasts. With right-linear recursion *nothing*
        // broadcasts: all traffic is keyed on h(c), and a single-source
        // query touches a single worker's partition — communication stays
        // a small constant, independent of the closure size.
        let fx = right_linear_ancestor();
        let db = fx.database(&chain(64));
        let rw = magic_rewrite(&fx.program, &point_query(&fx, 0)).unwrap();
        let scheme = compile_demand(&rw, &db, 4).unwrap();
        let outcome = scheme.run().unwrap();
        let sent = outcome.stats.total_tuples_sent();
        assert!(
            sent <= 4,
            "expected near-zero shipping for a co-located point query, sent {sent}"
        );
        assert!(answers(&outcome, &rw).set_eq(&oracle(&fx, &db, &rw)));
    }

    #[test]
    fn demand_run_beats_full_closure_on_firings_and_bytes() {
        // The acceptance bound: ≤10% of the firings and ≤25% of the bytes
        // of a full-closure parallel run, random and zipf EDBs, N=4.
        for (data, c) in [
            (random_digraph(120, 360, 42), 0),
            (zipf_digraph(300, 240, 30, 42), 7),
        ] {
            let fx = right_linear_ancestor();
            let db = fx.database(&data);
            let rw = magic_rewrite(&fx.program, &point_query(&fx, c)).unwrap();
            let scheme = compile_demand(&rw, &db, 4).unwrap();
            let outcome = scheme.run().unwrap();
            assert!(answers(&outcome, &rw).set_eq(&oracle(&fx, &db, &rw)));

            let sirup = gst_frontend::LinearSirup::from_program(&fx.program).unwrap();
            let full = crate::schemes::presets::example3_hash_partition(&sirup, 4, &db)
                .unwrap()
                .run()
                .unwrap();
            let (mf, ff) = (outcome.stats.total_firings(), full.stats.total_firings());
            let (mb, fb) = (outcome.stats.total_bytes_sent(), full.stats.total_bytes_sent());
            assert!(mf * 10 <= ff, "firings {mf} vs full {ff}");
            assert!(mb * 4 <= fb, "bytes {mb} vs full {fb}");
        }
    }

    #[test]
    fn ground_query_runs_with_fully_bound_adornment() {
        let fx = linear_ancestor();
        let db = fx.database(&chain(10));
        let anc = fx.output_id().0;
        let goal = Atom::new(
            anc,
            vec![Term::Const(Value::Int(2)), Term::Const(Value::Int(7))],
        );
        let rw = magic_rewrite(&fx.program, &goal).unwrap();
        let scheme = compile_demand(&rw, &db, 3).unwrap();
        let outcome = scheme.run().unwrap();
        let got = answers(&outcome, &rw);
        assert_eq!(got.len(), 1);
        assert_eq!(got.iter().next().unwrap(), &Tuple::new(&[Value::Int(2), Value::Int(7)]));
    }
}
