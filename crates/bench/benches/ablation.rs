//! A1: ablation of the planner's two optimizations (DESIGN.md design
//! choices) — delta-leading join order and eager constraint pushdown —
//! on sequential semi-naive evaluation. All four combinations compute
//! identical results and firing counts; only wall time differs.

use gst_bench::micro::{BenchmarkId, Criterion};
use gst_bench::{criterion_group, criterion_main};
use gst_eval::{seminaive_eval_with, PlanOptions};
use gst_workloads::{layered, linear_ancestor};

fn bench_ablation(c: &mut Criterion) {
    let fx = linear_ancestor();
    let db = fx.database(&layered(6, 80, 3, 99));
    let mut group = c.benchmark_group("planner-ablation");
    group.sample_size(10);
    for (name, delta_leading, eager_constraints) in [
        ("delta+eager (default)", true, true),
        ("delta+late", true, false),
        ("source+eager", false, true),
        ("source+late", false, false),
    ] {
        let opts = PlanOptions {
            delta_leading,
            eager_constraints,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| seminaive_eval_with(&fx.program, &db, opts).unwrap())
        });
    }
    group.finish();
}


/// Constraint pushdown only matters when a worker's inbox holds tuples
/// that *fail* its constraint — exactly the §7 general scheme on
/// Example 8, where each anc tuple is routed for two different join
/// occurrences: eager placement discards the wrong-occurrence tuples
/// before the second (expensive) join; late placement joins first and
/// filters after.
fn bench_constraint_pushdown(c: &mut Criterion) {
    use std::sync::Arc;

    use gst_core::discriminator::{DiscriminatorRef, HashMod};
    use gst_core::prelude::{rewrite_general, RuleChoice};
    use gst_core::schemes::BaseDistribution;
    use gst_eval::FixpointEngine;
    use gst_frontend::Variable;
    use gst_workloads::nonlinear_ancestor;

    let fx = nonlinear_ancestor();
    let db = fx.database(&gst_workloads::grid(8, 8));
    let var = |n: &str| Variable(fx.program.interner.get(n).unwrap());
    let h: DiscriminatorRef = Arc::new(HashMod::new(4, 13));
    let choices = vec![
        RuleChoice { v: vec![var("Y")], h: h.clone() },
        RuleChoice { v: vec![var("Z")], h },
    ];
    let scheme =
        rewrite_general(&fx.program, &choices, &db, BaseDistribution::Shared).unwrap();
    let worker = scheme.workers[0].clone();

    let mut group = c.benchmark_group("constraint-pushdown");
    group.sample_size(10);
    for (name, eager) in [("eager (default)", true), ("late", false)] {
        let opts = PlanOptions {
            delta_leading: true,
            eager_constraints: eager,
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| {
                let mut engine = FixpointEngine::with_options(
                    &worker.program.program,
                    worker.edb.clone(),
                    &worker.program.extra_idb(),
                    opts,
                )
                .unwrap();
                engine.run_to_fixpoint().unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation, bench_constraint_pushdown);
criterion_main!(benches);
