//! Shared primitives for the `parallel-datalog` workspace.
//!
//! This crate holds the data-representation layer every other crate builds
//! on: interned [`Value`]s, fixed-arity [`Tuple`]s with an inline
//! small-tuple representation, a fast non-cryptographic hasher
//! ([`fxhash`]), and the workspace-wide [`Error`] type.
//!
//! Nothing in this crate knows about Datalog; it is the substrate the
//! parser, storage and evaluation layers share so that tuples can cross
//! crate (and thread) boundaries without conversion.

#![warn(missing_docs)]

pub mod error;
pub mod fxhash;
pub mod hist;
pub mod interner;
pub mod rng;
pub mod tuple;
pub mod value;

pub use error::{Error, Result};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use hist::{Histogram, HIST_BUCKETS};
pub use interner::{Interner, SymbolId};
pub use rng::SmallRng;
pub use tuple::Tuple;
pub use value::Value;
