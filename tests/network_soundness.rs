//! §5 validation: the compile-time network graph is sound — every channel
//! observed in a real execution is predicted — and tight in practice:
//! with enough data, predicted channels actually light up.

use std::sync::Arc;

use parallel_datalog::core::dataflow::DataflowGraph;
use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{chain_sirup, example6_sirup, linear_ancestor, random_digraph};

fn var(p: &Program, name: &str) -> Variable {
    Variable(p.interner.get(name).unwrap())
}

/// Run Example 6's sirup with the bit-vector function and check observed
/// traffic against the derived Figure-3 network, over several datasets
/// and `g` seeds.
#[test]
fn example6_network_is_sound() {
    let fx = example6_sirup();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let v_r = vec![var(&fx.program, "Y"), var(&fx.program, "Z")];
    let v_e = vec![var(&fx.program, "X"), var(&fx.program, "Y")];

    for g_seed in [1u64, 2, 3] {
        let bv = BitVector::new(BitFn::new(g_seed), 2);
        let net = derive_network(&sirup, &v_r, &v_e, &bv).unwrap();
        for data_seed in [10u64, 11] {
            let q = random_digraph(30, 70, data_seed);
            let r = random_digraph(30, 90, data_seed + 100);
            let db = fx.database_multi(&[q, r]);
            let h: DiscriminatorRef = Arc::new(bv.clone());
            let cfg = NonRedundantConfig {
                v_r: v_r.clone(),
                v_e: v_e.clone(),
                h: h.clone(),
                h_prime: h,
                base: BaseDistribution::Shared,
            };
            let outcome = rewrite_non_redundant(&sirup, &cfg, &db)
                .unwrap()
                .run()
                .unwrap();
            let used = outcome.stats.used_channels();
            assert!(
                net.covers(&used),
                "g_seed {g_seed}, data {data_seed}: used {used:?} ⊄ derived {:?}",
                net.edges
            );
        }
    }
}

/// With enough data the derived channels are not vacuous: a large run
/// touches a decent share of them (the "minimal" direction, empirically).
#[test]
fn example6_network_is_reasonably_tight() {
    let fx = example6_sirup();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let v_r = vec![var(&fx.program, "Y"), var(&fx.program, "Z")];
    let v_e = vec![var(&fx.program, "X"), var(&fx.program, "Y")];
    let bv = BitVector::new(BitFn::new(1), 2);
    let net = derive_network(&sirup, &v_r, &v_e, &bv).unwrap();

    let q = random_digraph(60, 240, 5);
    let r = random_digraph(60, 300, 6);
    let db = fx.database_multi(&[q, r]);
    let h: DiscriminatorRef = Arc::new(bv);
    let cfg = NonRedundantConfig {
        v_r,
        v_e,
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    let used = outcome.stats.used_channels();
    assert!(
        used.len() * 2 >= net.edges.len(),
        "a dense run should exercise at least half the predicted channels: \
         used {used:?} of {:?}",
        net.edges
    );
}

/// The linear-function network of Example 7 is sound on real executions
/// of the chain sirup.
#[test]
fn example7_network_is_sound() {
    let fx = chain_sirup();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    let v_r = vec![
        var(&fx.program, "V"),
        var(&fx.program, "W"),
        var(&fx.program, "Z"),
    ];
    let v_e = vec![
        var(&fx.program, "U"),
        var(&fx.program, "V"),
        var(&fx.program, "W"),
    ];
    let lin = Linear::new(BitFn::new(4), vec![1, -1, 1]);
    let net = derive_network(&sirup, &v_r, &v_e, &lin).unwrap();

    let mut s = Relation::new(3);
    s.insert(ituple![0, 1, 2]).unwrap();
    s.insert(ituple![3, 4, 5]).unwrap();
    // A dense q so the recursion p(U,V,W) :- p(V,W,Z), q(U,Z) keeps
    // extending to fresh triples.
    let mut q = Relation::new(2);
    for a in 0..6i64 {
        for b in 0..6i64 {
            if a != b {
                q.insert(ituple![a, b]).unwrap();
            }
        }
    }
    let db = fx.database_multi(&[s, q]);
    let h: DiscriminatorRef = Arc::new(lin);
    let cfg = NonRedundantConfig {
        v_r,
        v_e,
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    assert!(net.covers(&outcome.stats.used_channels()));
    // The run must actually derive something beyond the two seeds.
    let p = fx.output_id();
    assert!(outcome.relation(p).len() > 2);
}

/// Theorem 3 across the sirup corpus: every cyclic-dataflow sirup admits
/// a zero-communication execution via the chooser + symmetric hash.
#[test]
fn theorem3_zero_communication_where_cycles_exist() {
    let fx = linear_ancestor();
    let sirup = LinearSirup::from_program(&fx.program).unwrap();
    assert!(DataflowGraph::of(&sirup).has_cycle());
    for n in [2usize, 4, 7] {
        let db = fx.database(&random_digraph(25, 60, n as u64));
        let scheme = example1_wolfson(&sirup, n, &db).unwrap();
        let outcome = scheme.run().unwrap();
        assert!(
            outcome.stats.communication_free(),
            "n={n}: Theorem 3 promises zero communication"
        );
        let seq = seminaive_eval(&fx.program, &db).unwrap();
        assert!(outcome.relation(fx.output_id()).set_eq(&seq.relation(fx.output_id())));
    }
}

/// A swap-cycle sirup (2-cycle in the dataflow graph) also goes
/// communication-free under the Theorem-3 construction.
#[test]
fn theorem3_on_a_two_cycle() {
    let unit = parse_program(
        "t(X,Y) :- s(X,Y).\n\
         t(X,Y) :- t(Y,X), e(X,Y).",
    )
    .unwrap();
    let sirup = LinearSirup::from_program(&unit.program).unwrap();
    let choice = zero_comm_choice(&sirup).unwrap();
    assert_eq!(choice.positions.len(), 2);

    let h: DiscriminatorRef = Arc::new(SymmetricHashMod::new(3, 2));
    let cfg = NonRedundantConfig {
        v_r: choice.v_r,
        v_e: choice.v_e,
        h: h.clone(),
        h_prime: h,
        base: BaseDistribution::Shared,
    };
    let mut db = Database::new(unit.program.interner.clone());
    let s_id = (unit.program.interner.get("s").unwrap(), 2);
    let e_id = (unit.program.interner.get("e").unwrap(), 2);
    for k in 0..12i64 {
        db.insert(s_id, ituple![k, (k * 5) % 12]).unwrap();
        db.insert(e_id, ituple![(k * 7) % 12, k]).unwrap();
    }
    let outcome = rewrite_non_redundant(&sirup, &cfg, &db).unwrap().run().unwrap();
    assert!(outcome.stats.communication_free());
    let seq = seminaive_eval(&unit.program, &db).unwrap();
    let t_id = (unit.program.interner.get("t").unwrap(), 2);
    assert!(outcome.relation(t_id).set_eq(&seq.relation(t_id)));
}
