//! Section 4 of the paper, live: the same transitive-closure query run
//! under all three derived algorithms — Example 1 (Wolfson–Silberschatz,
//! zero communication, shared base), Example 2 (Valduriez–Khoshafian,
//! arbitrary fragments, broadcast), and Example 3 (the paper's new
//! point-to-point hash partition) — printing the trade-offs the paper
//! states qualitatively.
//!
//! ```text
//! cargo run --release --example ancestor_schemes
//! ```

use parallel_datalog::prelude::*;
use parallel_datalog::workloads::{linear_ancestor, random_digraph};

fn main() -> Result<()> {
    let n = 4;
    let fx = linear_ancestor();
    let edges = random_digraph(60, 150, 42);
    let db = fx.database(&edges);
    let sirup = LinearSirup::from_program(&fx.program)?;
    let sequential = seminaive_eval(&fx.program, &db)?;
    let anc = fx.output_id();

    println!(
        "transitive closure of a random digraph: |par| = {}, |anc| = {}, {} processors\n",
        edges.len(),
        sequential.relation(anc).len(),
        n
    );
    println!(
        "{:<44} {:>10} {:>10} {:>12} {:>10}",
        "scheme", "comm", "firings", "base tuples", "correct"
    );

    let report = |scheme: &CompiledScheme, outcome: &ExecutionOutcome| {
        let base_tuples: usize = scheme
            .workers
            .iter()
            .map(|w| w.edb.total_tuples())
            .sum();
        println!(
            "{:<44} {:>10} {:>10} {:>12} {:>10}",
            scheme.kind,
            outcome.stats.total_tuples_sent(),
            outcome.stats.total_processing_firings(),
            base_tuples,
            outcome.relation(anc).set_eq(&sequential.relation(anc)),
        );
    };

    // Example 1: v(r) on the dataflow cycle — no communication, but every
    // worker holds the full base relation.
    let e1 = example1_wolfson(&sirup, n, &db)?;
    let o1 = e1.execute(&RuntimeConfig::default())?;
    report(&e1, &o1);
    assert!(o1.stats.communication_free());

    // Example 3: hash partition — point-to-point traffic, fragments.
    let e3 = example3_hash_partition(&sirup, n, &db)?;
    let o3 = e3.execute(&RuntimeConfig::default())?;
    report(&e3, &o3);

    // Example 2: adversarial round-robin fragmentation — broadcast.
    let frag = round_robin_fragment(&edges, n)?;
    let e2 = example2_valduriez(&sirup, frag, &db)?;
    let o2 = e2.execute(&RuntimeConfig::default())?;
    report(&e2, &o2);

    println!(
        "\nsequential baseline: {} firings",
        sequential.stats.firings
    );
    println!("\npaper §4.3: Example 3 sits between the extremes —");
    println!(
        "  communication: {} (Ex1) ≤ {} (Ex3) ≤ {} (Ex2)",
        o1.stats.total_tuples_sent(),
        o3.stats.total_tuples_sent(),
        o2.stats.total_tuples_sent()
    );
    assert!(o1.stats.total_tuples_sent() <= o3.stats.total_tuples_sent());
    assert!(o3.stats.total_tuples_sent() <= o2.stats.total_tuples_sent());

    // §8: the scheme a compiler should pick depends on the machine.
    // Storage-free machines (shared memory) favor Example 1; machines
    // that pay for replicated base data favor the fragmented schemes.
    let profiles = vec![
        SchemeProfile::from_run("example1", &e1, &o1),
        SchemeProfile::from_run("example3", &e3, &o3),
        SchemeProfile::from_run("example2", &e2, &o2),
    ];
    println!("\n§8 compiler decision (comm ratio × storage cost):");
    for (ratio, storage) in [(0.1, 0.0), (0.1, 30.0), (50.0, 30.0)] {
        let model = CostModel::with_comm_ratio(ratio).with_storage_cost(storage);
        let best = choose(&profiles, &model).unwrap();
        println!(
            "  comm ratio {ratio:>5}, storage cost {storage:>5}: compiler picks {}",
            best.name
        );
    }
    Ok(())
}
