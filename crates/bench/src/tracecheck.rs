//! Structural validation of exported Chrome trace-event JSON.
//!
//! The CI trace-smoke job runs a traced execution, exports the journal
//! with `--trace-out`, and feeds the file to the `trace_check` binary,
//! which calls [`check_chrome_trace`]. The checker enforces the
//! invariants the viewer silently tolerates but that indicate a broken
//! producer: per-track monotone timestamps, balanced begin/end span
//! pairing, and (optionally) that every expected worker track is present
//! and reached termination.

use crate::json::Json;

/// What a validated trace contained, for the checker's one-line report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total trace events (including metadata).
    pub events: usize,
    /// Completed `B`/`E` span pairs.
    pub spans: usize,
    /// Distinct worker tracks (`tid`s with at least one non-metadata event).
    pub workers: usize,
}

/// Validate Chrome trace-event JSON produced by `--trace-out`.
///
/// Checks, in order:
/// 1. the document parses and has a `traceEvents` array of objects;
/// 2. every non-metadata event carries numeric `ts`/`pid`/`tid` and a
///    `name`, and timestamps never go backwards within a `(pid, tid)`
///    track (array order is emission order);
/// 3. `B`/`E` events pair up stack-wise per track — every span that
///    opens closes, with matching names, and nothing closes twice;
/// 4. at least one `round` span exists (a run that derived nothing
///    still begins round 0 somewhere);
/// 5. with `expect_workers = Some(n)`: tracks `0..n` are all present and
///    each recorded a `terminated` instant;
/// 6. with `require_sends`: at least one `send` instant exists (used by
///    CI on schemes that are known to communicate).
pub fn check_chrome_trace(
    text: &str,
    expect_workers: Option<usize>,
    require_sends: bool,
) -> Result<TraceSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    // Per-(pid, tid) track state: last timestamp and the open-span stack.
    let mut tracks: Vec<((i64, i64), f64, Vec<String>)> = Vec::new();
    let mut spans = 0usize;
    let mut rounds = 0usize;
    let mut sends = 0usize;
    let mut terminated: Vec<i64> = Vec::new();
    let mut worker_tids: Vec<i64> = Vec::new();

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let name = ev
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ts = ev
            .get("ts")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        let pid = ev
            .get("pid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing pid"))? as i64;
        let tid = ev
            .get("tid")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("event {i} ({name}): missing tid"))? as i64;

        if !worker_tids.contains(&tid) {
            worker_tids.push(tid);
        }
        let track = match tracks.iter_mut().find(|(key, _, _)| *key == (pid, tid)) {
            Some(t) => t,
            None => {
                tracks.push(((pid, tid), f64::NEG_INFINITY, Vec::new()));
                tracks.last_mut().unwrap()
            }
        };
        if ts < track.1 {
            return Err(format!(
                "event {i} ({name}): ts {ts} goes backwards on track pid={pid} tid={tid} (prev {})",
                track.1
            ));
        }
        track.1 = ts;

        match ph {
            "B" => track.2.push(name.to_string()),
            "E" => match track.2.pop() {
                Some(open) if open == name => {
                    spans += 1;
                    if name == "round" {
                        rounds += 1;
                    }
                }
                Some(open) => {
                    return Err(format!(
                        "event {i}: span end {name:?} does not match open span {open:?} on tid={tid}"
                    ))
                }
                None => {
                    return Err(format!(
                        "event {i}: span end {name:?} with no open span on tid={tid}"
                    ))
                }
            },
            "i" => {
                if name == "send" {
                    sends += 1;
                }
                if name == "terminated" && !terminated.contains(&tid) {
                    terminated.push(tid);
                }
            }
            other => return Err(format!("event {i} ({name}): unsupported ph {other:?}")),
        }
    }

    for ((pid, tid), _, stack) in &tracks {
        if let Some(open) = stack.last() {
            return Err(format!(
                "unclosed span {open:?} on track pid={pid} tid={tid}"
            ));
        }
    }
    if rounds == 0 {
        return Err("no completed round span in trace".into());
    }
    if let Some(n) = expect_workers {
        for tid in 0..n as i64 {
            if !worker_tids.contains(&tid) {
                return Err(format!("worker track tid={tid} missing (expected {n})"));
            }
            if !terminated.contains(&tid) {
                return Err(format!("worker tid={tid} never recorded termination"));
            }
        }
    }
    if require_sends && sends == 0 {
        return Err("no send events in trace (expected communication)".into());
    }

    Ok(TraceSummary {
        events: events.len(),
        spans,
        workers: worker_tids.len(),
    })
}

/// What a validated profile contained, for the checker's one-line report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileSummary {
    /// Worker profiles present.
    pub workers: usize,
    /// Rounds on the critical path.
    pub rounds: usize,
    /// Merged idle time across all workers (in the profile's time base).
    pub idle_total: u64,
}

/// The five phase names every profile must account, in emission order.
const PROFILE_PHASES: [&str; 5] = ["compute", "encode", "decode", "replay", "idle"];

fn check_phases(v: &Json, at: &str) -> Result<[u64; 5], String> {
    let mut out = [0u64; 5];
    for (k, slot) in PROFILE_PHASES.iter().zip(out.iter_mut()) {
        *slot = v
            .get(k)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{at}: missing numeric phase {k:?}"))? as u64;
    }
    Ok(out)
}

fn check_histogram(v: &Json, at: &str) -> Result<(), String> {
    for k in ["count", "sum", "min", "max", "p50", "p95", "p99"] {
        v.get(k)
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{at}: missing numeric field {k:?}"))?;
    }
    let count = v.get("count").and_then(Json::as_num).unwrap_or(0.0) as u64;
    let buckets = v
        .get("buckets")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{at}: missing buckets array"))?;
    let mut total = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        let pair = b
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("{at}: bucket {i} is not an [index, count] pair"))?;
        let idx = pair[0]
            .as_num()
            .ok_or_else(|| format!("{at}: bucket {i} has non-numeric index"))?;
        if !(0.0..64.0).contains(&idx) {
            return Err(format!("{at}: bucket {i} index {idx} out of range"));
        }
        total += pair[1]
            .as_num()
            .ok_or_else(|| format!("{at}: bucket {i} has non-numeric count"))?
            as u64;
    }
    if total != count {
        return Err(format!(
            "{at}: bucket counts sum to {total} but count says {count}"
        ));
    }
    Ok(())
}

fn check_worker_profile(v: &Json, at: &str) -> Result<[u64; 5], String> {
    let phases = v
        .get("phases")
        .ok_or_else(|| format!("{at}: missing phases object"))
        .and_then(|p| check_phases(p, &format!("{at}.phases")))?;
    for h in ["round_latency", "encode_time", "decode_time", "batch_bytes"] {
        let hist = v
            .get(h)
            .ok_or_else(|| format!("{at}: missing histogram {h:?}"))?;
        check_histogram(hist, &format!("{at}.{h}"))?;
    }
    let per_round = v
        .get("per_round")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{at}: missing per_round array"))?;
    let mut last_round = -1.0f64;
    let mut by_phase = [0u64; 5];
    for (i, entry) in per_round.iter().enumerate() {
        let round = entry
            .get("round")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("{at}.per_round[{i}]: missing round"))?;
        if round <= last_round {
            return Err(format!(
                "{at}.per_round[{i}]: round {round} not strictly increasing"
            ));
        }
        last_round = round;
        let p = entry
            .get("phases")
            .ok_or_else(|| format!("{at}.per_round[{i}]: missing phases"))
            .and_then(|p| check_phases(p, &format!("{at}.per_round[{i}].phases")))?;
        for (total, v) in by_phase.iter_mut().zip(p) {
            *total += v;
        }
    }
    // Every tick in a phase total was attributed to some round, and
    // vice versa — the per-round breakdown must re-sum to the totals.
    if by_phase != phases {
        return Err(format!(
            "{at}: per_round phases sum to {by_phase:?} but totals say {phases:?}"
        ));
    }
    Ok(phases)
}

/// Validate profile JSON produced by `pdatalog --profile-json`.
///
/// Checks, in order:
/// 1. the document parses, with `time_base` either `wall_micros` or
///    `virtual_ticks`;
/// 2. every worker entry and the merged profile carry all five phase
///    totals, the four histograms (each internally consistent: bucket
///    counts re-sum to `count`, indices in range), and a `per_round`
///    breakdown with strictly increasing round keys that re-sums to the
///    phase totals;
/// 3. the merged phase totals equal the sum over workers;
/// 4. `time_by_rule` and `firings_by_rule` are equal-length numeric
///    arrays and `chunk_service` is a histogram;
/// 5. every critical-path round names a known phase as dominant, and
///    `hot_rules`/`idle_gaps` entries are well-formed.
pub fn check_profile_json(text: &str) -> Result<ProfileSummary, String> {
    let doc = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let base = doc
        .get("time_base")
        .and_then(Json::as_str)
        .ok_or("missing time_base")?;
    if base != "wall_micros" && base != "virtual_ticks" {
        return Err(format!("unknown time_base {base:?}"));
    }

    let workers = doc
        .get("workers")
        .and_then(Json::as_arr)
        .ok_or("missing workers array")?;
    if workers.is_empty() {
        return Err("no worker profiles".into());
    }
    let mut summed = [0u64; 5];
    for (i, w) in workers.iter().enumerate() {
        w.get("processor")
            .and_then(Json::as_num)
            .ok_or_else(|| format!("workers[{i}]: missing processor"))?;
        let profile = w
            .get("profile")
            .ok_or_else(|| format!("workers[{i}]: missing profile"))?;
        let phases = check_worker_profile(profile, &format!("workers[{i}].profile"))?;
        for (total, v) in summed.iter_mut().zip(phases) {
            *total += v;
        }
    }
    let merged = doc.get("merged").ok_or("missing merged profile")?;
    let merged_phases = check_worker_profile(merged, "merged")?;
    if merged_phases != summed {
        return Err(format!(
            "merged phases {merged_phases:?} != sum over workers {summed:?}"
        ));
    }

    let time_by_rule = doc
        .get("time_by_rule")
        .and_then(Json::as_arr)
        .ok_or("missing time_by_rule array")?;
    let firings_by_rule = doc
        .get("firings_by_rule")
        .and_then(Json::as_arr)
        .ok_or("missing firings_by_rule array")?;
    if time_by_rule.len() != firings_by_rule.len() {
        return Err(format!(
            "time_by_rule has {} rules but firings_by_rule has {}",
            time_by_rule.len(),
            firings_by_rule.len()
        ));
    }
    for (k, arr) in [("time_by_rule", time_by_rule), ("firings_by_rule", firings_by_rule)] {
        for (i, v) in arr.iter().enumerate() {
            v.as_num().ok_or_else(|| format!("{k}[{i}]: not a number"))?;
        }
    }
    check_histogram(doc.get("chunk_service").ok_or("missing chunk_service")?, "chunk_service")?;

    let rounds = doc
        .get("rounds")
        .and_then(Json::as_arr)
        .ok_or("missing rounds array")?;
    for (i, rc) in rounds.iter().enumerate() {
        for k in ["round", "straggler", "straggler_time", "compute", "comm", "idle"] {
            rc.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("rounds[{i}]: missing numeric field {k:?}"))?;
        }
        let phase = rc
            .get("dominant_phase")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("rounds[{i}]: missing dominant_phase"))?;
        if !PROFILE_PHASES.contains(&phase) {
            return Err(format!("rounds[{i}]: unknown dominant_phase {phase:?}"));
        }
    }

    let hot_rules = doc
        .get("hot_rules")
        .and_then(Json::as_arr)
        .ok_or("missing hot_rules array")?;
    for (i, h) in hot_rules.iter().enumerate() {
        for k in ["rule", "time", "firings"] {
            h.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("hot_rules[{i}]: missing numeric field {k:?}"))?;
        }
    }
    let idle_gaps = doc
        .get("idle_gaps")
        .and_then(Json::as_arr)
        .ok_or("missing idle_gaps array")?;
    for (i, g) in idle_gaps.iter().enumerate() {
        for k in ["worker", "round", "idle"] {
            g.get(k)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("idle_gaps[{i}]: missing numeric field {k:?}"))?;
        }
    }

    Ok(ProfileSummary {
        workers: workers.len(),
        rounds: rounds.len(),
        idle_total: merged_phases[4],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrap(events: &str) -> String {
        format!("{{\"traceEvents\":[{events}],\"displayTimeUnit\":\"ms\"}}")
    }

    const GOOD: &str = r#"{"name":"thread_name","ph":"M","pid":0,"tid":0,"args":{"name":"worker 0"}},
        {"name":"round","ph":"B","ts":1,"pid":0,"tid":0},
        {"name":"send","ph":"i","ts":2,"pid":0,"tid":0,"s":"t"},
        {"name":"round","ph":"E","ts":3,"pid":0,"tid":0},
        {"name":"terminated","ph":"i","ts":4,"pid":0,"tid":0,"s":"t"}"#;

    #[test]
    fn accepts_a_well_formed_trace() {
        let summary = check_chrome_trace(&wrap(GOOD), Some(1), true).unwrap();
        assert_eq!(summary, TraceSummary { events: 5, spans: 1, workers: 1 });
    }

    #[test]
    fn rejects_backward_timestamps() {
        let text = wrap(
            r#"{"name":"round","ph":"B","ts":5,"pid":0,"tid":0},
               {"name":"round","ph":"E","ts":4,"pid":0,"tid":0}"#,
        );
        let err = check_chrome_trace(&text, None, false).unwrap_err();
        assert!(err.contains("goes backwards"), "{err}");
    }

    #[test]
    fn timestamps_are_monotone_per_track_not_globally() {
        let text = wrap(
            r#"{"name":"round","ph":"B","ts":10,"pid":0,"tid":0},
               {"name":"round","ph":"B","ts":1,"pid":0,"tid":1},
               {"name":"round","ph":"E","ts":11,"pid":0,"tid":0},
               {"name":"round","ph":"E","ts":2,"pid":0,"tid":1}"#,
        );
        assert!(check_chrome_trace(&text, None, false).is_ok());
    }

    #[test]
    fn rejects_unclosed_and_mismatched_spans() {
        let open = wrap(r#"{"name":"round","ph":"B","ts":1,"pid":0,"tid":0}"#);
        assert!(check_chrome_trace(&open, None, false)
            .unwrap_err()
            .contains("unclosed span"));

        let stray = wrap(r#"{"name":"round","ph":"E","ts":1,"pid":0,"tid":0}"#);
        assert!(check_chrome_trace(&stray, None, false)
            .unwrap_err()
            .contains("no open span"));
    }

    #[test]
    fn rejects_missing_worker_or_termination() {
        let err = check_chrome_trace(&wrap(GOOD), Some(2), false).unwrap_err();
        assert!(err.contains("tid=1 missing"), "{err}");
    }

    #[test]
    fn rejects_silent_traces_when_sends_required() {
        let text = wrap(
            r#"{"name":"round","ph":"B","ts":1,"pid":0,"tid":0},
               {"name":"round","ph":"E","ts":2,"pid":0,"tid":0}"#,
        );
        let err = check_chrome_trace(&text, None, true).unwrap_err();
        assert!(err.contains("no send events"), "{err}");
    }

    #[test]
    fn rejects_traces_without_rounds() {
        let text = wrap(r#"{"name":"idle","ph":"i","ts":1,"pid":0,"tid":0,"s":"t"}"#);
        let err = check_chrome_trace(&text, None, false).unwrap_err();
        assert!(err.contains("no completed round"), "{err}");
    }

    /// A minimal well-formed profile: one worker whose per-round
    /// breakdown re-sums to its phase totals, merged = that worker.
    fn profile_doc(compute: u64, idle: u64) -> String {
        let hist = |count: u64, sum: u64, bucket: u64| {
            if count == 0 {
                r#"{"count":0,"sum":0,"min":0,"max":0,"p50":0,"p95":0,"p99":0,"buckets":[]}"#
                    .to_string()
            } else {
                format!(
                    "{{\"count\":{count},\"sum\":{sum},\"min\":1,\"max\":{sum},\"p50\":1,\"p95\":{sum},\"p99\":{sum},\"buckets\":[[{bucket},{count}]]}}"
                )
            }
        };
        let profile = format!(
            "{{\"phases\":{{\"compute\":{compute},\"encode\":0,\"decode\":0,\"replay\":0,\"idle\":{idle}}},\
             \"round_latency\":{},\"encode_time\":{},\"decode_time\":{},\"batch_bytes\":{},\
             \"per_round\":[{{\"round\":0,\"phases\":{{\"compute\":{compute},\"encode\":0,\"decode\":0,\"replay\":0,\"idle\":{idle}}}}}]}}",
            hist(1, compute, 5),
            hist(0, 0, 0),
            hist(0, 0, 0),
            hist(0, 0, 0),
        );
        format!(
            "{{\"time_base\":\"virtual_ticks\",\"workers\":[{{\"processor\":0,\"profile\":{profile}}}],\
             \"merged\":{profile},\"time_by_rule\":[{compute}],\"firings_by_rule\":[4],\
             \"chunk_service\":{},\
             \"rounds\":[{{\"round\":0,\"straggler\":0,\"straggler_time\":{compute},\"dominant_phase\":\"compute\",\"compute\":{compute},\"comm\":0,\"idle\":{idle}}}],\
             \"hot_rules\":[{{\"rule\":0,\"time\":{compute},\"firings\":4}}],\
             \"idle_gaps\":[{{\"worker\":0,\"round\":0,\"idle\":{idle}}}]}}",
            hist(0, 0, 0),
        )
    }

    #[test]
    fn accepts_a_well_formed_profile() {
        let summary = check_profile_json(&profile_doc(100, 7)).unwrap();
        assert_eq!(summary, ProfileSummary { workers: 1, rounds: 1, idle_total: 7 });
    }

    #[test]
    fn rejects_profile_with_inconsistent_buckets() {
        let text = profile_doc(100, 7)
            .replace("\"buckets\":[[5,1]]", "\"buckets\":[[5,3]]");
        let err = check_profile_json(&text).unwrap_err();
        assert!(err.contains("bucket counts sum to"), "{err}");
    }

    #[test]
    fn rejects_profile_whose_rounds_do_not_resum() {
        // Break one per_round compute entry: totals no longer match.
        let text = profile_doc(100, 7).replacen(
            "\"per_round\":[{\"round\":0,\"phases\":{\"compute\":100",
            "\"per_round\":[{\"round\":0,\"phases\":{\"compute\":99",
            1,
        );
        let err = check_profile_json(&text).unwrap_err();
        assert!(err.contains("per_round phases sum to"), "{err}");
    }

    #[test]
    fn rejects_profile_with_unknown_phase_or_base() {
        let bad_phase = profile_doc(100, 7).replace("\"dominant_phase\":\"compute\"", "\"dominant_phase\":\"gc\"");
        assert!(check_profile_json(&bad_phase).unwrap_err().contains("unknown dominant_phase"));

        let bad_base = profile_doc(100, 7).replace("virtual_ticks", "nanoseconds");
        assert!(check_profile_json(&bad_base).unwrap_err().contains("unknown time_base"));
    }

    #[test]
    fn real_exporter_output_passes_the_checker() {
        // Feed the runtime exporter's actual to_json() output through the
        // checker: this pins the checker to the producer's key set, so a
        // schema drift on either side fails here rather than in CI.
        use gst_common::hist::Histogram;
        use gst_runtime::{PhaseTotals, ProfileReport, TimeBase, WorkerProfile};

        let profile_for = |w: u64| {
            let phases =
                PhaseTotals { compute: 100 + w, encode: 5, decode: 3, replay: 0, idle: 40 };
            let mut round_latency = Histogram::new();
            round_latency.record(60 + w);
            round_latency.record(40);
            let mut batch_bytes = Histogram::new();
            batch_bytes.record(128);
            WorkerProfile {
                phases,
                round_latency,
                encode_time: Histogram::new(),
                decode_time: Histogram::new(),
                batch_bytes,
                per_round: vec![
                    (0, PhaseTotals { compute: 60 + w, encode: 5, decode: 0, replay: 0, idle: 0 }),
                    (1, PhaseTotals { compute: 40, encode: 0, decode: 3, replay: 0, idle: 40 }),
                ],
            }
        };
        let mut workers = Vec::new();
        for w in 0..2usize {
            let mut report = gst_runtime::WorkerReport {
                processor: w,
                eval: gst_eval::EvalStats::new(2),
                processing_firings: 10,
                sent_tuples_to: vec![0, 0],
                sent_bytes_to: vec![0, 0],
                sent_messages: 0,
                received_tuples: 0,
                received_bytes: 0,
                encode_calls: 0,
                encoded_bytes: 0,
                encoded_raw_bytes: 0,
                duplicate_batches: 0,
                replayed_batches: 0,
                stale_dropped: 0,
                retract_tuples_sent: 0,
                retract_tuples_received: 0,
                pooled_tuples: 0,
                busy: std::time::Duration::ZERO,
                sent_per_round: Vec::new(),
                profile: Some(profile_for(w as u64)),
            };
            report.eval.time_by_rule = vec![90, 10 + w as u64];
            report.eval.firings_by_rule = vec![7, 3];
            workers.push(report);
        }
        let stats = gst_runtime::ParallelStats {
            workers,
            channel_matrix: vec![vec![0, 0], vec![0, 0]],
            restarts: 0,
            reconnects: 0,
            relay_bytes: 0,
            wall_time: std::time::Duration::ZERO,
        };
        let report = ProfileReport::build(&stats, TimeBase::VirtualTicks)
            .expect("profiles present");
        let summary = check_profile_json(&report.to_json()).unwrap();
        assert_eq!(summary.workers, 2);
        assert_eq!(summary.rounds, 2);
        assert_eq!(summary.idle_total, 80);
    }
}
