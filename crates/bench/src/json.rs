//! A minimal JSON emitter and parser for harness reports and traces.
//!
//! The experiment results are small, fixed-shape records; a dependency-free
//! writer keeps the workspace inside its approved crate set while still
//! producing machine-readable artifacts (`harness --json out.json`) that a
//! CI job can diff against a golden file. The matching recursive-descent
//! [`Json::parse`] lets the `trace_check` binary validate exported Chrome
//! traces without pulling in a third-party parser.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any finite number (rendered via `f64`; integers stay integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (the whole input must be one value plus
    /// optional trailing whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    out.push_str(&format!("{}", *x as i64));
                } else {
                    out.push_str(&format!("{x}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32))
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (k, item) in items.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (k, (key, value)) in pairs.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    Json::Str(key.clone()).write(out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent parser over the raw bytes. JSON's grammar is ASCII
/// at every decision point, so byte-level scanning is safe; string
/// contents are re-validated as UTF-8 when sliced back out.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our own
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|b| b & 0xC0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Shorthand for numeric fields.
pub fn num<T: Into<f64>>(x: T) -> Json {
    Json::Num(x.into())
}

/// Shorthand for `u64` counters (lossless for the sizes we emit).
pub fn count(x: u64) -> Json {
    Json::Num(x as f64)
}

/// Shorthand for string fields.
pub fn s(x: impl Into<String>) -> Json {
    Json::Str(x.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(num(42.0).render(), "42");
        assert_eq!(num(2.5).render(), "2.5");
        assert_eq!(count(1234567).render(), "1234567");
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(s("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(s("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn renders_structures() {
        let j = Json::obj(vec![
            ("name", s("t2")),
            ("rows", Json::Arr(vec![count(1), count(2)])),
            ("ok", Json::Bool(true)),
        ]);
        assert_eq!(j.render(), r#"{"name":"t2","rows":[1,2],"ok":true}"#);
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn parse_roundtrips_what_we_emit() {
        let j = Json::obj(vec![
            ("name", s("round \"x\"\n")),
            ("ts", num(12.5)),
            ("flags", Json::Arr(vec![Json::Bool(false), Json::Null])),
            ("nested", Json::obj(vec![("k", count(7))])),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , -2.5e1 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = j.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].as_num(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A\t"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{\"a\":1").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_return_none_on_wrong_shape() {
        assert!(Json::Null.get("k").is_none());
        assert!(Json::Bool(true).as_arr().is_none());
        assert!(s("x").as_num().is_none());
        assert!(num(1.0).as_str().is_none());
    }
}
